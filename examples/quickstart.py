#!/usr/bin/env python3
"""Quickstart: link two small tables with the adaptive join.

This example builds a tiny street-atlas (parent) table and an accidents
(child) table whose location strings contain a few typos, then links them
with each of the four strategies exposed by :func:`repro.link_tables` and
prints what each strategy found.  It closes with the job-oriented API —
the fluent :class:`repro.LinkageJob` builder behind ``link_tables`` —
streaming the same matches one by one (see examples/streaming_jobs.py
for the full tour: progress, cancellation, the async backend).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import LinkageJob, Table, Schema, link_tables
from repro.linkage.evaluation import evaluate_pairs

ATLAS_SCHEMA = Schema(["municipality_id", "location"], name="atlas")
ACCIDENT_SCHEMA = Schema(["accident_id", "location"], name="accidents")

ATLAS_ROWS = [
    (0, "LIG GE GENOVA"),
    (1, "LOM MI MILANO"),
    (2, "LAZ RM ROMA CAPITALE"),
    (3, "TAA BZ SANTA CRISTINA VALGARDENA"),
    (4, "VEN VE VENEZIA MESTRE"),
    (5, "TOS FI FIRENZE"),
    (6, "CAM NA NAPOLI CENTRO"),
    (7, "PIE TO TORINO"),
    (8, "SIC PA PALERMO"),
    (9, "PUG BA BARI VECCHIA"),
]

# Accidents reference atlas locations; three of them carry a one-character
# typo (a "variant"), which an exact join cannot match.
ACCIDENT_ROWS = [
    (100, "LIG GE GENOVA"),
    (101, "LOM MI MILANO"),
    (102, "LOM MI MILANx"),                     # variant of MILANO
    (103, "LAZ RM ROMA CAPITALE"),
    (104, "TAA BZ SANTA CRISTINx VALGARDENA"),  # variant (the paper's example)
    (105, "VEN VE VENEZIA MESTRE"),
    (106, "TOS FI FIRENZE"),
    (107, "CAM NA NAPOLI CENTRO"),
    (108, "PIE TO TORINq"),                     # variant of TORINO
    (109, "SIC PA PALERMO"),
    (110, "PUG BA BARI VECCHIA"),
    (111, "LIG GE GENOVA"),
]

# Ground truth: which atlas row each accident refers to.
TRUE_PAIRS = [
    (0, 0), (1, 1), (1, 2), (2, 3), (3, 4), (4, 5),
    (5, 6), (6, 7), (7, 8), (8, 9), (9, 10), (0, 11),
]


def main() -> None:
    atlas = Table.from_rows(ATLAS_SCHEMA, ATLAS_ROWS, name="atlas")
    accidents = Table.from_rows(ACCIDENT_SCHEMA, ACCIDENT_ROWS, name="accidents")

    print(f"atlas: {len(atlas)} rows, accidents: {len(accidents)} rows")
    print(f"expected matches (ground truth): {len(TRUE_PAIRS)}\n")

    # The values here are short (13-32 characters), so a slightly lower
    # similarity threshold than the paper's 0.85 is needed for one-character
    # typos to clear the shared-q-gram test; 0.80 is right for this data.
    threshold = 0.80
    for strategy in ("exact", "approximate", "blocking", "adaptive"):
        result = link_tables(
            atlas, accidents, "location",
            strategy=strategy, similarity_threshold=threshold,
        )
        evaluation = evaluate_pairs(result.pairs, TRUE_PAIRS)
        print(
            f"{strategy:>12}: {result.pair_count:2d} pairs  "
            f"recall={evaluation.recall:.2f}  precision={evaluation.precision:.2f}"
        )

    # The adaptive strategy also reports how it spent its time.
    adaptive = link_tables(
        atlas, accidents, "location",
        strategy="adaptive", similarity_threshold=threshold,
    )
    print("\nadaptive trace:", adaptive.statistics["trace"])

    # The same run, job-shaped: build fluently, stream matches as they
    # are found instead of waiting for the full result.
    handle = (
        LinkageJob.between(atlas, accidents)
        .on("location")
        .strategy("adaptive")
        .threshold(threshold)
        .build()
    )
    print("\nstreamed through the jobs API:")
    for match in handle.stream_matches(batch_size=4):
        print(
            f"  step {match.event.step:2d}: pair {match.pair} "
            f"({match.event.mode.value}, sim {match.event.similarity:.2f})"
        )


if __name__ == "__main__":
    main()
