#!/usr/bin/env python3
"""Jobs-layer tour: fluent builder, streaming matches, progress, cancel, async.

The jobs layer (``repro.jobs``) is the public face of the paper's
*adaptive, time-aware* processing: instead of one blocking call, a
linkage run is a job — built fluently, streamed lazily, observed live
and cancellable mid-run with partial results.  This example walks
through all four surfaces on a generated workload:

1. stream matches as they are found (first match long before the run ends);
2. watch live progress fed by ``StepResult``/``ShardCompleted`` events;
3. cancel a running job and keep the partial result;
4. run the same job sharded on the cooperative ``async`` backend.

Run with::

    python examples/streaming_jobs.py
"""

from __future__ import annotations

import asyncio

from repro.core.thresholds import Thresholds
from repro.datagen.testcases import STANDARD_TEST_CASES, generate_test_case
from repro.jobs import LinkageJob

#: A quick operating point: assess every 25 steps on this small workload.
FAST = Thresholds(delta_adapt=25, window_size=25)


def build_dataset():
    dataset = generate_test_case(
        STANDARD_TEST_CASES["few_high_child"], parent_size=400, child_size=800
    )
    print(
        f"workload: {len(dataset.parent)} parent rows, "
        f"{len(dataset.child)} child rows, "
        f"{len(dataset.true_pairs)} true pairs\n"
    )
    return dataset


def demo_streaming(dataset) -> None:
    """Matches surface incrementally, not after the run."""
    handle = (
        LinkageJob.between(dataset.parent, dataset.child)
        .on("location")
        .strategy("adaptive")
        .thresholds(FAST)
        .with_progress()
        .build()
    )
    streamed = 0
    first_at_step = None
    for match in handle.stream_matches(batch_size=64):
        if streamed == 0:
            snapshot = handle.progress()
            first_at_step = snapshot.steps
            print(
                f"streaming: first match {match.pair} "
                f"(similarity {match.event.similarity:.2f}) after only "
                f"{snapshot.steps}/{snapshot.total_steps} steps"
            )
        streamed += 1
    print(
        f"streaming: {streamed} matches streamed; the first arrived at "
        f"step {first_at_step}, the run finished at step "
        f"{handle.progress().steps} — state: {handle.state}\n"
    )


def demo_cancel(dataset) -> None:
    """Deadline-style consumption: take what you need, cancel the rest."""
    handle = (
        LinkageJob.between(dataset.parent, dataset.child)
        .on("location")
        .thresholds(FAST)
        .build()
    )
    wanted = 25
    for index, match in enumerate(handle.stream_matches(batch_size=64)):
        if index + 1 == wanted:
            handle.cancel()
    result = handle.result()
    print(
        f"cancelled after {wanted} matches: partial result has "
        f"{result.pair_count} pairs, cancelled={result.cancelled}, "
        f"state: {handle.state}\n"
    )


def demo_async_backend(dataset) -> None:
    """Sharded execution on one asyncio loop, watched from a coroutine."""
    handle = (
        LinkageJob.between(dataset.parent, dataset.child)
        .on("location")
        .thresholds(FAST)
        .sharded(4, backend="async", partitioner="gram")
        .with_progress()
        .build()
    )
    result = handle.run()
    snapshot = handle.progress()
    print(
        f"async backend: {result.pair_count} pairs across "
        f"{result.statistics['shards']} gram-replicated shards "
        f"({result.statistics['raw_result_size']} raw discoveries, "
        f"{result.statistics['duplicate_matches']} deduped); "
        f"progress saw shards {snapshot.shards_done}/{snapshot.total_shards}"
    )

    async def stream_async():
        job = (
            LinkageJob.between(dataset.parent, dataset.child)
            .on("location")
            .thresholds(FAST)
            .sharded(2)
            .build()
        )
        count = 0
        async for _match in job.stream_matches_async(batch_size=128):
            count += 1
        return count

    print(
        f"async stream: {asyncio.run(stream_async())} matches consumed "
        f"with `async for` on 2 shards\n"
    )


def main() -> None:
    dataset = build_dataset()
    demo_streaming(dataset)
    demo_cancel(dataset)
    demo_async_backend(dataset)


if __name__ == "__main__":
    main()
