#!/usr/bin/env python3
"""The paper's motivating scenario: the car-accidents mashup (Sec. 1).

An organisation collects accident reports from several insurance companies
into one table and wants to overlay them on a map by joining against a
reference street atlas.  Street names in the collected table are not
guaranteed to match the atlas exactly, so a similarity join would be safest
— but also expensive, and possibly unnecessary if only few locations are
misspelt.  The adaptive join trades a little completeness ("accidents laid
on the map") for a much faster answer.

This example generates a mid-sized synthetic workload with the generator of
Sec. 4.1 (``few_high_child``: a few bursts of misspellings, e.g. batches
ingested from one careless source), runs the all-exact, all-approximate and
adaptive strategies and prints the completeness/cost comparison that
motivates the paper.

Run with::

    python examples/accidents_mashup.py [parent_size] [child_size]
"""

from __future__ import annotations

import sys
import time

from repro.bench.harness import run_experiment
from repro.bench.reporting import format_mapping
from repro.datagen.testcases import STANDARD_TEST_CASES


def main() -> None:
    parent_size = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    child_size = int(sys.argv[2]) if len(sys.argv) > 2 else 1000

    spec = STANDARD_TEST_CASES["few_high_child"]
    print(
        f"Scenario: {spec.pattern} perturbation, variants in the {spec.variants_in} "
        f"table, {parent_size} atlas rows x {child_size} accidents\n"
    )

    started = time.perf_counter()
    outcome = run_experiment(spec, parent_size=parent_size, child_size=child_size)
    elapsed = time.perf_counter() - started

    report = outcome.report
    print(format_mapping(
        {
            "accidents mapped (all-exact join)": report.exact_result_size,
            "accidents mapped (all-approximate join)": report.approximate_result_size,
            "accidents mapped (adaptive join)": report.adaptive_result_size,
            "gain g_rel (fraction of gap recovered)": report.gain,
            "cost c_rel (fraction of cost gap paid)": report.cost,
            "efficiency e = g_rel / c_rel": report.efficiency,
        },
        title="-- completeness / cost trade-off --",
    ))

    print()
    print(format_mapping(
        {
            "wall-clock all-exact (s)": outcome.wall_clock["exact"],
            "wall-clock all-approximate (s)": outcome.wall_clock["approximate"],
            "wall-clock adaptive (s)": outcome.wall_clock["adaptive"],
            "steps spent fully exact (fraction)": outcome.adaptive.trace.exact_step_fraction(),
            "state transitions": outcome.adaptive.trace.transition_count,
            "total example runtime (s)": elapsed,
        },
        title="-- execution profile --",
    ))

    recalls = {name: ev.recall for name, ev in outcome.evaluations.items()}
    print()
    print(format_mapping(recalls, title="-- completeness vs ground truth (recall) --"))


if __name__ == "__main__":
    main()
