#!/usr/bin/env python3
"""The layered runtime: sessions, switch policies and the event bus.

This example drives the *same* generated workload through three registered
switch policies (``mar``, ``fixed``, ``budget-greedy``), attaches live
event-bus collectors to one run, and registers a tiny custom policy — all
without touching the execution loop.  See ARCHITECTURE.md for the layer
diagram.

Run with::

    python examples/runtime_policies.py
"""

from __future__ import annotations

from repro import EventBus, JoinSession, RunConfig, Thresholds, register_policy
from repro.core.state_machine import JoinState
from repro.datagen.testcases import TestCaseSpec, generate_test_case
from repro.runtime.collectors import MatchTap, SwitchLog
from repro.runtime.policy import SwitchPolicy

THRESHOLDS = Thresholds(delta_adapt=50, window_size=50)


@register_policy("after-1000")
class AfterStep1000Policy(SwitchPolicy):
    """Custom demo policy: go all-approximate unconditionally at step 1000.

    ``next_activation_step`` declares the one-shot boundary so the batched
    ``run()`` loop pauses there even though 1000 need not be a multiple of
    ``δ_adapt``.
    """

    def next_activation_step(self, step_count: int):
        return 1000 if step_count < 1000 else None

    def should_activate(self, step: int) -> bool:
        return step == 1000

    def activate(self, step: int) -> None:
        self.session.force_state(JoinState.LAP_RAP, step)


def main() -> None:
    dataset = generate_test_case(
        TestCaseSpec(
            name="runtime_demo",
            pattern="few_high",
            variants_in="child",
            parent_size=600,
            child_size=1200,
            seed=7,
        )
    )
    print(
        f"workload: {len(dataset.parent)} parent rows, "
        f"{len(dataset.child)} child rows, "
        f"{dataset.child_variant_count} child variants\n"
    )

    # One declarative config per policy; everything else is shared.
    for policy in ("mar", "fixed", "budget-greedy", "after-1000"):
        config = RunConfig.from_thresholds(
            THRESHOLDS,
            policy=policy,
            budget_fraction=0.4 if policy == "budget-greedy" else None,
        )
        session = JoinSession(dataset.parent, dataset.child, "location", config)
        result = session.run()
        occupancy = {
            state.short_label: steps
            for state, steps in result.trace.steps_per_state.items()
            if steps
        }
        print(
            f"{policy:>14}: {result.result_size:4d} pairs, "
            f"{result.trace.transition_count} transitions, "
            f"final={result.final_state.label}, steps={occupancy}"
        )

    # Observers are bus subscribers: attach collectors, run, read them off.
    bus = EventBus()
    tap = MatchTap().attach(bus)
    switches = SwitchLog().attach(bus)
    session = JoinSession(
        dataset.parent,
        dataset.child,
        "location",
        RunConfig.from_thresholds(THRESHOLDS),
        bus=bus,
    )
    result = session.run()
    print(
        f"\nevent bus: {len(tap.events)} match events "
        f"({tap.approximate_count} via the approximate operator), "
        f"{len(switches.records)} operator switches re-indexing "
        f"{switches.total_catch_up_tuples} tuples"
    )
    assert len(tap.events) == result.result_size


if __name__ == "__main__":
    main()
