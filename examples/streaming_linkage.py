#!/usr/bin/env python3
"""Streaming record linkage with live adaptive switching.

The adaptive join was designed for inputs that are only available at query
time — e.g. data streams.  This example feeds the join from two
:class:`~repro.engine.streams.RecordStream` objects (no table pre-analysis
possible), steps the :class:`~repro.runtime.adaptive.AdaptiveJoinProcessor`
manually, and prints the processor state every time the MAR loop switches
operators, so you can watch the algorithm react to a burst of dirty data in
the middle of the stream and relax back to the exact join afterwards.

Run with::

    python examples/streaming_linkage.py
"""

from __future__ import annotations

import random

from repro.runtime.adaptive import AdaptiveJoinProcessor
from repro.core.thresholds import Thresholds
from repro.datagen.municipalities import generate_location_strings
from repro.datagen.variants import make_variant
from repro.engine.streams import ListStream
from repro.engine.tuples import Record, Schema

PARENT_SCHEMA = Schema(["municipality_id", "location"], name="atlas")
CHILD_SCHEMA = Schema(["event_id", "location"], name="events")

PARENT_SIZE = 1200
CHILD_SIZE = 900
#: The middle third of the event stream is dirty (40 % variants).
DIRTY_REGION = (0.35, 0.65)
DIRTY_RATE = 0.40


def build_streams(seed: int = 3):
    """Build the atlas stream and an event stream with a dirty burst."""
    rng = random.Random(seed)
    locations = generate_location_strings(PARENT_SIZE, seed=seed)

    parent_records = [
        Record(PARENT_SCHEMA, {"municipality_id": i, "location": loc})
        for i, loc in enumerate(locations)
    ]

    child_records = []
    for event_id in range(CHILD_SIZE):
        location = rng.choice(locations)
        position = event_id / CHILD_SIZE
        if DIRTY_REGION[0] <= position < DIRTY_REGION[1] and rng.random() < DIRTY_RATE:
            location = make_variant(location, rng)
        child_records.append(
            Record(CHILD_SCHEMA, {"event_id": event_id, "location": location})
        )

    return (
        ListStream(PARENT_SCHEMA, parent_records, name="atlas-stream"),
        ListStream(CHILD_SCHEMA, child_records, name="event-stream"),
    )


def main() -> None:
    atlas_stream, event_stream = build_streams()
    processor = AdaptiveJoinProcessor(
        atlas_stream,
        event_stream,
        "location",
        thresholds=Thresholds(delta_adapt=50, window_size=50),
        parent_size=PARENT_SIZE,
    )

    print(f"streaming {PARENT_SIZE} atlas rows against {CHILD_SIZE} events")
    print(f"initial state: {processor.state.label}\n")

    previous_state = processor.state
    while not processor.finished:
        processor.step()
        if processor.state is not previous_state:
            step = processor.engine.step_count
            matches = len(processor.matches)
            print(
                f"step {step:5d}: {previous_state.label} -> {processor.state.label} "
                f"({matches} matches so far)"
            )
            previous_state = processor.state

    trace = processor.trace
    print(f"\nfinished in state {processor.state.label}")
    print(f"matches produced: {trace.total_matches} / {CHILD_SIZE} events")
    print("steps per state:", {s.label: n for s, n in trace.steps_per_state.items()})
    print(f"state transitions: {trace.transition_count}")
    print(f"control-loop activations: {trace.assessment_count()}")


if __name__ == "__main__":
    main()
