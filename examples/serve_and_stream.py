#!/usr/bin/env python3
"""Linkage-as-a-service tour: embed the HTTP server, drive it as a client.

``repro.server`` turns the jobs layer into a long-lived service: jobs
are submitted as JSON over HTTP, scheduled fairly across a shared worker
budget, streamed as NDJSON while they run, and survive restarts when the
server is given a disk-backed store.  This example embeds a
:class:`~repro.server.LinkageServer` on an ephemeral port and walks the
whole client surface with nothing but the standard library:

1. ``POST /jobs`` — submit a sharded adaptive job (inline tables);
2. ``GET /jobs/{id}/matches`` — stream NDJSON matches as they are found
   (byte-identical to ``repro link --stream`` for the same spec);
3. ``GET /jobs/{id}`` — live progress, then final statistics;
4. ``DELETE /jobs/{id}`` — cancel a second, lower-priority job mid-run;
5. ``GET /metrics`` — the scheduler's counters.

The same server runs standalone as ``repro serve`` (add ``--store
jobs.jsonl`` and interrupted jobs resume automatically after a restart).

Run with::

    python examples/serve_and_stream.py
"""

from __future__ import annotations

import json
import time
import urllib.request

from repro.datagen.testcases import STANDARD_TEST_CASES, generate_test_case
from repro.server import LinkageServer


def build_payload():
    dataset = generate_test_case(
        STANDARD_TEST_CASES["uniform_child"], parent_size=120, child_size=200
    )
    print(
        f"workload: {len(dataset.parent)} parent rows, "
        f"{len(dataset.child)} child rows\n"
    )

    def inline(table):
        return {
            "columns": list(table.schema.attributes),
            "rows": [list(record.values) for record in table],
        }

    return {
        "left": inline(dataset.parent),
        "right": inline(dataset.child),
        "attribute": "location",
        "shards": 3,
        "thresholds": {"delta_adapt": 25, "window_size": 25},
    }


def request(url, method="GET", body=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(req, timeout=60) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def main():
    payload = build_payload()
    server = LinkageServer(port=0, max_workers=2)
    server.start()
    print(f"server listening on {server.url}\n")
    try:
        # 1. Submit over HTTP.
        status, job = request(f"{server.url}/jobs", method="POST", body=payload)
        print(f"POST /jobs -> {status}: {job['id']} is {job['state']}")

        # 2. Stream the NDJSON match feed while the job runs.
        lines = []
        with urllib.request.urlopen(
            f"{server.url}/jobs/{job['id']}/matches", timeout=120
        ) as stream:
            for raw in stream:
                lines.append(json.loads(raw.decode("utf-8")))
                if len(lines) == 1:
                    print(f"first streamed match: {lines[0]}")
        print(f"streamed {len(lines)} NDJSON matches\n")

        # 3. The status body: final state, progress and statistics.
        while True:
            _, body = request(f"{server.url}/jobs/{job['id']}")
            if body["state"] in ("finished", "cancelled", "failed"):
                break
            time.sleep(0.05)
        print(
            f"{job['id']} finished: result_size={body['result_size']}, "
            f"steps={body['progress']['steps']}, "
            f"shards={body['progress']['shards_done']}"
        )

        # 4. Cancel a second job mid-run (DELETE answers 202 immediately).
        _, second = request(f"{server.url}/jobs", method="POST", body=payload)
        status, body = request(
            f"{server.url}/jobs/{second['id']}", method="DELETE"
        )
        print(f"DELETE /jobs/{second['id']} -> {status} ({body['state']})")

        # 5. The scheduler's counters.
        with urllib.request.urlopen(f"{server.url}/metrics", timeout=30) as resp:
            metrics = resp.read().decode("utf-8")
        print("\nGET /metrics:")
        for line in metrics.strip().splitlines():
            print(f"  {line}")
    finally:
        server.shutdown()
    print("\nserver stopped cleanly")


if __name__ == "__main__":
    main()
