#!/usr/bin/env python3
"""Explore the threshold space of the adaptive strategy (paper Sec. 4.2).

The paper tunes its thresholds empirically and reports that the best
settings vary little across test cases.  This example repeats a small
version of that exploration: it sweeps the assessment frequency
``δ_adapt``, the similarity threshold ``θ_sim`` and the past-perturbation
threshold ``θ_pastpert`` around the paper's operating point on one test
case, printing gain, cost and efficiency for each setting.

Run with::

    python examples/tuning_exploration.py [test_case]
"""

from __future__ import annotations

import sys

from repro.bench.reporting import format_table
from repro.bench.tuning import sweep_parameter

PARENT_SIZE = 1000
CHILD_SIZE = 700

SWEEPS = {
    "delta_adapt": (25, 50, 100, 200, 400),
    "theta_sim": (0.75, 0.80, 0.85, 0.90),
    "theta_pastpert": (1, 2, 5, 10),
}


def main() -> None:
    test_case = sys.argv[1] if len(sys.argv) > 1 else "interleaved_low_child"
    print(f"tuning exploration on test case {test_case!r} "
          f"({PARENT_SIZE} x {CHILD_SIZE} rows)\n")

    for parameter, values in SWEEPS.items():
        points = sweep_parameter(
            parameter,
            values,
            test_case=test_case,
            parent_size=PARENT_SIZE,
            child_size=CHILD_SIZE,
        )
        rows = [point.as_dict() for point in points]
        print(format_table(rows, title=f"-- sweep of {parameter} --"))
        print()


if __name__ == "__main__":
    main()
