"""Partitioned execution: split one logical join into N shard inputs.

A :class:`~repro.runtime.session.JoinSession` was built to be the unit of
parallelism — it owns its engine, bus, policy and trace and shares no
mutable state with other sessions.  This module supplies the *partition*
and *merge* halves of the partition → execute → merge pipeline on top of
that unit (the *execute* half — the serial/thread/process backends — lives
in :mod:`repro.runtime.parallel`):

* :class:`Partitioner` — a deterministic record → shard assignment,
  registered by name (``"hash"``, ``"round-robin"``, ``"range"``);
* :class:`ShardPlan` — materialises per-shard
  :class:`~repro.engine.streams.RecordStream` pairs from the two inputs
  (bulk split for in-memory streams, single-pass fan-out for lazy ones)
  and remembers each shard record's *origin* index so merged results can
  report global pair identities;
* :class:`ShardedJoinResult` — the mergeable aggregate over per-shard
  :class:`~repro.runtime.session.AdaptiveJoinResult`s: merged match
  tuple, merged :class:`~repro.joins.base.OperationCounters`, a
  shard-tagged step-offset-aware merged
  :class:`~repro.core.trace.ExecutionTrace`
  (:func:`repro.core.trace.merge_traces`), with the per-shard detail
  preserved for debugging.

Correctness model
-----------------
Shards are *disjoint*: every record lands in exactly one shard, so a pair
can never be emitted twice and merged counter totals are plain sums.  The
``hash`` partitioner co-partitions both sides by join-key value, which
makes every *value-equal* pair co-located: the sharded run finds exactly
the equi-matches the unsharded run finds, with bit-identical merged
counters when the run stays in the exact operator.  Approximate
(cross-value) matches are found whenever the pair co-partitions; a variant
pair whose two spellings hash to different shards is not discoverable by
any disjoint partitioning — sharding trades a sliver of approximate recall
for parallelism, exactly like distributed similarity joins without gram
replication.  ``round-robin`` and ``range`` do not co-partition by value
and are throughput/skew tools, not correctness-preserving defaults.  See
ARCHITECTURE.md ("Sharded execution") for the full guarantee table.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.cost_model import CostModel
from repro.core.state_machine import JoinState
from repro.core.trace import ExecutionTrace, merge_traces
from repro.engine.streams import InputLike, ListStream, RecordStream, as_stream
from repro.engine.tuples import Record, Schema
from repro.joins.base import JoinAttribute, JoinSide, MatchEvent, OperationCounters
from repro.runtime.session import AdaptiveJoinResult

#: Chunk size for splitting bulk-capable streams (one slice per chunk).
_BULK_SPLIT_BATCH = 8192


class Partitioner:
    """Deterministic record → shard assignment, shared by both join sides.

    Subclasses implement :meth:`assign`.  Assignments must be pure
    functions of their arguments (no randomness, no hidden per-call
    state): the same record must land in the same shard on every run and
    in every process, which is what makes the ``serial`` backend
    bit-deterministic and the backends interchangeable.
    """

    #: Registry name, filled in by :func:`register_partitioner`.
    name: str = ""

    def assign(
        self, side: JoinSide, ordinal: int, value: str, shard_count: int
    ) -> int:
        """Shard index in ``[0, shard_count)`` for one record.

        Parameters
        ----------
        side:
            The input the record was read from.
        ordinal:
            Position of the record in its side's arrival order (0-based).
        value:
            The record's join-attribute value (stringified, ``None`` →
            ``""`` — the same normalisation the join stores).
        shard_count:
            Total number of shards.
        """
        raise NotImplementedError


# -- registry -------------------------------------------------------------------------

_PARTITIONERS: Dict[str, Callable[[], Partitioner]] = {}


def register_partitioner(name: str):
    """Class decorator registering a :class:`Partitioner` under ``name``."""
    if not name:
        raise ValueError("partitioner name must be non-empty")

    def decorate(cls):
        if name in _PARTITIONERS:
            raise ValueError(f"partitioner {name!r} is already registered")
        _PARTITIONERS[name] = cls
        cls.name = name
        return cls

    return decorate


def create_partitioner(name: str) -> Partitioner:
    """Instantiate the partitioner registered under ``name``."""
    try:
        factory = _PARTITIONERS[name]
    except KeyError:
        raise ValueError(
            f"unknown partitioner {name!r}; registered: {available_partitioners()}"
        ) from None
    return factory()


def available_partitioners() -> Tuple[str, ...]:
    """Names of all registered partitioners, sorted."""
    return tuple(sorted(_PARTITIONERS))


# -- the built-in strategies ------------------------------------------------------------


@register_partitioner("hash")
class HashPartitioner(Partitioner):
    """Co-partition both sides by a stable hash of the join-key value.

    The default and the correctness-preserving choice for equi-match
    semantics: tuples with equal join-key values land in the same shard
    regardless of side, so an exact probe inside a shard scans exactly the
    bucket it would have scanned unsharded.  Uses CRC-32 rather than
    Python's ``hash`` so assignments are stable across processes and runs
    (``PYTHONHASHSEED`` does not leak into shard layouts).
    """

    def assign(
        self, side: JoinSide, ordinal: int, value: str, shard_count: int
    ) -> int:
        return zlib.crc32(value.encode("utf-8")) % shard_count


@register_partitioner("round-robin")
class RoundRobinPartitioner(Partitioner):
    """Deal each side's records over the shards in arrival order.

    Perfectly balanced (shard sizes differ by at most one per side) but
    *not* co-partitioning: equal values from the two sides usually land in
    different shards, so matches are only found when a pair happens to
    co-locate.  Useful as a load-balance / overhead baseline and for
    workloads that post-process shards independently.
    """

    def assign(
        self, side: JoinSide, ordinal: int, value: str, shard_count: int
    ) -> int:
        return ordinal % shard_count


@register_partitioner("range")
class RangePartitioner(Partitioner):
    """Partition by position of the value in the (byte-ordered) key space.

    The first eight UTF-8 bytes of the value are read as a big-endian
    fraction of the full 64-bit space and scaled by the shard count, so
    lexicographically close values co-locate (range locality for
    range-ish workloads) and both sides co-partition on equal values.
    Skewed key distributions produce skewed shards — this partitioner
    trades balance for order, the opposite of ``hash``.
    """

    _WIDTH = 8

    def assign(
        self, side: JoinSide, ordinal: int, value: str, shard_count: int
    ) -> int:
        prefix = value.encode("utf-8")[: self._WIDTH]
        key = int.from_bytes(prefix.ljust(self._WIDTH, b"\0"), "big")
        return min(shard_count - 1, (key * shard_count) >> (8 * self._WIDTH))


# -- shard plans ------------------------------------------------------------------------


@dataclass
class ShardInput:
    """One shard's slice of one side: the records plus their origin indices."""

    schema: Schema
    records: List[Record]
    #: ``origins[i]`` is the position of ``records[i]`` in the original
    #: input's arrival order — the global ordinal merged results report.
    origins: List[int]
    name: str = ""

    def stream(self) -> ListStream:
        """A fresh stream over this shard input (streams are single-use)."""
        return ListStream(self.schema, self.records, name=self.name)

    def __len__(self) -> int:
        return len(self.records)


class ShardPlan:
    """The partition step: N per-shard (left, right) input pairs.

    Build one with :meth:`build`; hand it to
    :class:`~repro.runtime.parallel.ParallelExecutor`.  The plan owns the
    materialised shard records (not live streams), so one plan can be
    executed any number of times and shipped to worker processes.

    Splitting honours the stream contract: inputs advertising
    ``supports_bulk_pull`` (tables, in-memory streams) are split through
    chunked bulk pulls; lazy sources (``IteratorStream``,
    ``GeneratorStream``, operators) are fanned out in a single pass of
    ``next_record`` — each record is pulled exactly once and never ahead
    of need, so a partially consumed or expensive producer is drained
    without over-pull.
    """

    def __init__(
        self,
        attribute: JoinAttribute,
        partitioner: Partitioner,
        left_shards: List[ShardInput],
        right_shards: List[ShardInput],
    ) -> None:
        if len(left_shards) != len(right_shards):
            raise ValueError(
                f"left/right shard lists disagree: {len(left_shards)} vs "
                f"{len(right_shards)}"
            )
        self.attribute = attribute
        self.partitioner = partitioner
        self.left_shards = left_shards
        self.right_shards = right_shards

    @classmethod
    def build(
        cls,
        left: InputLike,
        right: InputLike,
        attribute: Union[str, JoinAttribute],
        shard_count: int,
        partitioner: Union[str, Partitioner] = "hash",
    ) -> "ShardPlan":
        """Partition both inputs into ``shard_count`` co-numbered shards."""
        if shard_count < 1:
            raise ValueError(f"shard_count must be at least 1, got {shard_count}")
        if isinstance(attribute, str):
            attribute = JoinAttribute(attribute, attribute)
        if isinstance(partitioner, str):
            partitioner = create_partitioner(partitioner)
        left_shards = _split_side(
            as_stream(left), JoinSide.LEFT, attribute.left, shard_count, partitioner
        )
        right_shards = _split_side(
            as_stream(right), JoinSide.RIGHT, attribute.right, shard_count, partitioner
        )
        return cls(attribute, partitioner, left_shards, right_shards)

    @property
    def shard_count(self) -> int:
        """Number of shards in the plan."""
        return len(self.left_shards)

    def shard_sizes(self) -> List[Tuple[int, int]]:
        """Per-shard ``(left records, right records)`` sizes."""
        return [
            (len(left), len(right))
            for left, right in zip(self.left_shards, self.right_shards)
        ]

    def shard_streams(self, shard_id: int) -> Tuple[ListStream, ListStream]:
        """Fresh (left, right) streams for one shard."""
        return (
            self.left_shards[shard_id].stream(),
            self.right_shards[shard_id].stream(),
        )

    def __repr__(self) -> str:
        return (
            f"<ShardPlan {self.partitioner.name or type(self.partitioner).__name__} "
            f"shards={self.shard_count} sizes={self.shard_sizes()}>"
        )


def _split_side(
    stream: RecordStream,
    side: JoinSide,
    attribute: str,
    shard_count: int,
    partitioner: Partitioner,
) -> List[ShardInput]:
    """Route one side's records to per-shard inputs (single pass)."""
    schema = stream.schema
    position = schema.position(attribute)
    shards = [
        ShardInput(
            schema=schema,
            records=[],
            origins=[],
            name=f"{stream.name}[shard {shard_id}/{shard_count}]",
        )
        for shard_id in range(shard_count)
    ]
    assign = partitioner.assign
    ordinal = 0

    def route(record: Record) -> None:
        nonlocal ordinal
        value = record.value_at(position)
        # Same normalisation the join's tuple store applies (None → "").
        key = "" if value is None else str(value)
        shard = shards[assign(side, ordinal, key, shard_count)]
        shard.records.append(record)
        shard.origins.append(ordinal)
        ordinal += 1

    if stream.supports_bulk_pull:
        while True:
            batch = stream.next_records(_BULK_SPLIT_BATCH)
            if not batch:
                break
            for record in batch:
                route(record)
    else:
        # Lazy/live source: single-pass fan-out, one record per pull —
        # each record is pulled exactly once and never ahead of need.
        while True:
            record = stream.next_record()
            if record is None:
                break
            route(record)
    return shards


# -- mergeable results ------------------------------------------------------------------


def merge_counters(counters: Sequence[OperationCounters]) -> OperationCounters:
    """Sum a sequence of counter objects (empty sequence → zero counters)."""
    merged = OperationCounters()
    for item in counters:
        merged = merged.merge(item)
    return merged


@dataclass
class ShardOutcome:
    """One shard's complete result, with the origin maps to globalise it."""

    shard_id: int
    result: AdaptiveJoinResult
    #: Shard-local ordinal → original input index, per side.
    left_origins: List[int]
    right_origins: List[int]
    #: Wall-clock seconds the shard session took (as measured by its
    #: backend worker; includes session construction).
    wall_seconds: float = 0.0

    def matched_pairs(self) -> List[Tuple[int, int]]:
        """Global ``(left index, right index)`` pairs of this shard.

        :class:`~repro.joins.base.MatchEvent` ordinals are shard-local
        arrival positions; the origin maps recorded by the
        :class:`ShardPlan` translate them back to positions in the
        original inputs, so pairs are comparable with an unsharded run.
        """
        left_origins = self.left_origins
        right_origins = self.right_origins
        return [
            (left_origins[event.left.ordinal], right_origins[event.right.ordinal])
            for event in self.result.matches
        ]


@dataclass
class ShardedJoinResult:
    """Everything produced by one sharded join run.

    Mirrors the :class:`~repro.runtime.session.AdaptiveJoinResult` surface
    (matches / counters / trace / result size / weighted cost) so callers
    can consume either interchangeably, while keeping the per-shard
    results around (``shards``) for debugging and skew analysis.  All
    merged views are deterministic: shards are always combined in shard-id
    order, regardless of the order the backend finished them in.  The
    merges are computed once and cached — the result is immutable.
    """

    shards: Tuple[ShardOutcome, ...]
    backend: str
    partitioner: str

    def __post_init__(self) -> None:
        self.shards = tuple(
            sorted(self.shards, key=lambda outcome: outcome.shard_id)
        )

    # -- merged views ----------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        """Number of shards that executed."""
        return len(self.shards)

    @cached_property
    def matches(self) -> Tuple[MatchEvent, ...]:
        """All matched pairs: shard-id order, emission order within a shard.

        Events carry *shard-local* tuple ordinals; use
        :meth:`matched_pairs` for globally comparable pair identities.
        """
        events: List[MatchEvent] = []
        for outcome in self.shards:
            events.extend(outcome.result.matches)
        return tuple(events)

    @property
    def result_size(self) -> int:
        """Number of matched pairs across all shards (``r_abs``)."""
        return sum(outcome.result.result_size for outcome in self.shards)

    @cached_property
    def counters(self) -> OperationCounters:
        """Merged elementary-operation counters (plain sums: shards are disjoint)."""
        return merge_counters(
            [outcome.result.counters for outcome in self.shards]
        )

    @cached_property
    def trace(self) -> ExecutionTrace:
        """Shard-tagged, step-offset-aware merged trace (see :func:`merge_traces`)."""
        return merge_traces(
            [outcome.result.trace for outcome in self.shards],
            shard_ids=[outcome.shard_id for outcome in self.shards],
        )

    @property
    def output_schema(self) -> Schema:
        """Schema of the joined output records (identical in every shard)."""
        return self.shards[0].result.output_schema

    @property
    def final_states(self) -> Dict[int, JoinState]:
        """Final processor state per shard (shards adapt independently)."""
        return {
            outcome.shard_id: outcome.result.final_state
            for outcome in self.shards
        }

    def matched_pairs(self) -> List[Tuple[int, int]]:
        """Global (left index, right index) pairs, comparable with unsharded runs."""
        pairs: List[Tuple[int, int]] = []
        for outcome in self.shards:
            pairs.extend(outcome.matched_pairs())
        return pairs

    def pair_set(self) -> frozenset:
        """The merged match *set* (global pair identities, order-free)."""
        return frozenset(self.matched_pairs())

    def output_records(self) -> List[Record]:
        """Materialise the joined output records, in merged-match order."""
        records: List[Record] = []
        for outcome in self.shards:
            records.extend(outcome.result.output_records())
        return records

    def weighted_cost(self, cost_model: Optional[CostModel] = None) -> float:
        """``c_abs`` summed over shards (weights apply per-state, so sums are exact)."""
        model = cost_model or CostModel()
        return sum(
            model.absolute_cost(outcome.result.trace) for outcome in self.shards
        )

    def per_shard_summary(self) -> List[Dict[str, object]]:
        """One flat row per shard for reports: sizes, matches, state, timing."""
        return [
            {
                "shard": outcome.shard_id,
                "left_records": len(outcome.left_origins),
                "right_records": len(outcome.right_origins),
                "matches": outcome.result.result_size,
                "final_state": outcome.result.final_state.label,
                "total_steps": outcome.result.trace.total_steps,
                "wall_seconds": round(outcome.wall_seconds, 4),
            }
            for outcome in self.shards
        ]
