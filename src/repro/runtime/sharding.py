"""Partitioned execution: split one logical join into N shard inputs.

A :class:`~repro.runtime.session.JoinSession` was built to be the unit of
parallelism — it owns its engine, bus, policy and trace and shares no
mutable state with other sessions.  This module supplies the *partition*
and *merge* halves of the partition → execute → merge pipeline on top of
that unit (the *execute* half — the serial/thread/process backends — lives
in :mod:`repro.runtime.parallel`):

* :class:`Partitioner` — a deterministic record → shard assignment
  (single-shard via :meth:`~Partitioner.assign`, multi-shard replication
  via :meth:`~Partitioner.assign_many`), registered by name (``"hash"``,
  ``"round-robin"``, ``"range"``, ``"gram"``);
* :class:`ShardPlan` — materialises per-shard
  :class:`~repro.engine.streams.RecordStream` pairs from the two inputs
  (bulk split for in-memory streams, single-pass fan-out for lazy ones)
  and remembers each shard record's *origin* index so merged results can
  report global pair identities;
* :class:`ShardedJoinResult` — the mergeable aggregate over per-shard
  :class:`~repro.runtime.session.AdaptiveJoinResult`s: merged match
  tuple, merged :class:`~repro.joins.base.OperationCounters`, a
  shard-tagged step-offset-aware merged
  :class:`~repro.core.trace.ExecutionTrace`
  (:func:`repro.core.trace.merge_traces`), with the per-shard detail
  preserved for debugging.

Correctness model
-----------------
Partitioners come in two kinds, selected by :meth:`Partitioner.assign_many`:

*Disjoint* (``hash``, ``round-robin``, ``range``): every record lands in
exactly one shard, so a pair can never be emitted twice and merged
counter totals are plain sums.  The ``hash`` partitioner co-partitions
both sides by join-key value, which makes every *value-equal* pair
co-located: the sharded run finds exactly the equi-matches the unsharded
run finds, with bit-identical merged counters when the run stays in the
exact operator.  Approximate (cross-value) matches are found whenever the
pair co-partitions; a variant pair whose two spellings hash to different
shards is not discoverable by any disjoint partitioning — sharding trades
a sliver of approximate recall for parallelism, exactly like distributed
similarity joins without gram replication.  ``round-robin`` and ``range``
do not co-partition by value and are throughput/skew tools, not
correctness-preserving defaults.

*Replicated* (``gram``): a record is routed to *every* shard owning one
of its distinct q-gram buckets.  Any pair the approximate operator can
match shares at least one q-gram (the counter test requires
``shared ≥ ⌈θ·g⌉ ≥ 1``), and the shard owning a shared gram holds *both*
records in full — so every matchable pair is co-located and generated as
a candidate in at least one shard: partitioning never separates a pair
the operator could match.  Whether the co-located candidate then *passes*
depends on the match predicate.  Under ``verify_jaccard=True`` the
predicate (Jaccard ≥ θ) is a symmetric function of the pair, so the
sharded match set equals the unsharded one exactly — recall 1.0 at any
shard count, unconditionally.  Under the paper's default counter-only
test the threshold ``⌈θ·g⌉`` is computed from the *probing* record's
gram count, and which record probes depends on arrival interleave —
which any sharding (hash included) changes — so a borderline pair whose
two gram counts straddle the threshold can flip in either direction;
real variant workloads sit far from that boundary (pinned on fixtures by
the equivalence tests), but the exactness *guarantee* is the symmetric
predicate's.  The price of replication is repeated work (each record is
indexed and probed once per owning shard) and duplicate discoveries,
which :class:`ShardedJoinResult` removes at merge time
(first-shard-wins, so serial runs stay bit-deterministic) while keeping
the raw totals visible.  See ARCHITECTURE.md ("Sharded execution") for
the full guarantee table.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.cost_model import CostModel
from repro.core.state_machine import JoinState
from repro.core.trace import ExecutionTrace, merge_traces
from repro.engine.streams import (
    InputLike,
    ListStream,
    RecordStream,
    RowSliceStream,
    as_stream,
)
from repro.engine.tuples import Record, Schema
from repro.joins.base import JoinAttribute, JoinSide, MatchEvent, OperationCounters
from repro.joins.fastpath import GramInterner
from repro.runtime.failures import ShardFailure
from repro.runtime.handoff import (
    HANDOFF_MODES,
    BlockDescriptor,
    PublishedBlock,
    SideBlock,
    build_descriptor,
    publish_block,
    shared_memory_available,
)
from repro.runtime.session import AdaptiveJoinResult

#: Chunk size for splitting bulk-capable streams (one slice per chunk).
_BULK_SPLIT_BATCH = 8192


class Partitioner:
    """Deterministic record → shard assignment, shared by both join sides.

    Subclasses implement :meth:`assign` (one shard per record) and may
    additionally override :meth:`assign_many` to *replicate* a record
    into several shards.  Assignments must be pure functions of their
    arguments (no randomness, no hidden per-call state — memoisation of
    pure results is fine): the same record must land in the same shards
    on every run and in every process, which is what makes the ``serial``
    backend bit-deterministic and the backends interchangeable.
    """

    #: Registry name, filled in by :func:`register_partitioner`.
    name: str = ""
    #: Whether :meth:`assign_many` may return more than one shard.
    #: Replicating partitioners repeat work per replica and rely on the
    #: merge-time dedup of :class:`ShardedJoinResult`.
    replicates: bool = False

    def assign(
        self, side: JoinSide, ordinal: int, value: str, shard_count: int
    ) -> int:
        """Shard index in ``[0, shard_count)`` for one record.

        Parameters
        ----------
        side:
            The input the record was read from.
        ordinal:
            Position of the record in its side's arrival order (0-based).
        value:
            The record's join-attribute value (stringified, ``None`` →
            ``""`` — the same normalisation the join stores).
        shard_count:
            Total number of shards.
        """
        raise NotImplementedError

    def assign_many(
        self, side: JoinSide, ordinal: int, value: str, shard_count: int
    ) -> Tuple[int, ...]:
        """All shards the record belongs to (non-empty, each in range).

        The routing hook :class:`ShardPlan` actually calls.  Defaults to
        the single :meth:`assign` shard, so disjoint partitioners only
        implement ``assign``; replicating partitioners override this and
        return every owning shard (duplicate-free, deterministic order).
        """
        return (self.assign(side, ordinal, value, shard_count),)

    def prepare(
        self,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        shard_count: int,
    ) -> None:
        """Observe both sides' full join-key corpus before routing begins.

        :meth:`ShardPlan.build` collects both inputs first and calls this
        exactly once, before the first :meth:`assign_many`.  Partitioners
        whose assignment depends on *global* statistics (the
        ``gram-prefix`` partitioner ranks grams by corpus frequency)
        override it; the default is a no-op.  Whatever state ``prepare``
        derives must be a pure function of its arguments, preserving the
        determinism contract of :meth:`assign` — and it is per-plan state,
        so a partitioner instance must not be shared across plans over
        different inputs.
        """

    @classmethod
    def from_config(cls, config) -> "Partitioner":
        """Build an instance tuned to a :class:`~repro.runtime.config.RunConfig`.

        The default ignores the config; partitioners whose assignment
        depends on run parameters (``gram`` mirrors the engine's ``q``
        and gram padding) override this so
        :func:`~repro.runtime.parallel.run_sharded` can hand them the
        run's configuration.
        """
        return cls()

    def check_config(self, config) -> None:
        """Validate this instance against the run configuration.

        Called by :meth:`ShardPlan.build` (when given a config) and by
        :meth:`~repro.runtime.parallel.ParallelExecutor.run` before a
        plan executes.  The default accepts anything; config-sensitive
        partitioners raise when a hand-built instance disagrees with the
        run's parameters — a mismatch would silently void their
        correctness guarantees.
        """


# -- registry -------------------------------------------------------------------------

_PARTITIONERS: Dict[str, Callable[[], Partitioner]] = {}


def register_partitioner(name: str):
    """Class decorator registering a :class:`Partitioner` under ``name``."""
    if not name:
        raise ValueError("partitioner name must be non-empty")

    def decorate(cls):
        if name in _PARTITIONERS:
            raise ValueError(f"partitioner {name!r} is already registered")
        _PARTITIONERS[name] = cls
        cls.name = name
        return cls

    return decorate


def create_partitioner(name: str, config=None) -> Partitioner:
    """Instantiate the partitioner registered under ``name``.

    ``config`` (an optional :class:`~repro.runtime.config.RunConfig`) is
    forwarded to the partitioner's :meth:`Partitioner.from_config` so
    config-sensitive partitioners (``gram``) mirror the run's parameters;
    with ``None`` every partitioner falls back to its own defaults.
    """
    try:
        factory = _PARTITIONERS[name]
    except KeyError:
        raise ValueError(
            f"unknown partitioner {name!r}; registered: {available_partitioners()}"
        ) from None
    if config is not None:
        from_config = getattr(factory, "from_config", None)
        if from_config is not None:
            return from_config(config)
    return factory()


def available_partitioners() -> Tuple[str, ...]:
    """Names of all registered partitioners, sorted."""
    return tuple(sorted(_PARTITIONERS))


def partitioner_replicates(name: str) -> bool:
    """Whether the partitioner registered under ``name`` replicates records.

    Registry metadata only — no instance is built.  Consumers that plan
    work volumes (the jobs layer's progress totals) use this: under a
    replicating partitioner the true step count is the *replicated*
    record volume, unknowable before the plan is built.
    """
    try:
        factory = _PARTITIONERS[name]
    except KeyError:
        raise ValueError(
            f"unknown partitioner {name!r}; registered: {available_partitioners()}"
        ) from None
    return bool(getattr(factory, "replicates", False))


# -- the built-in strategies ------------------------------------------------------------


def stable_value_shard(value: str, shard_count: int) -> int:
    """The stable CRC-32 shard of a join-key value.

    The one definition of value-hash co-partitioning, shared by
    :class:`HashPartitioner` and the gram partitioner's gram-free
    fallback — equal values land together across both, by construction.
    Uses CRC-32 rather than Python's ``hash`` so assignments are stable
    across processes and runs (``PYTHONHASHSEED`` does not leak into
    shard layouts).
    """
    return zlib.crc32(value.encode("utf-8")) % shard_count


@register_partitioner("hash")
class HashPartitioner(Partitioner):
    """Co-partition both sides by a stable hash of the join-key value.

    The default and the correctness-preserving choice for equi-match
    semantics: tuples with equal join-key values land in the same shard
    regardless of side, so an exact probe inside a shard scans exactly the
    bucket it would have scanned unsharded (see :func:`stable_value_shard`).
    """

    def assign(
        self, side: JoinSide, ordinal: int, value: str, shard_count: int
    ) -> int:
        return stable_value_shard(value, shard_count)


@register_partitioner("round-robin")
class RoundRobinPartitioner(Partitioner):
    """Deal each side's records over the shards in arrival order.

    Perfectly balanced (shard sizes differ by at most one per side) but
    *not* co-partitioning: equal values from the two sides usually land in
    different shards, so matches are only found when a pair happens to
    co-locate.  Useful as a load-balance / overhead baseline and for
    workloads that post-process shards independently.
    """

    def assign(
        self, side: JoinSide, ordinal: int, value: str, shard_count: int
    ) -> int:
        return ordinal % shard_count


@register_partitioner("range")
class RangePartitioner(Partitioner):
    """Partition by position of the value in the codepoint-ordered key space.

    The first eight *codepoints* of the value are read as big-endian
    digits in base ``0x110000`` (the Unicode codepoint space), giving a
    fraction of the full key space that is scaled by the shard count, so
    lexicographically close values co-locate (range locality for
    range-ish workloads) and both sides co-partition on equal values.
    Working on codepoints rather than raw UTF-8 bytes keeps the ordering
    faithful for non-ASCII keys: a byte-level prefix slices multi-byte
    codepoints in half and bunches every high-codepoint prefix into the
    top shards (all multi-byte UTF-8 lead bytes sit in ``0xC2–0xF4``).
    Skewed key distributions still produce skewed shards — this
    partitioner trades balance for order, the opposite of ``hash`` — so
    real deployments should feed it keys spread over their alphabet.
    """

    _WIDTH = 8
    #: One more than the largest Unicode codepoint — the digit base.
    _BASE = 0x110000
    #: Size of the full key space (hoisted: one big-int, not one per record).
    _SPACE = _BASE**_WIDTH
    #: ``_BASE**k`` for the trailing zero-digit padding of short values
    #: (base spelled literally: a comprehension body cannot see class
    #: attributes).
    _PAD = tuple(0x110000**k for k in range(_WIDTH + 1))

    def assign(
        self, side: JoinSide, ordinal: int, value: str, shard_count: int
    ) -> int:
        prefix = value[: self._WIDTH]
        key = 0
        for char in prefix:
            key = key * self._BASE + ord(char)
        key *= self._PAD[self._WIDTH - len(prefix)]
        return min(shard_count - 1, key * shard_count // self._SPACE)


@register_partitioner("gram")
class GramPartitioner(Partitioner):
    """Replicate each record into every shard owning one of its q-grams.

    The correctness-at-scale partitioner for *approximate* recall: a
    record is tokenised into its distinct q-grams (via the fast-path
    :class:`~repro.joins.fastpath.GramInterner`, so repeated values are a
    cache hit) and routed to the shard of every gram bucket, where a
    gram's owning shard is its stable CRC-32 modulo the shard count.  Any
    pair the approximate operator can match shares at least one gram
    (the counter test needs ``shared ≥ ⌈θ·g⌉ ≥ 1``), and the shard owning
    a shared gram holds both records *in full* — the in-shard probe sees
    the complete gram sets, so every matchable pair becomes a co-located
    candidate somewhere.  With a symmetric match predicate
    (``verify_jaccard=True``) that makes the sharded match set exactly
    the unsharded one; under the default probe-directional counter test
    the guarantee is the candidate co-location itself (see the module
    docstring's correctness model for the borderline-pair caveat, which
    applies to every partitioner).  Values that produce no grams at all
    (and therefore can only equi-match) fall back to the ``hash``
    assignment so equal gram-free values still co-partition.

    ``q`` and ``padded`` must mirror the engine's approximate operator
    for the recall guarantee to hold; :meth:`from_config` reads them from
    the run configuration, which is how the ``run_sharded`` /
    ``link_tables`` / CLI entry points construct this partitioner.

    The price of full recall is replication: each record is indexed and
    probed once per owning shard (factor ≤ min(shard count, distinct
    grams)), and a pair sharing grams owned by different shards is
    discovered more than once — :class:`ShardedJoinResult` dedupes those
    at merge time and reports both raw and deduplicated totals.
    """

    replicates = True

    def __init__(self, q: int = 3, padded: bool = True) -> None:
        if q <= 0:
            raise ValueError(f"q must be positive, got {q}")
        self.q = q
        self.padded = padded
        self._interner = GramInterner(q=q, padded=padded)
        # Gram id → CRC-32 of the gram string.  Shard-count-free, so one
        # partitioner instance can serve plans of different widths.
        self._gram_crc: Dict[int, int] = {}

    @classmethod
    def from_config(cls, config) -> "GramPartitioner":
        if config is None:
            return cls()
        return cls(q=config.thresholds.q, padded=config.padded_qgrams)

    def check_config(self, config) -> None:
        if config is None:
            return
        expected = (config.thresholds.q, config.padded_qgrams)
        if (self.q, self.padded) != expected:
            raise ValueError(
                f"gram partitioner tokenises with (q={self.q}, "
                f"padded={self.padded}) but the run configuration uses "
                f"(q={expected[0]}, padded={expected[1]}): a mismatch "
                f"silently breaks the full-recall guarantee — build the "
                f"partitioner with GramPartitioner.from_config(config) or "
                f"pass it by name"
            )

    def assign(
        self, side: JoinSide, ordinal: int, value: str, shard_count: int
    ) -> int:
        """The first (lowest-numbered) owning shard of the record."""
        return self.assign_many(side, ordinal, value, shard_count)[0]

    def assign_many(
        self, side: JoinSide, ordinal: int, value: str, shard_count: int
    ) -> Tuple[int, ...]:
        gram_ids = self._interner.intern_value(value)
        if not gram_ids:
            # Gram-free values can only equi-match: hash co-partitioning
            # is exactly sufficient (and avoids pointless replication).
            return (stable_value_shard(value, shard_count),)
        return self._owning_shards(gram_ids, shard_count)

    def _owning_shards(
        self, gram_ids: Sequence[int], shard_count: int
    ) -> Tuple[int, ...]:
        """The sorted distinct shards owning the given gram buckets."""
        gram = self._interner.gram
        gram_crc = self._gram_crc
        owners = set()
        for gram_id in gram_ids:
            crc = gram_crc.get(gram_id)
            if crc is None:
                crc = zlib.crc32(gram(gram_id).encode("utf-8"))
                gram_crc[gram_id] = crc
            owners.add(crc % shard_count)
        return tuple(sorted(owners))


@register_partitioner("gram-prefix")
class PrefixGramPartitioner(GramPartitioner):
    """Gram replication restricted to each record's *prefix* grams.

    The frequency-aware refinement of :class:`GramPartitioner`: instead of
    replicating a record to the shard of **every** distinct gram (factor ≈
    min(shard count, gram count)), it replicates only on the record's
    ``p = g − ⌈θ·g⌉ + 1`` grams that come *first* in a global
    rarest-first order — the classic prefix-filter signature (Chaudhuri et
    al.'s SSJoin framing, the same signature scheme distributed similarity
    joins ship records by).

    Why recall is preserved: order all grams by corpus frequency
    (ascending, ties broken by gram string — any fixed total order works).
    A pair the approximate operator can match has gram overlap
    ``o ≥ ⌈θ·g⌉`` for *both* records' gram counts ``g``.  If two sets
    with ``|X| = g_x, |Y| = g_y`` share ``o ≥ max(req_x, req_y)``
    elements, their prefixes of lengths ``g_x − req_x + 1`` and
    ``g_y − req_y + 1`` must intersect: drop the prefix of X and you drop
    at most ``g_x − (g_x − req_x + 1) = req_x − 1 < o`` shared elements,
    so a shared gram survives into X's prefix; symmetrically for Y; and
    the *smallest* shared gram under the global order sits in both
    prefixes.  That shared prefix gram's owning shard holds both records
    in full — the same co-location guarantee as full gram replication,
    at a replication factor bounded by the prefix length (≈ ``0.15·g + 1``
    at θ = 0.85) instead of the gram count.

    The threshold ``θ`` must mirror the run's similarity threshold — a
    larger θ than the engine's would shorten prefixes below what the
    overlap bound licenses.  :meth:`from_config` reads it (with ``q`` /
    padding) from the run configuration; :meth:`check_config` rejects
    mismatched hand-built instances.  The prefix computation rounds the
    required overlap *down* through a small epsilon before ``ceil`` so a
    floating-point wobble in ``θ·g`` can only lengthen a prefix, never
    shorten it.

    Corpus frequencies come from :meth:`prepare`, which
    :meth:`ShardPlan.build` feeds with both sides' key corpus before
    routing.  Outside a plan build (no :meth:`prepare` call) the
    partitioner behaves exactly like ``gram`` — full replication is
    always a safe over-approximation of the prefix.

    Like ``gram``, the in-shard probe sees complete records (prefixes
    restrict *routing*, never the gram sets the operator compares), the
    exactness guarantee is the symmetric predicate's
    (``verify_jaccard=True``), and gram-free values fall back to hash
    co-partitioning.
    """

    def __init__(self, q: int = 3, padded: bool = True, theta: float = 0.85) -> None:
        super().__init__(q=q, padded=padded)
        if not 0.0 < theta <= 1.0:
            raise ValueError(f"theta must be in (0, 1], got {theta}")
        self.theta = theta
        #: Gram id → dense rank in the corpus rarest-first order; filled
        #: by :meth:`prepare` (per plan).
        self._rank: Dict[int, int] = {}
        self._prepared = False

    @classmethod
    def from_config(cls, config) -> "PrefixGramPartitioner":
        if config is None:
            return cls()
        return cls(
            q=config.thresholds.q,
            padded=config.padded_qgrams,
            theta=config.thresholds.theta_sim,
        )

    def check_config(self, config) -> None:
        super().check_config(config)
        if config is None:
            return
        if self.theta != config.thresholds.theta_sim:
            raise ValueError(
                f"gram-prefix partitioner assumes theta={self.theta} but the "
                f"run configuration uses theta_sim="
                f"{config.thresholds.theta_sim}: a larger partitioner theta "
                f"shortens prefixes below the overlap bound and silently "
                f"breaks the recall guarantee — build the partitioner with "
                f"PrefixGramPartitioner.from_config(config) or pass it by "
                f"name"
            )

    def prepare(
        self,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        shard_count: int,
    ) -> None:
        """Rank every corpus gram rarest-first (ties by gram string)."""
        frequency: Dict[int, int] = {}
        intern_value = self._interner.intern_value
        for keys in (left_keys, right_keys):
            for key in keys:
                for gram_id in intern_value(key):
                    frequency[gram_id] = frequency.get(gram_id, 0) + 1
        gram = self._interner.gram
        ordered = sorted(
            frequency, key=lambda gram_id: (frequency[gram_id], gram(gram_id))
        )
        self._rank = {gram_id: rank for rank, gram_id in enumerate(ordered)}
        self._prepared = True

    def prefix_length(self, gram_count: int) -> int:
        """The signature length for a record with ``gram_count`` grams."""
        required = min(
            gram_count, max(1, math.ceil(self.theta * gram_count - 1e-12))
        )
        return gram_count - required + 1

    def assign_many(
        self, side: JoinSide, ordinal: int, value: str, shard_count: int
    ) -> Tuple[int, ...]:
        gram_ids = self._interner.intern_value(value)
        if not gram_ids:
            return (stable_value_shard(value, shard_count),)
        if self._prepared:
            prefix = self.prefix_length(len(gram_ids))
            if prefix < len(gram_ids):
                rank = self._rank
                # Grams outside the prepared corpus cannot occur during a
                # plan build; rank them last (stably) for direct callers.
                unseen = len(rank)
                gram_ids = sorted(
                    gram_ids, key=lambda gram_id: rank.get(gram_id, unseen)
                )[:prefix]
        return self._owning_shards(gram_ids, shard_count)


# -- shard plans ------------------------------------------------------------------------


class ShardInput:
    """One shard's slice of one side: row identities plus their storage.

    Two storage modes, one interface:

    *Record-backed* (the classic pickle handoff): ``records`` holds the
    shard's materialised record list, one entry per origin (replication
    copies references).
    *Block-backed* (the zero-copy handoff): the shard holds only its
    ``origins`` row-index array over the side's shared
    :class:`~repro.runtime.handoff.SideBlock` — replication is repeated
    indices, and :attr:`records` is decoded lazily (then cached) for the
    few consumers that genuinely need record objects (e.g. the pickle
    fallback when shared memory cannot be published).

    In both modes ``origins[i]`` is the position of the shard's ``i``-th
    record in the original input's arrival order — the global ordinal
    merged results report.  Block-backed shards exploit that the block's
    row order *is* the arrival order, so the origin array doubles as the
    row-index array.
    """

    __slots__ = ("schema", "origins", "name", "block", "_records")

    def __init__(
        self,
        schema: Schema,
        records: Optional[List[Record]] = None,
        origins: Optional[List[int]] = None,
        name: str = "",
        block: Optional[SideBlock] = None,
    ) -> None:
        self.schema = schema
        self.origins = origins if origins is not None else []
        self.name = name
        self.block = block
        if records is None and block is None:
            records = []
        self._records = records

    @property
    def records(self) -> List[Record]:
        """The shard's records (decoded from the block on first access)."""
        if self._records is None:
            self._records = self.block.records(self.origins)
        return self._records

    def stream(self) -> RecordStream:
        """A fresh stream over this shard input (streams are single-use).

        May be called any number of times: the backing store (record list
        or columnar block) is immutable, so every call replays the
        identical sequence.  This replayability is a *contract* — shard
        retry (:mod:`repro.runtime.failures`) and job resume re-run
        shards through it and rely on the re-run being bit-identical.
        """
        if self.block is not None:
            return RowSliceStream(self.block, self.origins, name=self.name)
        return ListStream(self.schema, self._records, name=self.name)

    def __len__(self) -> int:
        if self.origins:
            return len(self.origins)
        # Hand-built record-backed inputs may omit the origin map.
        return len(self._records) if self._records is not None else 0


class ShardPlan:
    """The partition step: N per-shard (left, right) input pairs.

    Build one with :meth:`build`; hand it to
    :class:`~repro.runtime.parallel.ParallelExecutor`.  The plan owns the
    materialised shard records (not live streams), so one plan can be
    executed any number of times and shipped to worker processes —
    :meth:`shard_streams` replays a shard's inputs identically on every
    call, the contract shard retry and :meth:`JobHandle.resume`-style
    partial re-execution are built on (see :meth:`ShardInput.stream`).

    Splitting honours the stream contract: inputs advertising
    ``supports_bulk_pull`` (tables, in-memory streams) are split through
    chunked bulk pulls; lazy sources (``IteratorStream``,
    ``GeneratorStream``, operators) are fanned out in a single pass of
    ``next_record`` — each record is pulled exactly once and never ahead
    of need, so a partially consumed or expensive producer is drained
    without over-pull.

    Under a replicating partitioner (``gram``) one record may appear in
    several shard inputs; each copy records the same global origin, so
    merged results still report one identity per input record.  The
    stream is still read exactly once — replication copies references,
    it never re-pulls.  :meth:`replication_factors` quantifies the extra
    volume.
    """

    def __init__(
        self,
        attribute: JoinAttribute,
        partitioner: Partitioner,
        left_shards: List[ShardInput],
        right_shards: List[ShardInput],
        left_input_size: Optional[int] = None,
        right_input_size: Optional[int] = None,
        handoff: str = "pickle",
        left_block: Optional[SideBlock] = None,
        right_block: Optional[SideBlock] = None,
    ) -> None:
        if len(left_shards) != len(right_shards):
            raise ValueError(
                f"left/right shard lists disagree: {len(left_shards)} vs "
                f"{len(right_shards)}"
            )
        self.attribute = attribute
        self.partitioner = partitioner
        self.left_shards = left_shards
        self.right_shards = right_shards
        #: The *resolved* handoff representation: ``"shared-memory"``
        #: exactly when the plan carries columnar side blocks, else
        #: ``"pickle"`` (``"auto"`` never survives :meth:`build`).
        self.handoff = handoff
        #: The per-side columnar encodings (``None`` under pickle
        #: handoff).  Plain process memory owned by the plan — shared
        #: memory segments are published per process-backend run, see
        #: :meth:`publish_blocks`.
        self.left_block = left_block
        self.right_block = right_block
        #: Records the original inputs produced (before any replication);
        #: inferred from the origin maps when not given explicitly.
        self.left_input_size = (
            left_input_size
            if left_input_size is not None
            else _distinct_origin_count(left_shards)
        )
        self.right_input_size = (
            right_input_size
            if right_input_size is not None
            else _distinct_origin_count(right_shards)
        )

    @classmethod
    def build(
        cls,
        left: InputLike,
        right: InputLike,
        attribute: Union[str, JoinAttribute],
        shard_count: int,
        partitioner: Union[str, Partitioner] = "hash",
        config=None,
        handoff: str = "auto",
    ) -> "ShardPlan":
        """Partition both inputs into ``shard_count`` co-numbered shards.

        Pass the run's :class:`~repro.runtime.config.RunConfig` as
        ``config`` whenever the plan will execute under one: a
        partitioner named by string is then built via
        :meth:`Partitioner.from_config`, keeping config-sensitive
        partitioners (``gram`` mirrors the engine's ``q`` / gram
        padding) in lock-step with the engine — the recall guarantee
        depends on it.  ``run_sharded`` does this automatically.

        ``handoff`` selects the shard-input representation (see
        :mod:`repro.runtime.handoff`): ``"pickle"`` materialises per-shard
        record lists (the classic path); ``"auto"`` and
        ``"shared-memory"`` encode each side **once** into a columnar
        :class:`~repro.runtime.handoff.SideBlock` and give every shard
        only a row-index array over it — replication becomes repeated
        indices.  Both block modes fall back to ``"pickle"`` when a side
        holds values outside the encodable set or the platform lacks
        ``multiprocessing.shared_memory``; the plan's :attr:`handoff`
        records what was actually resolved, so callers that *require*
        zero-copy can check it.  The representation never changes
        results: all four backends produce bit-identical matches,
        emission order and counters under either handoff.
        """
        if shard_count < 1:
            raise ValueError(f"shard_count must be at least 1, got {shard_count}")
        if handoff not in HANDOFF_MODES:
            raise ValueError(
                f"unknown handoff mode {handoff!r}; expected one of "
                f"{HANDOFF_MODES}"
            )
        if isinstance(attribute, str):
            attribute = JoinAttribute(attribute, attribute)
        if isinstance(partitioner, str):
            partitioner = create_partitioner(partitioner, config=config)
        else:
            # A hand-built instance must agree with the run parameters
            # (the gram partitioner's recall guarantee depends on it).
            partitioner.check_config(config)
        left_stream = as_stream(left)
        right_stream = as_stream(right)
        # Resolve both join-attribute positions before consuming either
        # stream: an unknown attribute must fail without a partial drain.
        left_position = left_stream.schema.position(attribute.left)
        right_position = right_stream.schema.position(attribute.right)
        # Collect-then-route (left fully, then right, preserving the
        # arrival order and the exactly-once pull contract) so that (a)
        # corpus-statistics partitioners can observe both sides before
        # the first routing decision and (b) each side can be encoded
        # once into a columnar block.
        left_records = _collect_records(left_stream)
        right_records = _collect_records(right_stream)
        left_keys = [
            _join_key(record.value_at(left_position)) for record in left_records
        ]
        right_keys = [
            _join_key(record.value_at(right_position)) for record in right_records
        ]
        partitioner.prepare(left_keys, right_keys, shard_count)
        left_rows = _route_side(
            JoinSide.LEFT, left_keys, shard_count, partitioner
        )
        right_rows = _route_side(
            JoinSide.RIGHT, right_keys, shard_count, partitioner
        )
        left_block = right_block = None
        if handoff != "pickle" and shared_memory_available():
            left_block = SideBlock.encode(
                left_stream.schema, left_records, stream_name=left_stream.name
            )
            if left_block is not None:
                right_block = SideBlock.encode(
                    right_stream.schema,
                    right_records,
                    stream_name=right_stream.name,
                )
            if right_block is None:
                left_block = None
        resolved = "shared-memory" if left_block is not None else "pickle"
        left_shards = _shard_inputs(
            left_stream, left_records, left_rows, left_block, shard_count
        )
        right_shards = _shard_inputs(
            right_stream, right_records, right_rows, right_block, shard_count
        )
        return cls(
            attribute,
            partitioner,
            left_shards,
            right_shards,
            left_input_size=len(left_records),
            right_input_size=len(right_records),
            handoff=resolved,
            left_block=left_block,
            right_block=right_block,
        )

    @property
    def shard_count(self) -> int:
        """Number of shards in the plan."""
        return len(self.left_shards)

    def shard_sizes(self) -> List[Tuple[int, int]]:
        """Per-shard ``(left records, right records)`` sizes."""
        return [
            (len(left), len(right))
            for left, right in zip(self.left_shards, self.right_shards)
        ]

    def replication_factors(self) -> Tuple[float, float]:
        """Per-side ``shard records / input records`` ratios.

        Exactly ``(1.0, 1.0)`` for disjoint partitioners; the ``gram``
        partitioner's extra work grows with these factors (empty inputs
        report ``1.0`` — nothing was replicated).
        """
        left_total = sum(len(shard) for shard in self.left_shards)
        right_total = sum(len(shard) for shard in self.right_shards)
        return (
            left_total / self.left_input_size if self.left_input_size else 1.0,
            right_total / self.right_input_size if self.right_input_size else 1.0,
        )

    def shard_streams(self, shard_id: int) -> Tuple[RecordStream, RecordStream]:
        """Fresh (left, right) streams for one shard (replayable at will).

        Record-backed shards replay a :class:`ListStream`; block-backed
        shards replay a :class:`~repro.engine.streams.RowSliceStream`
        over the plan's side blocks — this is how the serial, thread and
        async backends (and the coordinator-side inline paths) read the
        zero-copy representation without any shipping at all.
        """
        return (
            self.left_shards[shard_id].stream(),
            self.right_shards[shard_id].stream(),
        )

    def publish_blocks(self) -> Optional["PublishedPlanBlocks"]:
        """Copy the side blocks into fresh shared-memory segments.

        Returns ``None`` for pickle-handoff plans.  The caller (the
        process backend) owns the returned pair and **must** call
        :meth:`PublishedPlanBlocks.release` in a ``finally`` — segments
        live exactly one run; resume and re-execution publish fresh ones
        from the plan's retained blocks.  Raises ``OSError`` when the
        platform refuses the allocation (callers fall back to pickle
        shipping).
        """
        if self.left_block is None or self.right_block is None:
            return None
        left = publish_block(
            self.left_block, [shard.origins for shard in self.left_shards]
        )
        try:
            right = publish_block(
                self.right_block, [shard.origins for shard in self.right_shards]
            )
        except BaseException:
            left.release()
            raise
        return PublishedPlanBlocks(left, right)

    def block_descriptors(
        self,
    ) -> Optional[Tuple[BlockDescriptor, BlockDescriptor]]:
        """The (left, right) descriptors a publish *would* ship, without
        allocating shared memory — the wire-payload measurement hook used
        by :func:`repro.runtime.parallel.estimate_shard_payload_bytes`.
        ``None`` for pickle-handoff plans."""
        if self.left_block is None or self.right_block is None:
            return None
        return (
            build_descriptor(
                self.left_block, [shard.origins for shard in self.left_shards]
            ),
            build_descriptor(
                self.right_block, [shard.origins for shard in self.right_shards]
            ),
        )

    def subset(self, shard_ids: Sequence[int]) -> "ShardPlan":
        """A plan containing only the given shards, renumbered ``0..m-1``.

        The partial-re-execution primitive behind ``JobHandle.resume()``:
        re-run just the failed/cancelled/unstarted shards of an earlier
        run, then map the sub-plan's shard ids back to the originals
        (position ``i`` of ``shard_ids`` ↔ sub-plan shard ``i``) before
        merging with the shards that already completed.  Shard inputs are
        shared by reference (materialised buffers, never copied) and so
        are the columnar side blocks — a resumed zero-copy run re-encodes
        nothing, it only re-publishes the retained blocks — and the
        original input sizes are carried over so replication factors and
        recall accounting stay relative to the *full* inputs.
        """
        ids = list(shard_ids)
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids in subset: {ids}")
        for shard_id in ids:
            if not 0 <= shard_id < self.shard_count:
                raise ValueError(
                    f"shard id {shard_id} out of range for a "
                    f"{self.shard_count}-shard plan"
                )
        return ShardPlan(
            self.attribute,
            self.partitioner,
            [self.left_shards[shard_id] for shard_id in ids],
            [self.right_shards[shard_id] for shard_id in ids],
            left_input_size=self.left_input_size,
            right_input_size=self.right_input_size,
            handoff=self.handoff,
            left_block=self.left_block,
            right_block=self.right_block,
        )

    def __repr__(self) -> str:
        return (
            f"<ShardPlan {self.partitioner.name or type(self.partitioner).__name__} "
            f"shards={self.shard_count} handoff={self.handoff} "
            f"sizes={self.shard_sizes()}>"
        )


class PublishedPlanBlocks:
    """Both sides' shared-memory segments for one process-backend run."""

    def __init__(self, left: PublishedBlock, right: PublishedBlock) -> None:
        self.left = left
        self.right = right

    @property
    def descriptors(self) -> Tuple[BlockDescriptor, BlockDescriptor]:
        return (self.left.descriptor, self.right.descriptor)

    def release(self) -> None:
        """Close and unlink both segments (idempotent)."""
        self.left.release()
        self.right.release()


def _distinct_origin_count(shards: Sequence[ShardInput]) -> int:
    """Number of distinct input records behind a (possibly replicated) split."""
    return len({origin for shard in shards for origin in shard.origins})


def _join_key(value) -> str:
    """Same normalisation the join's tuple store applies (None → "")."""
    return "" if value is None else str(value)


def _collect_records(stream: RecordStream) -> List[Record]:
    """Drain a stream into a list, honouring the pull contract.

    Bulk-capable streams are drained through chunked bulk pulls; lazy or
    live sources are pulled one record at a time — each record is pulled
    exactly once and never ahead of need.
    """
    records: List[Record] = []
    if stream.supports_bulk_pull:
        while True:
            batch = stream.next_records(_BULK_SPLIT_BATCH)
            if not batch:
                break
            records.extend(batch)
    else:
        while True:
            record = stream.next_record()
            if record is None:
                break
            records.append(record)
    return records


def _route_side(
    side: JoinSide,
    keys: Sequence[str],
    shard_count: int,
    partitioner: Partitioner,
) -> List[List[int]]:
    """Route one side's records (by join key) to per-shard row lists.

    Returns, per shard, the arrival-order row indices assigned to it.  A
    record's index is appended to every shard its partitioner names
    (:meth:`Partitioner.assign_many`) — replication repeats the index,
    never the record.
    """
    rows: List[List[int]] = [[] for _ in range(shard_count)]
    assign_many = partitioner.assign_many
    for ordinal, key in enumerate(keys):
        targets = assign_many(side, ordinal, key, shard_count)
        if not targets:
            raise ValueError(
                f"partitioner {partitioner.name or type(partitioner).__name__!r} "
                f"assigned no shard to {side.value} record {ordinal}"
            )
        if len(targets) > 1 and len(set(targets)) != len(targets):
            # The one contract violation that would fail *silently*: a
            # duplicated target stores the record twice in one shard and
            # double-counts its pairs straight through the dedup.
            raise ValueError(
                f"partitioner {partitioner.name or type(partitioner).__name__!r} "
                f"assigned {side.value} record {ordinal} to duplicate shards "
                f"{tuple(targets)}"
            )
        for shard_index in targets:
            if not 0 <= shard_index < shard_count:
                raise ValueError(
                    f"partitioner "
                    f"{partitioner.name or type(partitioner).__name__!r} "
                    f"assigned {side.value} record {ordinal} to shard "
                    f"{shard_index}, outside [0, {shard_count})"
                )
            rows[shard_index].append(ordinal)
    return rows


def _shard_inputs(
    stream: RecordStream,
    records: List[Record],
    rows: List[List[int]],
    block: Optional[SideBlock],
    shard_count: int,
) -> List[ShardInput]:
    """Materialise one side's :class:`ShardInput` list from its routing.

    With a block, every shard holds only its row-index array (the
    zero-copy representation); without one, per-shard record lists are
    materialised exactly as the classic pickle path always did.
    """
    return [
        ShardInput(
            schema=stream.schema,
            records=(
                None if block is not None else [records[row] for row in shard_rows]
            ),
            origins=shard_rows,
            name=f"{stream.name}[shard {shard_id}/{shard_count}]",
            block=block,
        )
        for shard_id, shard_rows in enumerate(rows)
    ]


# -- mergeable results ------------------------------------------------------------------


def merge_counters(counters: Sequence[OperationCounters]) -> OperationCounters:
    """Sum a sequence of counter objects (empty sequence → zero counters)."""
    merged = OperationCounters()
    for item in counters:
        merged = merged.merge(item)
    return merged


class FirstShardWins:
    """The one definition of the cross-shard dedup rule.

    The first (lowest-id in merge order, first-to-discover in streaming
    order) shard to produce a global pair *owns* it and contributes all
    its events for that pair; later shards' rediscoveries are dropped.
    Shared by :attr:`ShardedJoinResult._deduped` (merge time) and the
    jobs layer's incremental sharded streaming — one rule, no drift.
    """

    __slots__ = ("_owner",)

    def __init__(self) -> None:
        self._owner: Dict[Tuple[int, int], int] = {}

    def owns(self, pair: Tuple[int, int], shard_id: int) -> bool:
        """Whether ``shard_id`` owns ``pair`` (claiming it if unclaimed)."""
        return self._owner.setdefault(pair, shard_id) == shard_id


@dataclass
class ShardOutcome:
    """One shard's complete result, with the origin maps to globalise it."""

    shard_id: int
    result: AdaptiveJoinResult
    #: Shard-local ordinal → original input index, per side.
    left_origins: List[int]
    right_origins: List[int]
    #: Wall-clock seconds the shard session took (as measured by its
    #: backend worker; includes session construction).
    wall_seconds: float = 0.0

    def matched_pairs(self) -> List[Tuple[int, int]]:
        """Global ``(left index, right index)`` pairs of this shard.

        :class:`~repro.joins.base.MatchEvent` ordinals are shard-local
        arrival positions; the origin maps recorded by the
        :class:`ShardPlan` translate them back to positions in the
        original inputs, so pairs are comparable with an unsharded run.
        """
        left_origins = self.left_origins
        right_origins = self.right_origins
        return [
            (left_origins[event.left.ordinal], right_origins[event.right.ordinal])
            for event in self.result.matches
        ]


@dataclass
class ShardedJoinResult:
    """Everything produced by one sharded join run.

    Mirrors the :class:`~repro.runtime.session.AdaptiveJoinResult` surface
    (matches / counters / trace / result size / weighted cost) so callers
    can consume either interchangeably, while keeping the per-shard
    results around (``shards``) for debugging and skew analysis.  All
    merged views are deterministic: shards are always combined in shard-id
    order, regardless of the order the backend finished them in.  The
    merges are computed once and cached — the result is immutable.

    Replicating partitioners (``gram``) can discover the same global pair
    in several shards.  The merged match views (:attr:`matches`,
    :meth:`matched_pairs`, :attr:`result_size`, :meth:`output_records`)
    are therefore *deduplicated*: for each global pair only the events of
    the first (lowest-id) shard that found it are kept — a stable rule,
    so the serial backend stays bit-deterministic — while
    :attr:`raw_result_size` / :attr:`duplicate_match_count` keep the
    replication overhead visible.  Under disjoint partitioners the dedup
    is a no-op and every view equals its pre-dedup reading.
    """

    shards: Tuple[ShardOutcome, ...]
    backend: str
    partitioner: str
    #: Original input record counts (before replication), carried over
    #: from the plan by :class:`~repro.runtime.parallel.ParallelExecutor`;
    #: ``None`` (hand-built results) falls back to deriving them from the
    #: origin maps.
    left_input_size: Optional[int] = None
    right_input_size: Optional[int] = None
    #: Whether a cancel token stopped the run before every shard
    #: completed: ``shards`` then holds only the shards that ran (the
    #: last of which may itself carry a partial, ``cancelled`` result).
    cancelled: bool = False
    #: Shards dropped by a ``degrade`` failure policy, one
    #: :class:`~repro.runtime.failures.ShardFailure` record each (shard
    #: id, attempts, error, input records lost) — the merged views below
    #: exclude their contributions, and :meth:`estimated_recall` /
    #: :meth:`coverage` quantify what was lost.  Empty on any
    #: non-degraded run.
    failed_shards: Tuple[ShardFailure, ...] = ()
    #: The resolved shard-handoff representation the plan executed under
    #: (``"pickle"`` or ``"shared-memory"``, see
    #: :mod:`repro.runtime.handoff`) — reporting only, the results are
    #: bit-identical either way.
    handoff: str = "pickle"

    def __post_init__(self) -> None:
        self.shards = tuple(
            sorted(self.shards, key=lambda outcome: outcome.shard_id)
        )
        self.failed_shards = tuple(
            sorted(self.failed_shards, key=lambda failure: failure.shard_id)
        )

    # -- merged views ----------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        """Number of shards that executed."""
        return len(self.shards)

    @cached_property
    def _deduped(self) -> Tuple[Tuple[MatchEvent, ...], Tuple[Tuple[int, int], ...]]:
        """(events, global pairs) with cross-shard duplicates removed.

        One pass in shard-id order: the first shard to discover a global
        pair owns it (:class:`FirstShardWins`) and contributes *all* its
        events for that pair (so a session configured with
        ``deduplicate=False`` keeps its intra-shard repeats); later
        shards' rediscoveries are dropped.
        """
        owner = FirstShardWins()
        events: List[MatchEvent] = []
        pairs: List[Tuple[int, int]] = []
        for outcome in self.shards:
            shard_id = outcome.shard_id
            for event, pair in zip(outcome.result.matches, outcome.matched_pairs()):
                if owner.owns(pair, shard_id):
                    events.append(event)
                    pairs.append(pair)
        return tuple(events), tuple(pairs)

    @property
    def matches(self) -> Tuple[MatchEvent, ...]:
        """Deduplicated matched pairs: shard-id order, emission order within.

        Events carry *shard-local* tuple ordinals; use
        :meth:`matched_pairs` for globally comparable pair identities.
        """
        return self._deduped[0]

    @property
    def result_size(self) -> int:
        """Number of matched pairs after cross-shard dedup (``r_abs``)."""
        return len(self._deduped[0])

    @property
    def raw_result_size(self) -> int:
        """Matched pairs summed over shards, duplicates included.

        Equal to :attr:`result_size` under disjoint partitioners; the gap
        is the replication overhead of the ``gram`` partitioner.
        """
        return sum(outcome.result.result_size for outcome in self.shards)

    @property
    def duplicate_match_count(self) -> int:
        """Match events dropped by the cross-shard dedup."""
        return self.raw_result_size - self.result_size

    @cached_property
    def counters(self) -> OperationCounters:
        """Merged elementary-operation counters (plain sums over shards).

        These count the work *actually performed*: under a replicating
        partitioner every replica's grams, probes and emissions are
        included (``matches_emitted`` counts raw emissions, duplicates
        and all).  Use :attr:`deduped_counters` for totals whose match
        emissions are collapsed to unique global pairs.
        """
        return merge_counters(
            [outcome.result.counters for outcome in self.shards]
        )

    @cached_property
    def deduped_counters(self) -> OperationCounters:
        """:attr:`counters` with ``matches_emitted`` collapsed to unique pairs.

        All other fields are left at their raw sums — the scans, probes
        and verifications genuinely happened once per replica; only the
        emission count has a meaningful deduplicated reading.
        """
        merged = self.counters.merge(OperationCounters())
        merged.matches_emitted = self.result_size
        return merged

    @cached_property
    def trace(self) -> ExecutionTrace:
        """Shard-tagged, step-offset-aware merged trace (see :func:`merge_traces`)."""
        return merge_traces(
            [outcome.result.trace for outcome in self.shards],
            shard_ids=[outcome.shard_id for outcome in self.shards],
        )

    @property
    def output_schema(self) -> Schema:
        """Schema of the joined output records (identical in every shard)."""
        if not self.shards:
            raise ValueError(
                "no shard completed (the run was cancelled before any shard "
                "ran), so there is no output schema to report"
            )
        return self.shards[0].result.output_schema

    @property
    def final_states(self) -> Dict[int, JoinState]:
        """Final processor state per shard (shards adapt independently)."""
        return {
            outcome.shard_id: outcome.result.final_state
            for outcome in self.shards
        }

    def matched_pairs(self) -> List[Tuple[int, int]]:
        """Global (left index, right index) pairs, comparable with unsharded runs.

        Deduplicated (first-shard-wins) like every merged match view.
        """
        return list(self._deduped[1])

    def raw_matched_pairs(self) -> List[Tuple[int, int]]:
        """Global pairs *before* dedup — one entry per shard discovery."""
        pairs: List[Tuple[int, int]] = []
        for outcome in self.shards:
            pairs.extend(outcome.matched_pairs())
        return pairs

    def pair_set(self) -> frozenset:
        """The merged match *set* (global pair identities, order-free)."""
        return frozenset(self._deduped[1])

    @cached_property
    def _replication_factors(self) -> Tuple[float, float]:
        left_total = sum(len(outcome.left_origins) for outcome in self.shards)
        right_total = sum(len(outcome.right_origins) for outcome in self.shards)
        left_inputs = self.left_input_size
        if left_inputs is None:
            left_inputs = len(
                {origin for outcome in self.shards for origin in outcome.left_origins}
            )
        right_inputs = self.right_input_size
        if right_inputs is None:
            right_inputs = len(
                {origin for outcome in self.shards for origin in outcome.right_origins}
            )
        return (
            left_total / left_inputs if left_inputs else 1.0,
            right_total / right_inputs if right_inputs else 1.0,
        )

    def replication_factors(self) -> Tuple[float, float]:
        """Per-side ``shard records / input records`` (1.0 when disjoint)."""
        return self._replication_factors

    def output_records(self) -> List[Record]:
        """Materialise the joined output records, in deduplicated match order."""
        if not self.matches:
            return []
        schema = self.output_schema
        return [event.output_record(schema) for event in self.matches]

    def weighted_cost(self, cost_model: Optional[CostModel] = None) -> float:
        """``c_abs`` summed over shards (weights apply per-state, so sums are exact)."""
        model = cost_model or CostModel()
        return sum(
            model.absolute_cost(outcome.result.trace) for outcome in self.shards
        )

    def per_shard_summary(self) -> List[Dict[str, object]]:
        """One flat row per shard for reports: sizes, matches, state, timing."""
        return [
            {
                "shard": outcome.shard_id,
                "left_records": len(outcome.left_origins),
                "right_records": len(outcome.right_origins),
                "matches": outcome.result.result_size,
                "final_state": outcome.result.final_state.label,
                "total_steps": outcome.result.trace.total_steps,
                "wall_seconds": round(outcome.wall_seconds, 4),
            }
            for outcome in self.shards
        ]

    def describe_json(self, policy: Optional[str] = None) -> Dict[str, object]:
        """The result's statistics as one stable JSON-ready mapping.

        The single wire format every consumer shares: ``JobHandle``
        builds its ``LinkageResult.statistics`` from it, the CLI report
        prints it, and the HTTP server returns it verbatim — so the keys
        here are a compatibility surface, not an implementation detail.
        ``policy`` (the run's switch-policy name) is caller-supplied
        because the merged result does not record it.  Conditional keys
        appear only when meaningful: ``trace`` needs at least one shard,
        ``cancelled`` only on interrupted runs, and the degraded-run
        block (``degraded`` / ``failed_shards`` / ``estimated_recall`` /
        ``coverage``) only when a degrade policy dropped shards — absence
        is the happy-path signal.
        """
        statistics: Dict[str, object] = {
            "result_size": self.result_size,
            "raw_result_size": self.raw_result_size,
            "duplicate_matches": self.duplicate_match_count,
            "replication_factors": self.replication_factors(),
            "policy": policy,
            "shards": self.shard_count,
            "backend": self.backend,
            "partitioner": self.partitioner,
            "handoff": self.handoff,
            "final_states": {
                shard: state.label for shard, state in self.final_states.items()
            },
            "per_shard": self.per_shard_summary(),
        }
        if self.shards:
            statistics["trace"] = self.trace.summary()
        if self.cancelled:
            statistics["cancelled"] = True
        if self.degraded:
            # A degraded run must never look like a complete one: the
            # dropped shards, the recall estimate and the per-side
            # coverage ride the statistics every consumer reads.
            statistics["degraded"] = True
            statistics["failed_shards"] = self.failed_shard_summary()
            statistics["estimated_recall"] = self.estimated_recall()
            statistics["coverage"] = self.coverage()
        return statistics

    # -- degraded-run accounting -----------------------------------------------------

    @property
    def degraded(self) -> bool:
        """Whether a degrade policy dropped shards from this result.

        A degraded result is *honest but partial*: every merged view
        excludes the dropped shards' matches, and the loss is quantified
        by :attr:`failed_shards`, :meth:`coverage` and
        :meth:`estimated_recall`.
        """
        return bool(self.failed_shards)

    def coverage(self) -> Tuple[float, float]:
        """Per-side fraction of shard records that reached a completed shard.

        ``(1.0, 1.0)`` on non-degraded runs; computed over shard records
        (replicas included), so under a replicating partitioner it
        measures the fraction of *assigned work* that completed.
        """
        left_done = sum(len(outcome.left_origins) for outcome in self.shards)
        right_done = sum(len(outcome.right_origins) for outcome in self.shards)
        left_lost = sum(failure.left_records for failure in self.failed_shards)
        right_lost = sum(failure.right_records for failure in self.failed_shards)
        left_total = left_done + left_lost
        right_total = right_done + right_lost
        return (
            left_done / left_total if left_total else 1.0,
            right_done / right_total if right_total else 1.0,
        )

    def estimated_recall(self) -> float:
        """Estimated fraction of the full run's matches this result holds.

        Matches a shard can find scale with its candidate-pair volume
        ``l_k · r_k`` (each shard joins its left records against its
        right records), so the estimate is the completed shards' share of
        it::

            Σ_completed (l_k · r_k) / Σ_all (l_k · r_k)

        ``1.0`` on non-degraded runs.  An *estimate*: the true loss
        depends on where the matching pairs actually lived — the point
        is that a degraded result always discloses an expected loss
        rather than silently posing as complete.
        """
        done = sum(
            len(outcome.left_origins) * len(outcome.right_origins)
            for outcome in self.shards
        )
        lost = sum(
            failure.left_records * failure.right_records
            for failure in self.failed_shards
        )
        total = done + lost
        return done / total if total else 1.0

    def failed_shard_summary(self) -> List[Dict[str, object]]:
        """One flat row per dropped shard (the CLI / statistics feed)."""
        return [
            {
                "shard": failure.shard_id,
                "attempts": failure.attempts,
                "error_type": failure.error_type,
                "error": failure.message,
                "timed_out": failure.timed_out,
                "left_records": failure.left_records,
                "right_records": failure.right_records,
            }
            for failure in self.failed_shards
        ]
