"""Failure policies for sharded execution: fail-fast, retry, degrade.

The same registry pattern as switch policies, partitioners and backends
(``@register_failure_policy`` / ``create_failure_policy``): a
:class:`FailurePolicy` tells the shard runner in
:mod:`repro.runtime.parallel` what to do when a shard attempt raises —

========== ============================================================
``fail-fast`` (default) first failure cancels the run and re-raises as
           :class:`~repro.runtime.errors.ShardExecutionError`
           (deterministic lowest-shard-id-wins, as before this layer
           existed).
``retry``  re-run the failed shard up to ``max_attempts`` total
           attempts, sleeping an exponential backoff between attempts
           (``backoff_seconds * backoff_multiplier**(attempt-1)``,
           deterministic and driven through an injectable clock/sleep);
           exhausted retries escalate to fail-fast behaviour.
``degrade`` retry like above (``max_attempts`` defaults to 1 — drop on
           first failure), then *drop* irrecoverably failed shards:
           the run completes and the :class:`ShardedJoinResult` carries
           a :class:`ShardFailure` record per dropped shard plus honest
           recall accounting — a degraded result never silently lies.
========== ============================================================

Orthogonally, any policy may set ``shard_timeout_seconds``: a per-shard,
per-attempt deadline enforced at engine-batch boundaries through the
existing cancel-token path, so a hung shard surfaces as a
:class:`~repro.runtime.errors.ShardTimeoutError` (then retried/dropped/
re-raised per the policy) instead of deadlocking the run.

This module is pure policy data + arithmetic; the execution machinery
that applies it lives with the backends in :mod:`repro.runtime.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Type, Union

_FAILURE_POLICIES: Dict[str, Type["FailurePolicy"]] = {}


@dataclass(frozen=True)
class ShardFailure:
    """The record a dropped shard leaves behind on a degraded result.

    Carried in ``ShardedJoinResult.failed_shards`` and surfaced through
    ``link_tables`` statistics and the CLI: which shard was lost, how
    hard the runtime tried, what killed it, and how many input records
    it was responsible for (the basis of the recall estimate).
    """

    shard_id: int
    attempts: int
    error_type: str
    message: str
    batches: int = 0
    timed_out: bool = False
    left_records: int = 0
    right_records: int = 0

    def describe(self) -> str:
        kind = "timed out" if self.timed_out else "failed"
        return (
            f"shard {self.shard_id} {kind} after {self.attempts} attempt(s) "
            f"[{self.error_type}]: {self.message}"
        )


class FailurePolicy:
    """Base class: what to do when a shard attempt fails.

    Subclasses are registered by name; instances are immutable value
    objects the executor reads (the retry/drop machinery itself lives in
    :mod:`repro.runtime.parallel`).
    """

    name = ""
    #: Whether irrecoverably failed shards are dropped (degrade) or fatal.
    drops_failed_shards = False

    def __init__(
        self,
        max_attempts: int = 1,
        backoff_seconds: float = 0.0,
        backoff_multiplier: float = 2.0,
        shard_timeout_seconds: Optional[float] = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if backoff_seconds < 0:
            raise ValueError("backoff_seconds must be non-negative")
        if backoff_multiplier <= 0:
            raise ValueError("backoff_multiplier must be positive")
        if shard_timeout_seconds is not None and shard_timeout_seconds <= 0:
            raise ValueError("shard_timeout_seconds must be positive (or None)")
        self.max_attempts = max_attempts
        self.backoff_seconds = backoff_seconds
        self.backoff_multiplier = backoff_multiplier
        self.shard_timeout_seconds = shard_timeout_seconds

    def should_retry(self, attempt: int) -> bool:
        """Whether a failure on 1-based ``attempt`` warrants another run."""
        return attempt < self.max_attempts

    def backoff_delay(self, attempt: int) -> float:
        """Seconds to wait after a failure on 1-based ``attempt``.

        Deterministic exponential backoff:
        ``backoff_seconds * backoff_multiplier**(attempt - 1)``.
        """
        if self.backoff_seconds == 0:
            return 0.0
        return self.backoff_seconds * self.backoff_multiplier ** (attempt - 1)

    def describe(self) -> str:
        label = self.name or type(self).__name__
        details = []
        if self.max_attempts > 1:
            details.append(f"max_attempts={self.max_attempts}")
        if self.shard_timeout_seconds is not None:
            details.append(f"timeout={self.shard_timeout_seconds}s")
        return f"{label}({', '.join(details)})" if details else label


def register_failure_policy(
    name: str,
) -> Callable[[Type[FailurePolicy]], Type[FailurePolicy]]:
    """Class decorator registering a policy under ``name``."""

    def decorator(cls: Type[FailurePolicy]) -> Type[FailurePolicy]:
        cls.name = name
        _FAILURE_POLICIES[name] = cls
        return cls

    return decorator


def available_failure_policies() -> Tuple[str, ...]:
    """Registered policy names, sorted (CLI ``--on-failure`` choices)."""
    return tuple(sorted(_FAILURE_POLICIES))


def create_failure_policy(
    policy: Union[str, FailurePolicy, None], **options: object
) -> FailurePolicy:
    """Resolve a name / instance / ``None`` into a policy object.

    ``None`` means the default (``fail-fast``).  Keyword options are
    forwarded to the registered class's constructor; passing options with
    an already-constructed instance is an error.
    """
    if policy is None:
        policy = "fail-fast"
    if isinstance(policy, FailurePolicy):
        if options:
            raise ValueError(
                "options cannot be combined with an already-constructed policy"
            )
        return policy
    try:
        cls = _FAILURE_POLICIES[policy]
    except KeyError:
        known = ", ".join(available_failure_policies())
        raise ValueError(
            f"unknown failure policy {policy!r}; available: {known}"
        ) from None
    return cls(**options)  # type: ignore[arg-type]


@register_failure_policy("fail-fast")
class FailFastPolicy(FailurePolicy):
    """The pre-existing semantics: first shard failure aborts the run.

    A single attempt per shard; the lowest-failing-shard-id's error is
    re-raised (wrapped) after pending shards are cancelled.  May still
    carry a ``shard_timeout_seconds`` so hung shards abort the run as
    timeouts instead of blocking it forever.
    """

    def __init__(self, shard_timeout_seconds: Optional[float] = None) -> None:
        super().__init__(max_attempts=1, shard_timeout_seconds=shard_timeout_seconds)


@register_failure_policy("retry")
class RetryPolicy(FailurePolicy):
    """Re-run failed shards up to ``max_attempts`` total attempts.

    Because shard inputs are replayable (materialised buffers —
    see ``ShardPlan``), a clean re-run is bit-identical to a first run;
    a retried run that eventually succeeds is therefore bit-identical to
    a failure-free run.  Exhausted retries escalate to fail-fast.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        backoff_seconds: float = 0.0,
        backoff_multiplier: float = 2.0,
        shard_timeout_seconds: Optional[float] = None,
    ) -> None:
        super().__init__(
            max_attempts=max_attempts,
            backoff_seconds=backoff_seconds,
            backoff_multiplier=backoff_multiplier,
            shard_timeout_seconds=shard_timeout_seconds,
        )


@register_failure_policy("degrade")
class DegradePolicy(FailurePolicy):
    """Drop irrecoverably failed shards and account for them honestly.

    Optionally retries first (``max_attempts > 1``); a shard that still
    fails is *dropped*: the run completes, and the result carries a
    :class:`ShardFailure` record per dropped shard, a coverage fraction
    and a recall estimate — surfaced through ``statistics``, job
    ``progress()`` and the CLI so a degraded result never silently lies.
    """

    drops_failed_shards = True

    def __init__(
        self,
        max_attempts: int = 1,
        backoff_seconds: float = 0.0,
        backoff_multiplier: float = 2.0,
        shard_timeout_seconds: Optional[float] = None,
    ) -> None:
        super().__init__(
            max_attempts=max_attempts,
            backoff_seconds=backoff_seconds,
            backoff_multiplier=backoff_multiplier,
            shard_timeout_seconds=shard_timeout_seconds,
        )
