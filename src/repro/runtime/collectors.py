"""Ready-made event-bus subscribers (metrics collectors).

The monitor and the execution trace are the two *built-in* subscribers
every session wires up; the collectors here are optional extras a caller
attaches to the same bus for ad-hoc measurement, without touching the
session loop::

    bus = EventBus()
    tap = MatchTap().attach(bus)
    rates = StateDwellCollector().attach(bus)
    JoinSession(left, right, "location", config, bus=bus).run()
    tap.events          # every MatchEvent, in emission order
    rates.dwell_steps   # steps spent between consecutive transitions

Collectors follow one convention: ``attach(bus)`` subscribes and returns
``self`` so construction and attachment chain.

:class:`ProgressCollector` is the streaming-observer workhorse: it rides
``StepBatch`` (per engine batch, in-process backends) and
``ShardCompleted`` (per-shard, every backend including ``process``) and
powers ``JobHandle.progress()`` and the CLI ``--progress`` ticker.

Note the granularity choice: collectors that subscribe to per-step
``StepResult`` events (:class:`StateDwellCollector`,
:class:`ThroughputCollector`) opt the session into the engine's per-step
execution path; batch-level collectors (:class:`ProgressCollector`) keep
the engine on its fast batched path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.joins.base import JoinMode, MatchEvent
from repro.joins.engine import StepBatch, StepResult, SwitchRecord
from repro.runtime.events import (
    EventBus,
    ShardCompleted,
    ShardFailed,
    ShardRetrying,
    TransitionEvent,
)


@dataclass
class MatchTap:
    """Collects every :class:`MatchEvent` published on the bus.

    Subscribing to per-match events is what *enables* their publication
    (the engine skips unobserved match streams), so attach the tap before
    the session runs.
    """

    events: List[MatchEvent] = field(default_factory=list)

    def attach(self, bus: EventBus) -> "MatchTap":
        bus.subscribe(MatchEvent, self.events.append)
        return self

    @property
    def approximate_count(self) -> int:
        """Matches found through the approximate operator."""
        return sum(1 for event in self.events if event.mode is JoinMode.APPROXIMATE)


@dataclass
class SwitchLog:
    """Collects every per-side :class:`SwitchRecord` the engine performs."""

    records: List[SwitchRecord] = field(default_factory=list)

    def attach(self, bus: EventBus) -> "SwitchLog":
        bus.subscribe(SwitchRecord, self.records.append)
        return self

    @property
    def total_catch_up_tuples(self) -> int:
        """Tuples re-indexed across all switches (the Sec. 2.3 cost)."""
        return sum(record.catch_up_tuples for record in self.records)


@dataclass
class StateDwellCollector:
    """Measures how long the session dwells between consecutive transitions.

    Complements the trace's per-state totals (Fig. 7) with the *runs*: one
    ``(state, steps)`` entry per maximal span spent in a state, in order.
    Useful for spotting oscillation (many short dwells) that per-state
    totals hide.

    The collector learns states from :class:`TransitionEvent`s; pass
    ``initial_label`` (the session's initial state label) at construction
    so the first dwell — which no transition precedes — is labelled too.
    """

    initial_label: str = ""
    dwell_steps: List[Tuple[str, int]] = field(default_factory=list)
    _steps_in_current: int = 0
    _current_label: str = ""

    def __post_init__(self) -> None:
        self._current_label = self.initial_label

    def attach(self, bus: EventBus) -> "StateDwellCollector":
        bus.subscribe(StepResult, self._on_step)
        bus.subscribe(TransitionEvent, self._on_transition)
        return self

    def _on_step(self, result: StepResult) -> None:
        self._steps_in_current += 1

    def _on_transition(self, event: TransitionEvent) -> None:
        self.dwell_steps.append((event.from_state.label, self._steps_in_current))
        self._steps_in_current = 0
        self._current_label = event.to_state.label

    def finish(self, final_state_label: str = "") -> List[Tuple[str, int]]:
        """Close the last open dwell and return the completed list.

        The label of the closing dwell is tracked from the transitions
        observed (or ``initial_label`` when none fired); an explicit
        ``final_state_label`` overrides it.
        """
        if self._steps_in_current:
            label = final_state_label or self._current_label
            self.dwell_steps.append((label, self._steps_in_current))
            self._steps_in_current = 0
        return self.dwell_steps


@dataclass
class ThroughputCollector:
    """Counts steps and matches per state label (a cheap live dashboard feed)."""

    steps: int = 0
    matches: int = 0
    matches_by_mode: Dict[str, int] = field(
        default_factory=lambda: {mode.value: 0 for mode in JoinMode}
    )

    def attach(self, bus: EventBus) -> "ThroughputCollector":
        bus.subscribe(StepResult, self._on_step)
        return self

    def _on_step(self, result: StepResult) -> None:
        self.steps += 1
        produced = len(result.matches)
        if produced:
            self.matches += produced
            self.matches_by_mode[result.mode.value] += produced


@dataclass(frozen=True)
class ProgressSnapshot:
    """One point-in-time reading of a :class:`ProgressCollector`.

    All counts are *raw*: in sharded runs under a replicating partitioner
    (``gram``) duplicate discoveries are only collapsed at merge time, so
    the live match count can exceed the final deduplicated result size.
    """

    #: Engine steps observed so far (summed over shards).
    steps: int
    #: The full run's step count, when known (``None`` for unsized streams).
    total_steps: Optional[int]
    #: Match events observed so far (raw, pre-dedup).
    matches: int
    #: Shards completed so far (0 for unsharded runs).
    shards_done: int
    #: Total shards in the run, when known (``None`` for unsharded runs).
    total_shards: Optional[int]
    #: Seconds since the collector was constructed.
    elapsed_seconds: float
    #: Shards that failed terminally (dropped by a degrade policy or
    #: about to abort the run under fail-fast).  0 on the happy path.
    shards_failed: int = 0
    #: Shard re-runs scheduled by a retry-capable failure policy.  Note
    #: that a retried shard's steps are re-observed (the step feed is
    #: raw), so ``steps`` can exceed ``total_steps`` under retries —
    #: :attr:`fraction` clamps at 1.
    retries: int = 0

    @property
    def fraction(self) -> Optional[float]:
        """Completed fraction in ``[0, 1]``, or ``None`` when sizes are unknown.

        Prefers the step count (fine-grained, live on every in-process
        backend); falls back to completed shards for the process backend,
        where per-step events cannot cross the worker boundary.
        """
        if self.total_steps:
            return min(self.steps / self.total_steps, 1.0)
        if self.total_shards:
            return min(self.shards_done / self.total_shards, 1.0)
        return None

    def to_json(self) -> Dict[str, object]:
        """The snapshot as a stable JSON-ready mapping (the wire format).

        One format for every observer: the CLI ``--progress`` ticker, the
        HTTP server's ``GET /jobs/{id}`` status payload and tests all read
        these keys.  Optional totals serialise as ``null`` (unknown), and
        the derived :attr:`fraction` is included so clients need no
        arithmetic of their own.
        """
        fraction = self.fraction
        return {
            "steps": self.steps,
            "total_steps": self.total_steps,
            "matches": self.matches,
            "shards_done": self.shards_done,
            "total_shards": self.total_shards,
            "shards_failed": self.shards_failed,
            "retries": self.retries,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "fraction": None if fraction is None else round(fraction, 4),
        }

    def describe(self) -> str:
        """One human-readable progress line (the CLI ``--progress`` ticker)."""
        parts = []
        if self.total_shards:
            parts.append(f"shards {self.shards_done}/{self.total_shards}")
        steps = f"{self.steps} steps"
        if self.total_steps:
            steps += f"/{self.total_steps}"
        parts.append(steps)
        parts.append(f"{self.matches} matches")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.shards_failed:
            parts.append(f"{self.shards_failed} shards FAILED")
        fraction = self.fraction
        if fraction is not None:
            parts.append(f"{fraction:.0%}")
        parts.append(f"{self.elapsed_seconds:.1f}s")
        return " · ".join(parts)


class ProgressCollector:
    """Live progress over a join run, fed by ``StepBatch``/``ShardCompleted``.

    The reusable observer behind ``JobHandle.progress()`` and the CLI's
    ``--progress`` ticker — attach it to any bus (a session's
    :class:`EventBus` or a sharded run's
    :class:`~repro.runtime.parallel.AggregatedEventBus`) and poll
    :meth:`snapshot` from anywhere, any time:

    * step counts come from the :class:`StepBatch` stream (one aggregate
      per engine batch, live on every in-process backend; batch-level so
      progress observation never forces the engine off its fast path);
    * per-shard counts come from the :class:`ShardCompleted` lifecycle
      events — the only feed that crosses the process-backend boundary,
      so steps/matches observed through completed shards act as a floor
      when the step stream is absent.

    Thread-safe by construction: handlers only increment integers (atomic
    under the GIL, and serialised anyway by ``AggregatedEventBus``'s
    publish lock), and :meth:`snapshot` only reads.  ``clock`` is
    injectable for deterministic tests.
    """

    def __init__(
        self,
        total_steps: Optional[int] = None,
        total_shards: Optional[int] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.total_steps = total_steps
        self.total_shards = total_shards
        self._clock = clock
        self._started = clock()
        self._steps = 0
        self._step_matches = 0
        self._shards_done = 0
        self._shard_steps = 0
        self._shard_matches = 0
        self._shards_failed = 0
        self._retries = 0

    def attach(self, bus: EventBus) -> "ProgressCollector":
        bus.subscribe(StepBatch, self._on_batch)
        bus.subscribe(ShardCompleted, self._on_shard_completed)
        bus.subscribe(ShardFailed, self._on_shard_failed)
        bus.subscribe(ShardRetrying, self._on_shard_retrying)
        return self

    def restart_clock(self) -> None:
        """Re-stamp the elapsed-time baseline (call when the run starts).

        A collector is often constructed before the run it observes
        (``JobHandle`` builds one at ``build()`` time); without this,
        ``elapsed_seconds`` would include the idle gap between
        construction and execution.
        """
        self._started = self._clock()

    def _on_batch(self, batch: StepBatch) -> None:
        self._steps += batch.count
        if batch.match_events:
            self._step_matches += len(batch.match_events)

    def _on_shard_completed(self, event: ShardCompleted) -> None:
        self._shards_done += 1
        self._shard_steps += event.result.trace.total_steps
        self._shard_matches += event.result.result_size

    def _on_shard_failed(self, event: ShardFailed) -> None:
        # Per-attempt failures that retry are transient; only terminal
        # failures (dropped or about to abort the run) count here.
        if not event.will_retry:
            self._shards_failed += 1

    def _on_shard_retrying(self, event: ShardRetrying) -> None:
        self._retries += 1

    @property
    def shards_done(self) -> int:
        """Shards completed so far."""
        return self._shards_done

    @property
    def shards_failed(self) -> int:
        """Shards that failed terminally so far."""
        return self._shards_failed

    def snapshot(self) -> ProgressSnapshot:
        """The current progress reading (cheap; callable at any moment)."""
        return ProgressSnapshot(
            # In-process backends stream every step; the process backend
            # only reports through completed shards — take the larger
            # reading so both feeds work (they agree at run end).
            steps=max(self._steps, self._shard_steps),
            total_steps=self.total_steps,
            matches=max(self._step_matches, self._shard_matches),
            shards_done=self._shards_done,
            total_shards=self.total_shards,
            elapsed_seconds=self._clock() - self._started,
            shards_failed=self._shards_failed,
            retries=self._retries,
        )
