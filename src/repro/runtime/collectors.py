"""Ready-made event-bus subscribers (metrics collectors).

The monitor and the execution trace are the two *built-in* subscribers
every session wires up; the collectors here are optional extras a caller
attaches to the same bus for ad-hoc measurement, without touching the
session loop::

    bus = EventBus()
    tap = MatchTap().attach(bus)
    rates = StateDwellCollector().attach(bus)
    JoinSession(left, right, "location", config, bus=bus).run()
    tap.events          # every MatchEvent, in emission order
    rates.dwell_steps   # steps spent between consecutive transitions

Collectors follow one convention: ``attach(bus)`` subscribes and returns
``self`` so construction and attachment chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.joins.base import JoinMode, MatchEvent
from repro.joins.engine import StepResult, SwitchRecord
from repro.runtime.events import EventBus, TransitionEvent


@dataclass
class MatchTap:
    """Collects every :class:`MatchEvent` published on the bus.

    Subscribing to per-match events is what *enables* their publication
    (the engine skips unobserved match streams), so attach the tap before
    the session runs.
    """

    events: List[MatchEvent] = field(default_factory=list)

    def attach(self, bus: EventBus) -> "MatchTap":
        bus.subscribe(MatchEvent, self.events.append)
        return self

    @property
    def approximate_count(self) -> int:
        """Matches found through the approximate operator."""
        return sum(1 for event in self.events if event.mode is JoinMode.APPROXIMATE)


@dataclass
class SwitchLog:
    """Collects every per-side :class:`SwitchRecord` the engine performs."""

    records: List[SwitchRecord] = field(default_factory=list)

    def attach(self, bus: EventBus) -> "SwitchLog":
        bus.subscribe(SwitchRecord, self.records.append)
        return self

    @property
    def total_catch_up_tuples(self) -> int:
        """Tuples re-indexed across all switches (the Sec. 2.3 cost)."""
        return sum(record.catch_up_tuples for record in self.records)


@dataclass
class StateDwellCollector:
    """Measures how long the session dwells between consecutive transitions.

    Complements the trace's per-state totals (Fig. 7) with the *runs*: one
    ``(state, steps)`` entry per maximal span spent in a state, in order.
    Useful for spotting oscillation (many short dwells) that per-state
    totals hide.

    The collector learns states from :class:`TransitionEvent`s; pass
    ``initial_label`` (the session's initial state label) at construction
    so the first dwell — which no transition precedes — is labelled too.
    """

    initial_label: str = ""
    dwell_steps: List[Tuple[str, int]] = field(default_factory=list)
    _steps_in_current: int = 0
    _current_label: str = ""

    def __post_init__(self) -> None:
        self._current_label = self.initial_label

    def attach(self, bus: EventBus) -> "StateDwellCollector":
        bus.subscribe(StepResult, self._on_step)
        bus.subscribe(TransitionEvent, self._on_transition)
        return self

    def _on_step(self, result: StepResult) -> None:
        self._steps_in_current += 1

    def _on_transition(self, event: TransitionEvent) -> None:
        self.dwell_steps.append((event.from_state.label, self._steps_in_current))
        self._steps_in_current = 0
        self._current_label = event.to_state.label

    def finish(self, final_state_label: str = "") -> List[Tuple[str, int]]:
        """Close the last open dwell and return the completed list.

        The label of the closing dwell is tracked from the transitions
        observed (or ``initial_label`` when none fired); an explicit
        ``final_state_label`` overrides it.
        """
        if self._steps_in_current:
            label = final_state_label or self._current_label
            self.dwell_steps.append((label, self._steps_in_current))
            self._steps_in_current = 0
        return self.dwell_steps


@dataclass
class ThroughputCollector:
    """Counts steps and matches per state label (a cheap live dashboard feed)."""

    steps: int = 0
    matches: int = 0
    matches_by_mode: Dict[str, int] = field(
        default_factory=lambda: {mode.value: 0 for mode in JoinMode}
    )

    def attach(self, bus: EventBus) -> "ThroughputCollector":
        bus.subscribe(StepResult, self._on_step)
        return self

    def _on_step(self, result: StepResult) -> None:
        self.steps += 1
        produced = len(result.matches)
        if produced:
            self.matches += produced
            self.matches_by_mode[result.mode.value] += produced
