"""Parallel shard execution: the *execute* half of partition → execute → merge.

:class:`ParallelExecutor` drives every shard of a
:class:`~repro.runtime.sharding.ShardPlan` through its own
:class:`~repro.runtime.session.JoinSession` and merges the outcomes into a
:class:`~repro.runtime.sharding.ShardedJoinResult`.  Four backends are
registered:

``"serial"``
    Run shards one after the other in the calling thread.  The reference
    backend: bit-deterministic (same plan + config → byte-identical merged
    result, every time) and the oracle the others are tested against.

``"thread"``
    A ``ThreadPoolExecutor``.  Sessions share no mutable state, so threads
    need no coordination; on CPython the GIL serialises the pure-Python
    join work, so this backend mostly buys overlap of any C-level work and
    is kept as the low-overhead stepping stone (and as a scheduler-shuffle
    stressor for determinism tests).

``"process"``
    A ``ProcessPoolExecutor``: real multi-core scaling.  Each worker
    rebuilds its shard's streams and session from a pickled
    :class:`_ShardTask`, so the run configuration and every shard record
    must be picklable — enforced up front with a clear error rather than
    a deep traceback out of the pool.

``"async"``
    Cooperative asyncio on one event loop: every shard session advances
    in bounded engine batches over its lazy per-shard streams and yields
    the loop between batches, so all shards interleave on a single
    thread with no pools, no pickling and live event forwarding.  The
    natural host for job-style consumers (streaming observers, progress
    ticks, prompt cancellation — the cancel token is honoured *between
    engine batches*, not just between shards) and for embedding the run
    alongside other asyncio work via ``asyncio.to_thread``.

Every backend produces the same merged result for the same plan (the
per-shard sessions are deterministic; backends only change *where* they
run), which `tests/runtime/test_sharding_equivalence.py` pins.

Observers: pass an :class:`AggregatedEventBus` to keep existing collectors
working across shards.  For the in-process backends (serial, thread,
async) every shard event is forwarded onto it live, tagged via
:class:`ShardEvent`; the process backend cannot stream events across the
process boundary, so it publishes only the per-shard
:class:`ShardCompleted` lifecycle events (the merged result still carries
every trace and counter).

Cancellation: every backend accepts a cancel token (anything with an
``is_set()`` method, typically a :class:`threading.Event`).  Serial,
thread and process stop scheduling shards once it is set and return the
shards already completed; the async backend additionally stops *running*
shards at their next batch boundary (partial shard results, flagged
``cancelled``).  The merged :class:`ShardedJoinResult` then carries
``cancelled=True``.
"""

from __future__ import annotations

import asyncio
import pickle
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    FIRST_EXCEPTION,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Type, Union

from repro.engine.streams import InputLike
from repro.engine.tuples import Record, Schema
from repro.joins.base import JoinAttribute, MatchEvent
from repro.joins.engine import StepResult, SwitchRecord
from repro.runtime.config import RunConfig
from repro.runtime.events import (
    AssessmentEvent,
    EventBus,
    ShardCompleted,
    ShardEvent,
    TransitionEvent,
)
from repro.runtime.session import AdaptiveJoinResult, JoinSession
from repro.runtime.sharding import (
    Partitioner,
    ShardedJoinResult,
    ShardOutcome,
    ShardPlan,
)

__all__ = [
    "AggregatedEventBus",
    "ParallelExecutor",
    "ShardCompleted",  # re-exported; defined in repro.runtime.events
    "ShardEvent",  # re-exported; defined in repro.runtime.events
    "available_backends",
    "register_backend",
    "run_sharded",
]

#: Engine steps each async shard advances before yielding the event loop.
#: Small enough for responsive interleaving/cancellation, large enough to
#: amortise the coroutine switch (a few hundred probe steps per switch).
_ASYNC_BATCH = 256


#: Event types forwarded live from shard buses by the in-process backends.
FORWARDED_EVENT_TYPES: Tuple[Type, ...] = (
    StepResult,
    MatchEvent,
    SwitchRecord,
    TransitionEvent,
    AssessmentEvent,
)


class AggregatedEventBus(EventBus):
    """A thread-safe :class:`EventBus` that aggregates several shard buses.

    Subscribe collectors exactly as on a plain bus; then hand the bus to
    :meth:`ParallelExecutor.run`, which attaches one forwarder per shard.
    ``publish`` takes a lock because thread-backend shards publish
    concurrently; per-shard buses stay lock-free (each is touched by one
    worker only).
    """

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        super().__init__()
        # Reentrant: a handler may publish a derived event from inside
        # its own dispatch without deadlocking.
        self._lock = threading.RLock()

    def publish(self, event: object) -> None:
        with self._lock:
            EventBus.publish(self, event)

    def forward_from(self, shard_id: int, shard_bus: EventBus) -> None:
        """Subscribe forwarders on ``shard_bus`` for every forwarded type.

        Each shard event is re-published here twice: raw (existing
        shard-agnostic subscribers keep working) and wrapped in a
        :class:`ShardEvent` (only when someone subscribed to those).
        Match events are only forwarded when the aggregated bus has
        match-interested subscribers — subscribing to ``MatchEvent`` on a
        shard bus is what *enables* its publication, so an unobserved
        match stream must stay unobserved on the shard too.
        """
        tag_channel = self.channel(ShardEvent)

        def forward(event: object) -> None:
            with self._lock:
                handlers = self._handlers.get(type(event))
                if handlers:
                    for handler in handlers:
                        handler(event)
                if tag_channel:
                    tagged = ShardEvent(shard_id, event)
                    for handler in tag_channel:
                        handler(tagged)

        for event_type in FORWARDED_EVENT_TYPES:
            if event_type is MatchEvent and not (
                self.has_subscribers(MatchEvent) or self.has_subscribers(ShardEvent)
            ):
                continue
            shard_bus.subscribe(event_type, forward)


# -- backend registry -------------------------------------------------------------------

_BACKENDS: Dict[str, Callable] = {}


def register_backend(name: str):
    """Function decorator registering an execution backend under ``name``.

    A backend is a callable ``(plan, config, bus, max_workers, cancel) →
    List[ShardOutcome]``; it owns worker scheduling and nothing else —
    partitioning happened before it runs, merging happens after.
    ``cancel`` is an optional token (``is_set()``-style): once set the
    backend must stop scheduling new shards and return the outcomes of
    the shards already completed, leaving no dangling futures behind.
    """
    if not name:
        raise ValueError("backend name must be non-empty")

    def decorate(func):
        if name in _BACKENDS:
            raise ValueError(f"backend {name!r} is already registered")
        _BACKENDS[name] = func
        return func

    return decorate


def available_backends() -> Tuple[str, ...]:
    """Names of all registered execution backends, sorted."""
    return tuple(sorted(_BACKENDS))


# -- shard execution --------------------------------------------------------------------


def _run_shard_inline(
    plan: ShardPlan,
    config: RunConfig,
    shard_id: int,
    bus: Optional[AggregatedEventBus],
    cancel: Optional[object] = None,
) -> ShardOutcome:
    """Build and run one shard's session in the current thread.

    ``cancel`` is forwarded to the session loop, so an in-flight shard
    stops at its next engine-batch boundary once the token is set (its
    outcome then carries a partial, ``cancelled`` result).
    """
    started = time.perf_counter()
    left, right = plan.shard_streams(shard_id)
    shard_bus = EventBus()
    if bus is not None:
        bus.forward_from(shard_id, shard_bus)
    session = JoinSession(left, right, plan.attribute, config, bus=shard_bus)
    result = session.run(cancel=cancel)
    return ShardOutcome(
        shard_id=shard_id,
        result=result,
        left_origins=plan.left_shards[shard_id].origins,
        right_origins=plan.right_shards[shard_id].origins,
        wall_seconds=time.perf_counter() - started,
    )


def _cancelled(cancel: Optional[object]) -> bool:
    """Whether a (possibly absent) cancel token has been set."""
    return cancel is not None and cancel.is_set()


def _never_ran(outcome: ShardOutcome) -> bool:
    """A shard that observed the cancel token before its first engine step.

    Such shards were *skipped*, not partially run: backends drop them so
    "cancel between shards" returns only shards that did real work (plus,
    on backends with batch-level cancellation, genuinely partial ones).
    The rule itself is :attr:`AdaptiveJoinResult.never_ran`.
    """
    return outcome.result.never_ran


@dataclass
class _ShardTask:
    """The picklable payload a process-backend worker rebuilds a shard from."""

    shard_id: int
    attribute: JoinAttribute
    config: RunConfig
    left: "ShardInputPayload"
    right: "ShardInputPayload"


@dataclass
class ShardInputPayload:
    """One side's shard records, shipped to a worker process."""

    schema: Schema
    records: List[Record]
    name: str


def _run_shard_task(task: _ShardTask) -> Tuple[int, AdaptiveJoinResult, float]:
    """Process-pool worker: run one shard session from its pickled task."""
    from repro.engine.streams import ListStream

    started = time.perf_counter()
    left = ListStream(task.left.schema, task.left.records, name=task.left.name)
    right = ListStream(task.right.schema, task.right.records, name=task.right.name)
    session = JoinSession(left, right, task.attribute, task.config)
    result = session.run()
    return task.shard_id, result, time.perf_counter() - started


def _ensure_picklable(obj: object, what: str) -> None:
    """Raise a clear error when ``obj`` cannot cross a process boundary."""
    try:
        pickle.dumps(obj)
    except Exception as error:
        raise ValueError(
            f"the process backend ships each shard to a worker process, but "
            f"{what} is not picklable: {error}"
        ) from error


def _raise_first_failure(futures_to_shards: Dict, done, pending) -> None:
    """Cancel outstanding shard work and re-raise the first shard error.

    ``wait(..., FIRST_EXCEPTION)`` returns as soon as any shard fails;
    without this cleanup the naive "collect every result" loop would
    block on still-running futures (and keep scheduling queued ones)
    before surfacing the error.  Among the failures already observed the
    lowest shard id wins, so the raised error is deterministic even when
    several shards fail in the same race.  No-op when nothing failed.
    """
    failures = sorted(
        (
            (futures_to_shards[future], future.exception())
            for future in done
            if future.exception() is not None
        ),
        key=lambda item: item[0],
    )
    if not failures:
        return
    for future in pending:
        future.cancel()
    raise failures[0][1]


# -- the backends -----------------------------------------------------------------------


@register_backend("serial")
def _serial_backend(
    plan: ShardPlan,
    config: RunConfig,
    bus: Optional[AggregatedEventBus],
    max_workers: Optional[int],
    cancel: Optional[object] = None,
) -> List[ShardOutcome]:
    """Shards run one after the other, in shard-id order (the oracle).

    A set cancel token stops the running shard at its next engine-batch
    boundary (partial outcome kept) and skips every shard that has not
    started; completed shards are returned as-is.
    """
    outcomes = []
    for shard_id in range(plan.shard_count):
        if _cancelled(cancel):
            break
        outcome = _run_shard_inline(plan, config, shard_id, bus, cancel)
        if _never_ran(outcome):
            # The token was set between the loop check and the session's
            # first step (another thread cancelled): skipped, not run.
            break
        if bus is not None:
            bus.publish(
                ShardCompleted(shard_id, outcome.result, outcome.wall_seconds)
            )
        outcomes.append(outcome)
    return outcomes


@register_backend("thread")
def _thread_backend(
    plan: ShardPlan,
    config: RunConfig,
    bus: Optional[AggregatedEventBus],
    max_workers: Optional[int],
    cancel: Optional[object] = None,
) -> List[ShardOutcome]:
    """One thread per shard (capped at ``max_workers``).

    A shard failure cancels every not-yet-started shard and re-raises
    the first error promptly — in-flight threads cannot be interrupted
    (they finish in the background), but nothing new is scheduled and the
    caller is never blocked on them.

    A set cancel token drains quickly instead: in-flight sessions stop
    at their next engine-batch boundary (the token is threaded into
    every session loop), queued shards observe it before their first
    step and are dropped, and the backend returns the shards that did
    real work — every future completed, none dangling.
    """
    workers = min(max_workers or plan.shard_count, plan.shard_count)
    outcomes: List[ShardOutcome] = []
    pool = ThreadPoolExecutor(max_workers=workers)
    failed = True
    try:
        futures = {
            pool.submit(
                _run_shard_inline, plan, config, shard_id, bus, cancel
            ): shard_id
            for shard_id in range(plan.shard_count)
        }
        done, pending = wait(futures, return_when=FIRST_EXCEPTION)
        _raise_first_failure(futures, done, pending)
        failed = False
        for future in futures:
            outcome = future.result()
            if _never_ran(outcome):
                continue  # skipped after cancellation, not a real shard run
            if bus is not None:
                bus.publish(
                    ShardCompleted(
                        outcome.shard_id, outcome.result, outcome.wall_seconds
                    )
                )
            outcomes.append(outcome)
    finally:
        # Success: everything is done, the shutdown is instant.  Failure:
        # don't wait for stragglers, drop whatever is still queued.
        pool.shutdown(wait=not failed, cancel_futures=True)
    return outcomes


@register_backend("process")
def _process_backend(
    plan: ShardPlan,
    config: RunConfig,
    bus: Optional[AggregatedEventBus],
    max_workers: Optional[int],
    cancel: Optional[object] = None,
) -> List[ShardOutcome]:
    """One worker process per shard (capped at ``max_workers``).

    Requires a picklable :class:`RunConfig` and picklable shard records
    (checked up front).  Shard events are not streamed back — only
    :class:`ShardCompleted` is published per shard, after the fact.  A
    shard failure cancels every still-queued shard task and re-raises
    the first error promptly, exactly like the thread backend.

    Cancellation is coarse here: the token cannot cross the process
    boundary, so it is checked between shard completions — queued shard
    tasks are cancelled, in-flight workers run their shard to the end.
    """
    _ensure_picklable(config, "the run configuration (RunConfig)")
    tasks = []
    for shard_id in range(plan.shard_count):
        left_input = plan.left_shards[shard_id]
        right_input = plan.right_shards[shard_id]
        task = _ShardTask(
            shard_id=shard_id,
            attribute=plan.attribute,
            config=config,
            left=ShardInputPayload(
                left_input.schema, left_input.records, left_input.name
            ),
            right=ShardInputPayload(
                right_input.schema, right_input.records, right_input.name
            ),
        )
        _ensure_picklable(task, f"shard {shard_id}'s input records")
        tasks.append(task)
    workers = min(max_workers or plan.shard_count, plan.shard_count)
    pool = ProcessPoolExecutor(max_workers=workers)
    failed = True
    completed: Dict[int, Tuple[AdaptiveJoinResult, float]] = {}
    next_publish = 0
    try:
        futures = {
            pool.submit(_run_shard_task, task): task.shard_id for task in tasks
        }
        pending = set(futures)
        while pending:
            if _cancelled(cancel):
                # Queued tasks are dropped; in-flight workers finish their
                # shard (the token cannot reach them) and are collected.
                pending = {
                    future for future in pending if not future.cancel()
                }
                if not pending:
                    break
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            _raise_first_failure(futures, done, pending)
            for future in done:
                shard_id, result, wall_seconds = future.result()
                completed[shard_id] = (result, wall_seconds)
            # Stream completions progressively, in shard-id order: shard
            # k's event goes out as soon as shards 0..k have finished,
            # without waiting for the whole run (a live progress feed).
            if bus is not None:
                while next_publish in completed:
                    result, wall_seconds = completed[next_publish]
                    bus.publish(
                        ShardCompleted(next_publish, result, wall_seconds)
                    )
                    next_publish += 1
        failed = False
        # Cancellation can leave a gap in the shard-id sequence (a
        # cancelled queued shard); flush the completions stuck behind it.
        if bus is not None:
            for shard_id in sorted(completed):
                if shard_id >= next_publish:
                    result, wall_seconds = completed[shard_id]
                    bus.publish(ShardCompleted(shard_id, result, wall_seconds))
    finally:
        pool.shutdown(wait=not failed, cancel_futures=True)
    return [
        ShardOutcome(
            shard_id=shard_id,
            result=result,
            left_origins=plan.left_shards[shard_id].origins,
            right_origins=plan.right_shards[shard_id].origins,
            wall_seconds=wall_seconds,
        )
        for shard_id, (result, wall_seconds) in sorted(completed.items())
    ]


async def _drive_shards_async(
    plan: ShardPlan,
    config: RunConfig,
    bus: Optional[AggregatedEventBus],
    max_workers: Optional[int],
    cancel: Optional[object],
) -> List[ShardOutcome]:
    """Interleave every shard session cooperatively on the running loop.

    Each shard task advances its session :data:`_ASYNC_BATCH` engine
    steps at a time and awaits between batches, handing the loop to the
    other shards (and to any consumer coroutines sharing it).  Scheduling
    is deterministic — one thread, round-robin task order — so the merged
    result is bit-identical to the serial backend's.  ``ShardCompleted``
    events stream head-of-line in shard-id order, like the process
    backend: shard *k* is announced as soon as shards ``0..k`` are done.
    """
    workers = min(max_workers or plan.shard_count, plan.shard_count)
    semaphore = asyncio.Semaphore(workers)
    #: shard id → outcome, or None for a shard skipped after cancellation.
    finished: Dict[int, Optional[ShardOutcome]] = {}
    next_publish = 0

    def publish_ready() -> None:
        nonlocal next_publish
        while next_publish in finished:
            outcome = finished[next_publish]
            if bus is not None and outcome is not None:
                bus.publish(
                    ShardCompleted(
                        outcome.shard_id, outcome.result, outcome.wall_seconds
                    )
                )
            next_publish += 1

    async def run_shard(shard_id: int) -> None:
        async with semaphore:
            if _cancelled(cancel):
                finished[shard_id] = None  # skipped: cancel between shards
                publish_ready()
                return
            started = time.perf_counter()
            left, right = plan.shard_streams(shard_id)
            shard_bus = EventBus()
            if bus is not None:
                bus.forward_from(shard_id, shard_bus)
            session = JoinSession(
                left, right, plan.attribute, config, bus=shard_bus
            )
            for _ in session.run_batches(max_batch=_ASYNC_BATCH, cancel=cancel):
                await asyncio.sleep(0)  # hand the loop to the other shards
            outcome = ShardOutcome(
                shard_id=shard_id,
                result=session.result(),
                left_origins=plan.left_shards[shard_id].origins,
                right_origins=plan.right_shards[shard_id].origins,
                wall_seconds=time.perf_counter() - started,
            )
            # A session that observed the token before its first step was
            # skipped, not partially run — same rule as the thread backend.
            finished[shard_id] = None if _never_ran(outcome) else outcome
            publish_ready()

    tasks = [
        asyncio.ensure_future(run_shard(shard_id))
        for shard_id in range(plan.shard_count)
    ]
    try:
        await asyncio.gather(*tasks)
    except BaseException:
        # First failure wins (deterministic: one thread, ordered tasks);
        # nothing may keep running behind the caller's back.
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        raise
    return [
        outcome
        for shard_id, outcome in sorted(finished.items())
        if outcome is not None
    ]


@register_backend("async")
def _async_backend(
    plan: ShardPlan,
    config: RunConfig,
    bus: Optional[AggregatedEventBus],
    max_workers: Optional[int],
    cancel: Optional[object] = None,
) -> List[ShardOutcome]:
    """All shards interleave cooperatively on one asyncio event loop.

    The fourth backend: single-threaded like ``serial`` (and therefore
    producing the identical merged result), but *concurrent* — every
    shard session advances in bounded batches over its lazy per-shard
    streams and yields the loop between batches, so long shards overlap
    short ones, live observers tick throughout the run, and a cancel
    token takes effect at the next batch boundary of every running shard
    (partial results), not just between shards.  No thread pool, no
    pickling requirement.

    The backend owns its event loop (``asyncio.run``); to embed it in an
    already-running loop, dispatch the whole ``run_sharded`` call via
    ``asyncio.to_thread`` — or drive sessions directly with
    :meth:`~repro.runtime.session.JoinSession.run_batches`.
    """
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        pass
    else:
        raise RuntimeError(
            "the async backend owns its event loop and cannot be started "
            "from inside a running one; dispatch run_sharded via "
            "asyncio.to_thread(...) instead"
        )
    return asyncio.run(
        _drive_shards_async(plan, config, bus, max_workers, cancel)
    )


# -- the executor -----------------------------------------------------------------------


class ParallelExecutor:
    """Runs every shard of a plan through its own session and merges.

    Parameters
    ----------
    backend:
        A registered backend name (see :func:`available_backends`).
    max_workers:
        Optional cap on concurrent workers (defaults to the shard count;
        ignored by the serial backend).
    """

    def __init__(self, backend: str = "serial", max_workers: Optional[int] = None):
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown execution backend {backend!r}; registered: "
                f"{available_backends()}"
            )
        self.backend = backend
        self.max_workers = max_workers

    def run(
        self,
        plan: ShardPlan,
        config: Optional[RunConfig] = None,
        bus: Optional[AggregatedEventBus] = None,
        cancel: Optional[object] = None,
    ) -> ShardedJoinResult:
        """Execute every shard of ``plan`` under ``config`` and merge.

        Each shard gets a fresh :class:`JoinSession` built from the same
        (immutable) config: policies are instantiated per shard from
        ``config.policy``, every shard adapts independently, and relative
        budgets (``budget_fraction``) resolve against the shard's own
        input sizes.  An explicit ``config.parent_size`` is taken as-is by
        every shard; leave it unset to let each shard infer its own
        partition's parent size (the per-shard analog of ``|R|``).

        ``cancel`` (an ``is_set()``-style token, e.g. ``threading.Event``)
        requests a mid-run stop; the merged result then contains the
        shards completed before the token was observed and carries
        ``cancelled=True``.
        """
        config = config or RunConfig()
        # A plan built without the config in hand (or with a hand-built
        # partitioner) must still agree with the run it executes under —
        # the gram partitioner's recall guarantee depends on matching
        # tokenisation, so a mismatch is an error, not a silent loss.
        plan.partitioner.check_config(config)
        outcomes = _BACKENDS[self.backend](
            plan, config, bus, self.max_workers, cancel
        )
        return ShardedJoinResult(
            shards=tuple(outcomes),
            backend=self.backend,
            partitioner=plan.partitioner.name or type(plan.partitioner).__name__,
            left_input_size=plan.left_input_size,
            right_input_size=plan.right_input_size,
            cancelled=_cancelled(cancel)
            or any(outcome.result.cancelled for outcome in outcomes),
        )


def run_sharded(
    left: InputLike,
    right: InputLike,
    attribute: Union[str, JoinAttribute],
    config: Optional[RunConfig] = None,
    shards: int = 1,
    partitioner: Union[str, Partitioner] = "hash",
    backend: str = "serial",
    max_workers: Optional[int] = None,
    bus: Optional[AggregatedEventBus] = None,
    cancel: Optional[object] = None,
) -> ShardedJoinResult:
    """One-call sharded join: partition, execute on a backend, merge.

    The convenience entry point ``link_tables``, the bench harness and the
    CLI build on; equivalent to building a :class:`ShardPlan` and handing
    it to a :class:`ParallelExecutor` by hand.  The config is forwarded
    to the plan build, so a partitioner given *by name* is constructed
    against it (:meth:`Partitioner.from_config`) — which is what keeps
    the ``gram`` partitioner's tokenisation (``q``, gram padding) in
    lock-step with the engine's approximate operator.
    """
    config = config or RunConfig()
    plan = ShardPlan.build(
        left, right, attribute, shards, partitioner, config=config
    )
    executor = ParallelExecutor(backend=backend, max_workers=max_workers)
    return executor.run(plan, config, bus=bus, cancel=cancel)
