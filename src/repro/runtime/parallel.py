"""Parallel shard execution: the *execute* half of partition → execute → merge.

:class:`ParallelExecutor` drives every shard of a
:class:`~repro.runtime.sharding.ShardPlan` through its own
:class:`~repro.runtime.session.JoinSession` and merges the outcomes into a
:class:`~repro.runtime.sharding.ShardedJoinResult`.  Four backends are
registered:

``"serial"``
    Run shards one after the other in the calling thread.  The reference
    backend: bit-deterministic (same plan + config → byte-identical merged
    result, every time) and the oracle the others are tested against.

``"thread"``
    A ``ThreadPoolExecutor``.  Sessions share no mutable state, so threads
    need no coordination; on CPython the GIL serialises the pure-Python
    join work, so this backend mostly buys overlap of any C-level work and
    is kept as the low-overhead stepping stone (and as a scheduler-shuffle
    stressor for determinism tests).

``"process"``
    A ``ProcessPoolExecutor``: real multi-core scaling.  Each worker
    rebuilds its shard's streams and session from a pickled
    :class:`_ShardTask`, so the run configuration and every shard record
    must be picklable — enforced up front with a clear error rather than
    a deep traceback out of the pool.

``"async"``
    Cooperative asyncio on one event loop: every shard session advances
    in bounded engine batches over its lazy per-shard streams and yields
    the loop between batches, so all shards interleave on a single
    thread with no pools, no pickling and live event forwarding.  The
    natural host for job-style consumers (streaming observers, progress
    ticks, prompt cancellation — the cancel token is honoured *between
    engine batches*, not just between shards) and for embedding the run
    alongside other asyncio work via ``asyncio.to_thread``.

Every backend produces the same merged result for the same plan (the
per-shard sessions are deterministic; backends only change *where* they
run), which `tests/runtime/test_sharding_equivalence.py` pins.

Observers: pass an :class:`AggregatedEventBus` to keep existing collectors
working across shards.  For the in-process backends (serial, thread,
async) every shard event is forwarded onto it live, tagged via
:class:`ShardEvent`; the process backend cannot stream events across the
process boundary, so it publishes only the per-shard
:class:`ShardCompleted` lifecycle events (the merged result still carries
every trace and counter).

Cancellation: every backend accepts a cancel token (anything with an
``is_set()`` method, typically a :class:`threading.Event`).  Serial,
thread and process stop scheduling shards once it is set and return the
shards already completed; the async backend additionally stops *running*
shards at their next batch boundary (partial shard results, flagged
``cancelled``).  The merged :class:`ShardedJoinResult` then carries
``cancelled=True``.

Failure semantics: what happens when a shard session *raises* is decided
by a :class:`~repro.runtime.failures.FailurePolicy` (``fail-fast`` |
``retry`` | ``degrade``), applied uniformly across all four backends by
:class:`FailureContext` — the shard runner that wraps errors into
:class:`~repro.runtime.errors.ShardExecutionError`, re-runs failed
shards with deterministic backoff (shard inputs are replayable by
contract), enforces per-shard timeouts at engine-batch boundaries via
the cancel-token path, publishes ``ShardFailed`` / ``ShardRetrying``
lifecycle events, and records dropped shards for honest degraded
accounting.  Deterministic fault injection
(:class:`~repro.runtime.faults.FaultPlan`) hooks into the same runner,
so every failure path is reproducible on every backend.  A run with no
faults, no timeout and the default policy takes the exact pre-existing
code path — the happy path pays nothing.
"""

from __future__ import annotations

import asyncio
import pickle
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    FIRST_EXCEPTION,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Tuple, Type, Union

from repro.engine.streams import InputLike
from repro.engine.tuples import Record, Schema
from repro.joins.base import JoinAttribute, MatchEvent
from repro.joins.engine import StepBatch, StepResult, SwitchRecord
from repro.runtime.config import RunConfig
from repro.runtime.errors import ShardExecutionError, ShardTimeoutError
from repro.runtime.events import (
    AssessmentEvent,
    EventBus,
    ShardCompleted,
    ShardEvent,
    ShardFailed,
    ShardRetrying,
    TransitionEvent,
)
from repro.runtime.failures import (
    FailurePolicy,
    ShardFailure,
    create_failure_policy,
)
from repro.runtime.faults import FaultPlan, FaultSpec, InjectedFaultError
from repro.runtime.handoff import BlockDescriptor
from repro.runtime.session import AdaptiveJoinResult, JoinSession
from repro.runtime.sharding import (
    Partitioner,
    PublishedPlanBlocks,
    ShardedJoinResult,
    ShardOutcome,
    ShardPlan,
)

__all__ = [
    "AggregatedEventBus",
    "FailureContext",
    "ParallelExecutor",
    "ShardCompleted",  # re-exported; defined in repro.runtime.events
    "ShardEvent",  # re-exported; defined in repro.runtime.events
    "available_backends",
    "estimate_shard_payload_bytes",
    "register_backend",
    "run_sharded",
]

#: Engine steps each async shard advances before yielding the event loop.
#: Small enough for responsive interleaving/cancellation, large enough to
#: amortise the coroutine switch (a few hundred probe steps per switch).
_ASYNC_BATCH = 256

#: Engine steps per batch when a sync backend must supervise an attempt
#: (per-shard timeout or injected fault): the deadline/fault checks run
#: at these boundaries.  Deliberately equal to :data:`_ASYNC_BATCH` so
#: "fail after n batches" means the same thing on every backend.
_SUPERVISED_BATCH = 256

#: How long a cooperatively hung shard sleeps between polls of its
#: deadline/cancel token.  Bounds how far past its timeout a hung shard
#: can run.
_HANG_POLL_SECONDS = 0.02


#: Event types forwarded live from shard buses by the in-process backends.
FORWARDED_EVENT_TYPES: Tuple[Type, ...] = (
    StepBatch,
    StepResult,
    MatchEvent,
    SwitchRecord,
    TransitionEvent,
    AssessmentEvent,
)

#: Forwarded types whose shard-bus subscription is demand-gated: attaching
#: a forwarder *enables* publication on the shard bus (match events) or
#: forces the shard engine off its batched fast path (per-step results),
#: so the forwarder is only attached when the aggregated bus actually has
#: a consumer — a direct subscriber of the type, or a ``ShardEvent``
#: subscriber (which receives every forwarded event, tagged).
_DEMAND_GATED_TYPES: Tuple[Type, ...] = (StepResult, MatchEvent)


class AggregatedEventBus(EventBus):
    """A thread-safe :class:`EventBus` that aggregates several shard buses.

    Subscribe collectors exactly as on a plain bus; then hand the bus to
    :meth:`ParallelExecutor.run`, which attaches one forwarder per shard.
    ``publish`` takes a lock because thread-backend shards publish
    concurrently; per-shard buses stay lock-free (each is touched by one
    worker only).
    """

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        super().__init__()
        # Reentrant: a handler may publish a derived event from inside
        # its own dispatch without deadlocking.
        self._lock = threading.RLock()

    def publish(self, event: object) -> None:
        with self._lock:
            EventBus.publish(self, event)

    def forward_from(self, shard_id: int, shard_bus: EventBus) -> None:
        """Subscribe forwarders on ``shard_bus`` for every forwarded type.

        Each shard event is re-published here twice: raw (existing
        shard-agnostic subscribers keep working) and wrapped in a
        :class:`ShardEvent` (only when someone subscribed to those).
        Match events and per-step results are demand-gated
        (:data:`_DEMAND_GATED_TYPES`): subscribing to ``MatchEvent`` on a
        shard bus is what *enables* its publication, and subscribing to
        ``StepResult`` forces the shard engine off its batched fast path —
        so those forwarders are only attached when the aggregated bus has
        a consumer for them.
        """
        tag_channel = self.channel(ShardEvent)

        def forward(event: object) -> None:
            with self._lock:
                handlers = self._handlers.get(type(event))
                if handlers:
                    for handler in handlers:
                        handler(event)
                if tag_channel:
                    tagged = ShardEvent(shard_id, event)
                    for handler in tag_channel:
                        handler(tagged)

        for event_type in FORWARDED_EVENT_TYPES:
            if event_type in _DEMAND_GATED_TYPES and not (
                self.has_subscribers(event_type) or self.has_subscribers(ShardEvent)
            ):
                continue
            shard_bus.subscribe(event_type, forward)


# -- backend registry -------------------------------------------------------------------

_BACKENDS: Dict[str, Callable] = {}


def register_backend(name: str):
    """Function decorator registering an execution backend under ``name``.

    A backend is a callable ``(plan, config, bus, max_workers, cancel,
    ctx) → List[ShardOutcome]``; it owns worker scheduling and nothing
    else — partitioning happened before it runs, merging happens after.
    ``cancel`` is an optional token (``is_set()``-style): once set the
    backend must stop scheduling new shards and return the outcomes of
    the shards already completed, leaving no dangling futures behind.
    ``ctx`` is the run's :class:`FailureContext`; backends route each
    shard through ``ctx.run_shard`` / ``ctx.drive_shard`` (which applies
    the failure policy, timeouts and fault injection uniformly) and skip
    ``None`` outcomes (shards skipped after cancellation or dropped by a
    degrade policy).
    """
    if not name:
        raise ValueError("backend name must be non-empty")

    def decorate(func):
        if name in _BACKENDS:
            raise ValueError(f"backend {name!r} is already registered")
        _BACKENDS[name] = func
        return func

    return decorate


def available_backends() -> Tuple[str, ...]:
    """Names of all registered execution backends, sorted."""
    return tuple(sorted(_BACKENDS))


# -- shard execution --------------------------------------------------------------------


def _run_shard_inline(
    plan: ShardPlan,
    config: RunConfig,
    shard_id: int,
    bus: Optional[AggregatedEventBus],
    cancel: Optional[object] = None,
) -> ShardOutcome:
    """Build and run one shard's session in the current thread.

    ``cancel`` is forwarded to the session loop, so an in-flight shard
    stops at its next engine-batch boundary once the token is set (its
    outcome then carries a partial, ``cancelled`` result).
    """
    started = time.perf_counter()
    # Shard inputs go to the session as-is; its stream normalisation
    # builds the zero-copy RowSliceStream view for block-backed shards.
    left = plan.left_shards[shard_id]
    right = plan.right_shards[shard_id]
    shard_bus = EventBus()
    if bus is not None:
        bus.forward_from(shard_id, shard_bus)
    session = JoinSession(left, right, plan.attribute, config, bus=shard_bus)
    result = session.run(cancel=cancel)
    return ShardOutcome(
        shard_id=shard_id,
        result=result,
        left_origins=plan.left_shards[shard_id].origins,
        right_origins=plan.right_shards[shard_id].origins,
        wall_seconds=time.perf_counter() - started,
    )


def _cancelled(cancel: Optional[object]) -> bool:
    """Whether a (possibly absent) cancel token has been set."""
    return cancel is not None and cancel.is_set()


def _never_ran(outcome: ShardOutcome) -> bool:
    """A shard that observed the cancel token before its first engine step.

    Such shards were *skipped*, not partially run: backends drop them so
    "cancel between shards" returns only shards that did real work (plus,
    on backends with batch-level cancellation, genuinely partial ones).
    The rule itself is :attr:`AdaptiveJoinResult.never_ran`.
    """
    return outcome.result.never_ran


class _AttemptDeadline:
    """A cancel token that also trips when an attempt's deadline passes.

    Combines the caller's token (cooperative cancellation, unchanged)
    with a per-attempt timeout read off an injectable clock.  Handed to
    ``JoinSession.run_batches`` exactly like a plain token, so timeout
    enforcement rides the existing batch-boundary cancellation path —
    a hung or slow shard stops at its next boundary, and ``timed_out``
    tells the runner whether the trip was a timeout (raise
    :class:`ShardTimeoutError`) or the caller cancelling (return the
    partial outcome, as always).
    """

    __slots__ = ("_cancel", "_clock", "_deadline", "timed_out")

    def __init__(
        self,
        cancel: Optional[object],
        clock: Callable[[], float],
        timeout_seconds: float,
    ) -> None:
        self._cancel = cancel
        self._clock = clock
        self._deadline = clock() + timeout_seconds
        self.timed_out = False

    def is_set(self) -> bool:
        if self._cancel is not None and self._cancel.is_set():
            return True
        if self._clock() >= self._deadline:
            self.timed_out = True
            return True
        return False


def _drain(gen, sleep: Callable[[float], None]):
    """Run an attempt generator to completion synchronously.

    The generator yields optional sleep hints (backoff delays, hang
    polls); the sync drivers honour them with an injectable ``sleep``,
    the async driver awaits them instead (see ``_drive_shards_async``).
    """
    while True:
        try:
            hint = next(gen)
        except StopIteration as stop:
            return stop.value
        if hint:
            sleep(hint)


def _run_attempt(
    left,
    right,
    attribute: JoinAttribute,
    config: RunConfig,
    shard_id: int,
    attempt: int,
    shard_bus: Optional[EventBus],
    cancel: Optional[object],
    timeout_seconds: Optional[float],
    fault: Optional[FaultSpec],
    clock: Callable[[], float],
    batch_cap: Optional[int],
) -> "Generator":
    """Drive one supervised shard attempt; the single implementation
    behind every backend (and the process-pool worker).

    A generator that yields ``Optional[float]`` sleep hints between
    engine batches — ``None`` for "just yield control" (async
    interleaving), a positive number for "wait this long" (hang polls).
    Returns the attempt's :class:`AdaptiveJoinResult` (possibly a
    cancelled partial, when the *caller's* token tripped) or raises:

    * :class:`ShardTimeoutError` when the attempt's deadline trips,
    * :class:`ShardExecutionError` wrapping anything the session (or an
      injected fault) raises, with shard id / attempt / elapsed batches
      attached and ``__cause__`` set to the original error.
    """
    token: Optional[object] = cancel
    if timeout_seconds is not None:
        token = _AttemptDeadline(cancel, clock, timeout_seconds)
    batches = 0
    try:
        session = JoinSession(left, right, attribute, config, bus=shard_bus)
        cap = batch_cap or _SUPERVISED_BATCH
        hang_now = fault is not None and fault.kind == "hang" and fault.after_batches == 0
        if fault is not None and fault.kind == "fail" and fault.after_batches == 0:
            raise InjectedFaultError(
                f"injected shard failure: shard {shard_id} attempt {attempt}"
            )
        if not hang_now:
            for _ in session.run_batches(max_batch=cap, cancel=token):
                batches += 1
                if fault is not None and batches >= fault.after_batches:
                    if fault.kind == "fail":
                        raise InjectedFaultError(
                            f"injected shard failure: shard {shard_id} "
                            f"attempt {attempt} after {batches} batch(es)"
                        )
                    hang_now = True
                    break
                yield None
        if hang_now:
            # A cooperative hang: the shard makes no progress but polls
            # its token, so a per-shard timeout (or the caller's cancel)
            # releases it.  With neither, it hangs for real — which is
            # exactly the failure mode being simulated.
            while token is None or not token.is_set():
                yield _HANG_POLL_SECONDS
            if isinstance(token, _AttemptDeadline) and token.timed_out:
                raise ShardTimeoutError(
                    shard_id,
                    attempt,
                    batches,
                    timeout_seconds,
                    message=(
                        f"injected hang; exceeded the per-shard timeout of "
                        f"{timeout_seconds}s"
                    ),
                )
            session.mark_cancelled()
            return session.result()
        result = session.result()
        if (
            result.cancelled
            and isinstance(token, _AttemptDeadline)
            and token.timed_out
        ):
            raise ShardTimeoutError(shard_id, attempt, batches, timeout_seconds)
        return result
    except ShardExecutionError:
        raise
    except Exception as error:
        wrapped = ShardExecutionError(
            shard_id, attempt, batches, f"{type(error).__name__}: {error}"
        )
        raise wrapped from error


class FailureContext:
    """Applies one run's failure policy + fault plan to every shard.

    Constructed per :meth:`ParallelExecutor.run` and handed to the
    backend, which routes each shard through :meth:`run_shard` (sync
    backends) or :meth:`drive_shard` (the async driver; also used by the
    process backend's coordinator for retry bookkeeping).  The context
    owns the attempt loop — retry with deterministic backoff, degrade
    bookkeeping, lifecycle events — so all four backends share one
    implementation of the failure semantics.

    ``clock`` and ``sleep`` are injectable, so retry backoff and timeout
    behaviour are deterministic under test.  Thread-safe: the failure
    record map is the only shared mutable state and is lock-protected.
    """

    def __init__(
        self,
        plan: ShardPlan,
        config: RunConfig,
        bus: Optional["AggregatedEventBus"],
        policy: FailurePolicy,
        faults: Optional[FaultPlan] = None,
        clock: Callable[[], float] = time.perf_counter,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.plan = plan
        self.config = config
        self.bus = bus
        self.policy = policy
        self.faults = faults if faults else None
        self.clock = clock
        self.sleep = sleep
        self._failures: Dict[int, ShardFailure] = {}
        self._lock = threading.Lock()

    @classmethod
    def default(
        cls,
        plan: ShardPlan,
        config: RunConfig,
        bus: Optional["AggregatedEventBus"],
    ) -> "FailureContext":
        """The fail-fast, no-faults context (backends called directly)."""
        return cls(plan, config, bus, create_failure_policy(None))

    # -- the attempt loop ----------------------------------------------

    def drive_shard(
        self,
        shard_id: int,
        cancel: Optional[object] = None,
        batch_cap: Optional[int] = None,
    ):
        """Generator running one shard to a final outcome under the policy.

        Yields ``Optional[float]`` sleep hints (batch boundaries, retry
        backoff, hang polls); returns the shard's :class:`ShardOutcome`,
        or ``None`` when the shard was skipped after cancellation or
        dropped by a degrade policy.  Raises :class:`ShardExecutionError`
        only when the policy says the failure is fatal.
        """
        attempt = 1
        while True:
            fault = (
                self.faults.action_for(shard_id, attempt) if self.faults else None
            )
            timeout = self.policy.shard_timeout_seconds
            started = self.clock()
            try:
                if fault is None and timeout is None and batch_cap is None:
                    # Unsupervised: byte-for-byte the pre-fault-tolerance
                    # path (and the seam tests monkeypatch).
                    outcome = _run_shard_inline(
                        self.plan, self.config, shard_id, self.bus, cancel
                    )
                else:
                    left, right = self.plan.shard_streams(shard_id)
                    shard_bus: Optional[EventBus] = None
                    if self.bus is not None:
                        shard_bus = EventBus()
                        self.bus.forward_from(shard_id, shard_bus)
                    result = yield from _run_attempt(
                        left,
                        right,
                        self.plan.attribute,
                        self.config,
                        shard_id,
                        attempt,
                        shard_bus,
                        cancel,
                        timeout,
                        fault,
                        self.clock,
                        batch_cap,
                    )
                    outcome = ShardOutcome(
                        shard_id=shard_id,
                        result=result,
                        left_origins=self.plan.left_shards[shard_id].origins,
                        right_origins=self.plan.right_shards[shard_id].origins,
                        wall_seconds=self.clock() - started,
                    )
                return None if _never_ran(outcome) else outcome
            except Exception as error:  # noqa: BLE001 - policy decides below
                if isinstance(error, ShardExecutionError):
                    wrapped = error
                else:
                    wrapped = ShardExecutionError(
                        shard_id, attempt, 0, f"{type(error).__name__}: {error}"
                    )
                    wrapped.__cause__ = error
                action = self.handle_failure(shard_id, attempt, wrapped, cancel)
                if action == "retry":
                    delay = self.note_retry(shard_id, attempt)
                    if delay > 0:
                        yield delay
                    attempt += 1
                    continue
                if action == "drop":
                    self.record_failure(shard_id, attempt, wrapped)
                    return None
                raise wrapped from wrapped.__cause__

    def run_shard(
        self, shard_id: int, cancel: Optional[object] = None
    ) -> Optional[ShardOutcome]:
        """Synchronous :meth:`drive_shard` (serial and thread backends)."""
        return _drain(self.drive_shard(shard_id, cancel), self.sleep)

    # -- policy bookkeeping (shared with the process coordinator) --------

    def handle_failure(
        self,
        shard_id: int,
        attempt: int,
        error: ShardExecutionError,
        cancel: Optional[object],
    ) -> str:
        """Publish ``ShardFailed`` and decide ``retry`` / ``drop`` / ``raise``."""
        will_retry = self.policy.should_retry(attempt) and not _cancelled(cancel)
        if self.bus is not None:
            self.bus.publish(ShardFailed(shard_id, attempt, error, will_retry))
        if will_retry:
            return "retry"
        if self.policy.drops_failed_shards:
            return "drop"
        return "raise"

    def note_retry(self, shard_id: int, attempt: int) -> float:
        """Publish ``ShardRetrying`` and return the backoff delay."""
        delay = self.policy.backoff_delay(attempt)
        if self.bus is not None:
            self.bus.publish(ShardRetrying(shard_id, attempt + 1, delay))
        return delay

    def record_failure(
        self, shard_id: int, attempts: int, error: ShardExecutionError
    ) -> None:
        """Record a dropped shard for the merged result's honest accounting."""
        cause = error.__cause__
        cause_name = type(cause).__name__ if cause is not None else ""
        if not cause_name or cause_name == "_RemoteTraceback":
            # No cause, or the process boundary replaced it with the
            # pool's traceback shim.  The wrapped message leads with the
            # original type's name ("ValueError: ...") — recover it, and
            # fall back to the wrapper's own type otherwise.
            head = (error.message or "").split(":", 1)[0].strip()
            cause_name = head if head.isidentifier() else type(error).__name__
        record = ShardFailure(
            shard_id=shard_id,
            attempts=attempts,
            error_type=cause_name,
            # The cause text alone — shard id / attempt / batches already
            # have their own fields, so the row stays non-redundant.
            message=error.message or str(error),
            batches=error.batches,
            timed_out=isinstance(error, ShardTimeoutError),
            # len(shard input), not len(.records): under the zero-copy
            # handoff the record list is decoded lazily, and accounting a
            # failure must not force a full shard decode.
            left_records=len(self.plan.left_shards[shard_id]),
            right_records=len(self.plan.right_shards[shard_id]),
        )
        with self._lock:
            self._failures[shard_id] = record

    def failure_records(self) -> Tuple[ShardFailure, ...]:
        """Dropped-shard records, in shard-id order."""
        with self._lock:
            return tuple(
                self._failures[shard_id] for shard_id in sorted(self._failures)
            )


@dataclass
class _ShardTask:
    """The picklable payload a process-backend worker rebuilds a shard from.

    ``attempt`` / ``timeout_seconds`` / ``faults`` extend the payload
    with the failure-semantics contract: retries are coordinated in the
    parent (a retried shard is simply resubmitted with ``attempt + 1``),
    while the per-attempt timeout and any injected faults are enforced
    *inside* the worker — the only place that can see the attempt's
    engine-batch boundaries.
    """

    shard_id: int
    attribute: JoinAttribute
    config: RunConfig
    left: "ShardInputPayload"
    right: "ShardInputPayload"
    attempt: int = 1
    timeout_seconds: Optional[float] = None
    faults: Optional[FaultPlan] = None


@dataclass
class ShardInputPayload:
    """One side's shard records, shipped to a worker process."""

    schema: Schema
    records: List[Record]
    name: str


def _run_shard_task(task: _ShardTask) -> Tuple[int, AdaptiveJoinResult, float]:
    """Process-pool worker: run one shard *attempt* from its pickled task.

    Timeouts and injected faults are enforced here, in-worker, through
    the same :func:`_run_attempt` runner the in-process backends use —
    real wall clock, since an injectable clock cannot cross the process
    boundary.  Failures come back as picklable
    :class:`ShardExecutionError`\\ s; the coordinator applies the policy
    (retry = resubmit, degrade = record, fail-fast = raise).
    """
    from repro.engine.streams import ListStream

    started = time.perf_counter()
    left = ListStream(task.left.schema, task.left.records, name=task.left.name)
    right = ListStream(task.right.schema, task.right.records, name=task.right.name)
    fault = (
        task.faults.action_for(task.shard_id, task.attempt) if task.faults else None
    )
    if fault is None and task.timeout_seconds is None:
        try:
            session = JoinSession(left, right, task.attribute, task.config)
            result = session.run()
        except Exception as error:
            raise ShardExecutionError(
                task.shard_id, task.attempt, 0, f"{type(error).__name__}: {error}"
            ) from error
    else:
        result = _drain(
            _run_attempt(
                left,
                right,
                task.attribute,
                task.config,
                task.shard_id,
                task.attempt,
                None,
                None,
                task.timeout_seconds,
                fault,
                time.perf_counter,
                None,
            ),
            time.sleep,
        )
    return task.shard_id, result, time.perf_counter() - started


@dataclass
class _BlockShardTask:
    """The zero-copy counterpart of :class:`_ShardTask`.

    Ships no records at all: both sides' payloads live in shared-memory
    segments published once per run by the coordinator
    (:meth:`~repro.runtime.sharding.ShardPlan.publish_blocks`), and the
    task carries only the two :class:`~repro.runtime.handoff.BlockDescriptor`
    handles (plus this shard's stream names).  A task therefore pickles to
    O(descriptor) bytes regardless of shard size or replication factor —
    and since retries are coordinator-side resubmissions of a fresh task,
    *retry* payloads are O(descriptor) too, where the classic path
    re-pickled the entire shard per attempt.
    """

    shard_id: int
    attribute: JoinAttribute
    config: RunConfig
    left: BlockDescriptor
    right: BlockDescriptor
    left_name: str
    right_name: str
    attempt: int = 1
    timeout_seconds: Optional[float] = None
    faults: Optional[FaultPlan] = None


def _run_block_shard_task(
    task: _BlockShardTask,
) -> Tuple[int, AdaptiveJoinResult, float]:
    """Process-pool worker for the shared-memory handoff.

    Attaches both side blocks, streams the shard's rows as zero-copy
    views (:class:`~repro.engine.streams.RowSliceStream` over the mapped
    buffers — cell values are materialised lazily as the join consumes
    them) and runs the identical attempt machinery as
    :func:`_run_shard_task`.  The attachments are closed before
    returning on every path; the result carries only decoded records, so
    nothing in it references the segment once the worker is done.
    """
    from repro.engine.streams import RowSliceStream

    started = time.perf_counter()
    left_attached = task.left.attach()
    try:
        right_attached = task.right.attach()
        try:
            left = RowSliceStream(
                left_attached.block,
                left_attached.shard_rows(task.shard_id),
                name=task.left_name,
            )
            right = RowSliceStream(
                right_attached.block,
                right_attached.shard_rows(task.shard_id),
                name=task.right_name,
            )
            fault = (
                task.faults.action_for(task.shard_id, task.attempt)
                if task.faults
                else None
            )
            if fault is None and task.timeout_seconds is None:
                try:
                    session = JoinSession(left, right, task.attribute, task.config)
                    result = session.run()
                except Exception as error:
                    raise ShardExecutionError(
                        task.shard_id,
                        task.attempt,
                        0,
                        f"{type(error).__name__}: {error}",
                    ) from error
            else:
                result = _drain(
                    _run_attempt(
                        left,
                        right,
                        task.attribute,
                        task.config,
                        task.shard_id,
                        task.attempt,
                        None,
                        None,
                        task.timeout_seconds,
                        fault,
                        time.perf_counter,
                        None,
                    ),
                    time.sleep,
                )
        finally:
            right_attached.close()
    finally:
        left_attached.close()
    return task.shard_id, result, time.perf_counter() - started


def _ensure_picklable(obj: object, what: str) -> None:
    """Raise a clear error when ``obj`` cannot cross a process boundary."""
    try:
        pickle.dumps(obj)
    except Exception as error:
        raise ValueError(
            f"the process backend ships each shard to a worker process, but "
            f"{what} is not picklable: {error}"
        ) from error


def _raise_first_failure(futures_to_shards: Dict, done, pending) -> None:
    """Cancel outstanding shard work and re-raise the winning shard error.

    ``wait(..., FIRST_EXCEPTION)`` returns as soon as any shard fails;
    without this cleanup the naive "collect every result" loop would
    block on still-running futures (and keep scheduling queued ones)
    before surfacing the error.  The pin is *lowest failed shard id
    wins*, deterministically: queued shards are cancelled, but an
    in-flight shard with a lower id than the best failure observed so
    far may be about to fail too and take the pin — those (and only
    those; higher-id stragglers are never waited on) are awaited before
    raising.  No-op when nothing failed.
    """
    failures = sorted(
        (
            (futures_to_shards[future], future.exception())
            for future in done
            if future.exception() is not None
        ),
        key=lambda item: item[0],
    )
    if not failures:
        return
    best_id, best_error = failures[0]
    still_running = [future for future in pending if not future.cancel()]
    lower = {
        future
        for future in still_running
        if futures_to_shards[future] < best_id
    }
    while lower:
        finished, _ = wait(lower, return_when=FIRST_COMPLETED)
        for future in finished:
            error = future.exception()
            shard_id = futures_to_shards[future]
            if error is not None and shard_id < best_id:
                best_id, best_error = shard_id, error
        lower = {
            future
            for future in lower - finished
            if futures_to_shards[future] < best_id
        }
    raise best_error


# -- the backends -----------------------------------------------------------------------


@register_backend("serial")
def _serial_backend(
    plan: ShardPlan,
    config: RunConfig,
    bus: Optional[AggregatedEventBus],
    max_workers: Optional[int],
    cancel: Optional[object] = None,
    ctx: Optional[FailureContext] = None,
) -> List[ShardOutcome]:
    """Shards run one after the other, in shard-id order (the oracle).

    A set cancel token stops the running shard at its next engine-batch
    boundary (partial outcome kept) and skips every shard that has not
    started; completed shards are returned as-is.
    """
    ctx = ctx or FailureContext.default(plan, config, bus)
    outcomes = []
    for shard_id in range(plan.shard_count):
        if _cancelled(cancel):
            break
        outcome = ctx.run_shard(shard_id, cancel)
        if outcome is None:
            if _cancelled(cancel):
                # The token was set between the loop check and the
                # session's first step (another thread cancelled):
                # skipped, not run.
                break
            continue  # dropped by the degrade policy; recorded on ctx
        if bus is not None:
            bus.publish(
                ShardCompleted(shard_id, outcome.result, outcome.wall_seconds)
            )
        outcomes.append(outcome)
    return outcomes


@register_backend("thread")
def _thread_backend(
    plan: ShardPlan,
    config: RunConfig,
    bus: Optional[AggregatedEventBus],
    max_workers: Optional[int],
    cancel: Optional[object] = None,
    ctx: Optional[FailureContext] = None,
) -> List[ShardOutcome]:
    """One thread per shard (capped at ``max_workers``).

    A shard failure cancels every not-yet-started shard and re-raises
    the lowest-shard-id fatal error — in-flight threads cannot be
    interrupted; only those on *lower* shard ids than the best failure
    (they could take the pin) are awaited, higher-id stragglers finish
    in the background and the caller is never blocked on them.

    A set cancel token drains quickly instead: in-flight sessions stop
    at their next engine-batch boundary (the token is threaded into
    every session loop), queued shards observe it before their first
    step and are dropped, and the backend returns the shards that did
    real work — every future completed, none dangling.
    """
    ctx = ctx or FailureContext.default(plan, config, bus)
    workers = min(max_workers or plan.shard_count, plan.shard_count)
    outcomes: List[ShardOutcome] = []
    pool = ThreadPoolExecutor(max_workers=workers)
    failed = True
    try:
        futures = {
            pool.submit(ctx.run_shard, shard_id, cancel): shard_id
            for shard_id in range(plan.shard_count)
        }
        done, pending = wait(futures, return_when=FIRST_EXCEPTION)
        _raise_first_failure(futures, done, pending)
        failed = False
        for future in futures:
            outcome = future.result()
            if outcome is None:
                # Skipped after cancellation or dropped by the degrade
                # policy — either way, not a real shard run.
                continue
            if bus is not None:
                bus.publish(
                    ShardCompleted(
                        outcome.shard_id, outcome.result, outcome.wall_seconds
                    )
                )
            outcomes.append(outcome)
    finally:
        # Success: everything is done, the shutdown is instant.  Failure:
        # don't wait for stragglers, drop whatever is still queued.
        pool.shutdown(wait=not failed, cancel_futures=True)
    return outcomes


@register_backend("process")
def _process_backend(
    plan: ShardPlan,
    config: RunConfig,
    bus: Optional[AggregatedEventBus],
    max_workers: Optional[int],
    cancel: Optional[object] = None,
    ctx: Optional[FailureContext] = None,
) -> List[ShardOutcome]:
    """One worker process per shard (capped at ``max_workers``).

    Under the zero-copy handoff (``plan.handoff == "shared-memory"``)
    both side blocks are published to shared memory once per run and
    every task — first attempts and retries alike — ships only a
    :class:`_BlockShardTask` of O(descriptor) bytes; the segments are
    closed and unlinked in a ``finally`` on every exit path.  Under the
    pickle handoff each task carries its shard's full record payload and
    requires a picklable :class:`RunConfig` and picklable shard records
    (checked up front).  Shard events are not streamed back — only
    :class:`ShardCompleted` is published per shard, after the fact.  A
    shard failure cancels every still-queued shard task and re-raises
    the lowest-shard-id fatal error, exactly like the thread backend
    (in-flight workers on lower shard ids are awaited for the pin).

    Failure policies are applied by the coordinator: a worker runs *one*
    attempt (enforcing the per-attempt timeout and any injected faults
    in-process) and a retried shard is resubmitted to the pool with an
    incremented attempt number — replayable shard inputs make the
    resubmission bit-identical to a first run.

    Cancellation is coarse here: the token cannot cross the process
    boundary, so it is checked between shard completions — queued shard
    tasks are cancelled, in-flight workers run their shard to the end.
    """
    ctx = ctx or FailureContext.default(plan, config, bus)
    _ensure_picklable(config, "the run configuration (RunConfig)")

    # Zero-copy handoff: publish both side blocks into shared memory once
    # for this run and ship only descriptors.  A platform that refuses the
    # allocation degrades to the classic pickle shipping — the plan's
    # shard inputs can always materialise their records.
    published: Optional[PublishedPlanBlocks] = None
    if plan.handoff == "shared-memory":
        try:
            published = plan.publish_blocks()
        except OSError:
            published = None

    try:
        if published is not None:
            left_descriptor, right_descriptor = published.descriptors

            def make_task(shard_id: int, attempt: int) -> _BlockShardTask:
                return _BlockShardTask(
                    shard_id=shard_id,
                    attribute=plan.attribute,
                    config=config,
                    left=left_descriptor,
                    right=right_descriptor,
                    left_name=plan.left_shards[shard_id].name,
                    right_name=plan.right_shards[shard_id].name,
                    attempt=attempt,
                    timeout_seconds=ctx.policy.shard_timeout_seconds,
                    faults=ctx.faults.for_shard(shard_id) if ctx.faults else None,
                )

            run_task = _run_block_shard_task
        else:

            def make_task(shard_id: int, attempt: int) -> _ShardTask:
                left_input = plan.left_shards[shard_id]
                right_input = plan.right_shards[shard_id]
                return _ShardTask(
                    shard_id=shard_id,
                    attribute=plan.attribute,
                    config=config,
                    left=ShardInputPayload(
                        left_input.schema, left_input.records, left_input.name
                    ),
                    right=ShardInputPayload(
                        right_input.schema, right_input.records, right_input.name
                    ),
                    attempt=attempt,
                    timeout_seconds=ctx.policy.shard_timeout_seconds,
                    faults=ctx.faults.for_shard(shard_id) if ctx.faults else None,
                )

            run_task = _run_shard_task

        tasks = []
        for shard_id in range(plan.shard_count):
            task = make_task(shard_id, 1)
            if published is None:
                _ensure_picklable(task, f"shard {shard_id}'s input records")
            tasks.append(task)
        workers = min(max_workers or plan.shard_count, plan.shard_count)
        pool = ProcessPoolExecutor(max_workers=workers)
    except BaseException:
        if published is not None:
            published.release()
        raise
    failed = True
    completed: Dict[int, Tuple[AdaptiveJoinResult, float]] = {}
    next_publish = 0
    try:
        future_tasks = {
            pool.submit(run_task, task): task for task in tasks
        }
        pending = set(future_tasks)
        while pending:
            if _cancelled(cancel):
                # Queued tasks are dropped; in-flight workers finish their
                # shard (the token cannot reach them) and are collected.
                pending = {
                    future for future in pending if not future.cancel()
                }
                if not pending:
                    break
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            # Apply the failure policy, lowest shard id first so the
            # raised (or recorded) error is deterministic in a race.
            failures = sorted(
                (
                    (future_tasks[future].shard_id, future)
                    for future in done
                    if future.exception() is not None
                ),
                key=lambda item: item[0],
            )
            for shard_id, future in failures:
                task = future_tasks[future]
                error = future.exception()
                if isinstance(error, ShardExecutionError):
                    wrapped = error
                else:
                    # e.g. BrokenProcessPool, or an unpicklable worker
                    # error surfaced by the pool machinery.
                    wrapped = ShardExecutionError(
                        shard_id,
                        task.attempt,
                        0,
                        f"{type(error).__name__}: {error}",
                    )
                    wrapped.__cause__ = error
                action = ctx.handle_failure(shard_id, task.attempt, wrapped, cancel)
                if action == "retry":
                    delay = ctx.note_retry(shard_id, task.attempt)
                    if delay > 0:
                        ctx.sleep(delay)
                    # Retry resubmission goes through the same task
                    # factory: under the zero-copy handoff that is a
                    # fresh descriptor-only task — the records stay in
                    # the already-published segments.
                    retry_task = make_task(shard_id, task.attempt + 1)
                    retry_future = pool.submit(run_task, retry_task)
                    future_tasks[retry_future] = retry_task
                    pending.add(retry_future)
                elif action == "drop":
                    ctx.record_failure(shard_id, task.attempt, wrapped)
                else:
                    # Fail-fast: the pin is "lowest failed shard id
                    # wins", deterministically.  Queued tasks are
                    # cancelled, but an in-flight worker on a *lower*
                    # shard id may be about to fail fatally too and take
                    # the pin — await those (and only those) before
                    # raising.  A lower-id failure that the policy would
                    # still retry is not fatal and cannot take the pin.
                    still_running = [
                        future for future in pending if not future.cancel()
                    ]
                    lower = {
                        future
                        for future in still_running
                        if future_tasks[future].shard_id < wrapped.shard_id
                    }
                    while lower:
                        finished, _ = wait(lower, return_when=FIRST_COMPLETED)
                        for future in finished:
                            error = future.exception()
                            low_task = future_tasks[future]
                            if (
                                error is None
                                or low_task.shard_id >= wrapped.shard_id
                                or ctx.policy.should_retry(low_task.attempt)
                            ):
                                continue
                            if isinstance(error, ShardExecutionError):
                                wrapped = error
                            else:
                                wrapped = ShardExecutionError(
                                    low_task.shard_id,
                                    low_task.attempt,
                                    0,
                                    f"{type(error).__name__}: {error}",
                                )
                                wrapped.__cause__ = error
                        lower = {
                            future
                            for future in lower - finished
                            if future_tasks[future].shard_id < wrapped.shard_id
                        }
                    raise wrapped
            for future in done:
                if future.exception() is not None:
                    continue
                shard_id, result, wall_seconds = future.result()
                completed[shard_id] = (result, wall_seconds)
            # Stream completions progressively, in shard-id order: shard
            # k's event goes out as soon as shards 0..k have finished,
            # without waiting for the whole run (a live progress feed).
            # Degraded runs flush any events stuck behind a dropped
            # shard's gap after the loop, like cancellation does.
            if bus is not None:
                while next_publish in completed:
                    result, wall_seconds = completed[next_publish]
                    bus.publish(
                        ShardCompleted(next_publish, result, wall_seconds)
                    )
                    next_publish += 1
        failed = False
        # Cancellation (a cancelled queued shard) or a degrade policy (a
        # dropped shard) can leave a gap in the shard-id sequence; flush
        # the completions stuck behind it.
        if bus is not None:
            for shard_id in sorted(completed):
                if shard_id >= next_publish:
                    result, wall_seconds = completed[shard_id]
                    bus.publish(ShardCompleted(shard_id, result, wall_seconds))
    finally:
        pool.shutdown(wait=not failed, cancel_futures=True)
        # Segments live exactly one run: close + unlink on success,
        # failure and cancellation alike.  Workers attach read-only and
        # close before returning, so nothing dangles.
        if published is not None:
            published.release()
    return [
        ShardOutcome(
            shard_id=shard_id,
            result=result,
            left_origins=plan.left_shards[shard_id].origins,
            right_origins=plan.right_shards[shard_id].origins,
            wall_seconds=wall_seconds,
        )
        for shard_id, (result, wall_seconds) in sorted(completed.items())
    ]


async def _drive_shards_async(
    plan: ShardPlan,
    config: RunConfig,
    bus: Optional[AggregatedEventBus],
    max_workers: Optional[int],
    cancel: Optional[object],
    ctx: FailureContext,
) -> List[ShardOutcome]:
    """Interleave every shard session cooperatively on the running loop.

    Each shard task advances its session :data:`_ASYNC_BATCH` engine
    steps at a time and awaits between batches, handing the loop to the
    other shards (and to any consumer coroutines sharing it).  Scheduling
    is deterministic — one thread, round-robin task order — so the merged
    result is bit-identical to the serial backend's.  ``ShardCompleted``
    events stream head-of-line in shard-id order, like the process
    backend: shard *k* is announced as soon as shards ``0..k`` are done.

    Failure handling drives :meth:`FailureContext.drive_shard`, whose
    sleep hints (retry backoff, hang polls) become ``await
    asyncio.sleep(...)`` — a retrying or hung-but-supervised shard never
    blocks the loop, so the other shards keep interleaving through it.
    """
    workers = min(max_workers or plan.shard_count, plan.shard_count)
    semaphore = asyncio.Semaphore(workers)
    #: shard id → outcome, or None for a shard skipped after cancellation
    #: (or dropped by a degrade policy).
    finished: Dict[int, Optional[ShardOutcome]] = {}
    next_publish = 0

    def publish_ready() -> None:
        nonlocal next_publish
        while next_publish in finished:
            outcome = finished[next_publish]
            if bus is not None and outcome is not None:
                bus.publish(
                    ShardCompleted(
                        outcome.shard_id, outcome.result, outcome.wall_seconds
                    )
                )
            next_publish += 1

    async def run_shard(shard_id: int) -> None:
        async with semaphore:
            if _cancelled(cancel):
                finished[shard_id] = None  # skipped: cancel between shards
                publish_ready()
                return
            gen = ctx.drive_shard(shard_id, cancel, batch_cap=_ASYNC_BATCH)
            while True:
                try:
                    hint = next(gen)
                except StopIteration as stop:
                    outcome = stop.value
                    break
                # hand the loop to the other shards (and honour any
                # backoff / hang-poll delay without blocking it)
                await asyncio.sleep(hint if hint else 0)
            finished[shard_id] = outcome
            publish_ready()

    tasks = [
        asyncio.ensure_future(run_shard(shard_id))
        for shard_id in range(plan.shard_count)
    ]
    try:
        await asyncio.gather(*tasks)
    except BaseException:
        # First failure wins (deterministic: one thread, ordered tasks);
        # nothing may keep running behind the caller's back.
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        raise
    return [
        outcome
        for shard_id, outcome in sorted(finished.items())
        if outcome is not None
    ]


@register_backend("async")
def _async_backend(
    plan: ShardPlan,
    config: RunConfig,
    bus: Optional[AggregatedEventBus],
    max_workers: Optional[int],
    cancel: Optional[object] = None,
    ctx: Optional[FailureContext] = None,
) -> List[ShardOutcome]:
    """All shards interleave cooperatively on one asyncio event loop.

    The fourth backend: single-threaded like ``serial`` (and therefore
    producing the identical merged result), but *concurrent* — every
    shard session advances in bounded batches over its lazy per-shard
    streams and yields the loop between batches, so long shards overlap
    short ones, live observers tick throughout the run, and a cancel
    token takes effect at the next batch boundary of every running shard
    (partial results), not just between shards.  No thread pool, no
    pickling requirement.

    The backend owns its event loop (``asyncio.run``); to embed it in an
    already-running loop, dispatch the whole ``run_sharded`` call via
    ``asyncio.to_thread`` — or drive sessions directly with
    :meth:`~repro.runtime.session.JoinSession.run_batches`.
    """
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        pass
    else:
        raise RuntimeError(
            "the async backend owns its event loop and cannot be started "
            "from inside a running one; dispatch run_sharded via "
            "asyncio.to_thread(...) instead"
        )
    ctx = ctx or FailureContext.default(plan, config, bus)
    return asyncio.run(
        _drive_shards_async(plan, config, bus, max_workers, cancel, ctx)
    )


# -- the executor -----------------------------------------------------------------------


class ParallelExecutor:
    """Runs every shard of a plan through its own session and merges.

    Parameters
    ----------
    backend:
        A registered backend name (see :func:`available_backends`).
    max_workers:
        Optional cap on concurrent workers (defaults to the shard count;
        ignored by the serial backend).
    failure_policy:
        What to do when a shard fails: a registered policy name
        (``"fail-fast"`` — the default — ``"retry"``, ``"degrade"``) or
        a constructed :class:`~repro.runtime.failures.FailurePolicy`
        carrying retry/backoff/timeout settings.
    faults:
        Optional :class:`~repro.runtime.faults.FaultPlan` injecting
        deterministic failures (tests, bench, the CI smoke).
    clock / sleep:
        Injectable time sources for the retry backoff and per-shard
        timeouts (defaults: ``time.perf_counter`` / ``time.sleep``);
        process-backend *workers* always use the real clock, since an
        injected one cannot cross the process boundary.
    """

    def __init__(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        failure_policy: Union[str, FailurePolicy, None] = None,
        faults: Optional[FaultPlan] = None,
        clock: Optional[Callable[[], float]] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown execution backend {backend!r}; registered: "
                f"{available_backends()}"
            )
        self.backend = backend
        self.max_workers = max_workers
        self.failure_policy = create_failure_policy(failure_policy)
        self.faults = faults if faults else None
        self._clock = clock or time.perf_counter
        self._sleep = sleep or time.sleep

    def run(
        self,
        plan: ShardPlan,
        config: Optional[RunConfig] = None,
        bus: Optional[AggregatedEventBus] = None,
        cancel: Optional[object] = None,
    ) -> ShardedJoinResult:
        """Execute every shard of ``plan`` under ``config`` and merge.

        Each shard gets a fresh :class:`JoinSession` built from the same
        (immutable) config: policies are instantiated per shard from
        ``config.policy``, every shard adapts independently, and relative
        budgets (``budget_fraction``) resolve against the shard's own
        input sizes.  An explicit ``config.parent_size`` is taken as-is by
        every shard; leave it unset to let each shard infer its own
        partition's parent size (the per-shard analog of ``|R|``).

        ``cancel`` (an ``is_set()``-style token, e.g. ``threading.Event``)
        requests a mid-run stop; the merged result then contains the
        shards completed before the token was observed and carries
        ``cancelled=True``.
        """
        config = config or RunConfig()
        # A plan built without the config in hand (or with a hand-built
        # partitioner) must still agree with the run it executes under —
        # the gram partitioner's recall guarantee depends on matching
        # tokenisation, so a mismatch is an error, not a silent loss.
        plan.partitioner.check_config(config)
        ctx = FailureContext(
            plan,
            config,
            bus,
            self.failure_policy,
            faults=self.faults,
            clock=self._clock,
            sleep=self._sleep,
        )
        outcomes = _BACKENDS[self.backend](
            plan, config, bus, self.max_workers, cancel, ctx
        )
        return ShardedJoinResult(
            shards=tuple(outcomes),
            backend=self.backend,
            partitioner=plan.partitioner.name or type(plan.partitioner).__name__,
            left_input_size=plan.left_input_size,
            right_input_size=plan.right_input_size,
            cancelled=_cancelled(cancel)
            or any(outcome.result.cancelled for outcome in outcomes),
            failed_shards=ctx.failure_records(),
            handoff=plan.handoff,
        )


def estimate_shard_payload_bytes(
    plan: ShardPlan, config: Optional[RunConfig] = None, attempt: int = 1
) -> List[int]:
    """Pickled bytes the process backend ships per shard task.

    Builds, per shard, exactly the task object the backend's task factory
    would submit for ``attempt`` under the plan's resolved handoff —
    a :class:`_BlockShardTask` with placeholder segment names for
    shared-memory plans (no segment is allocated; the name does not
    change the size class), a full-payload :class:`_ShardTask` for pickle
    plans — and measures ``len(pickle.dumps(task))``.  The bench harness
    records these as ``payload_bytes_per_shard``, and the regression test
    for descriptor-only retries is built on the same measurement.
    """
    config = config or RunConfig()
    descriptors = plan.block_descriptors()
    sizes: List[int] = []
    for shard_id in range(plan.shard_count):
        if descriptors is not None:
            task: object = _BlockShardTask(
                shard_id=shard_id,
                attribute=plan.attribute,
                config=config,
                left=descriptors[0],
                right=descriptors[1],
                left_name=plan.left_shards[shard_id].name,
                right_name=plan.right_shards[shard_id].name,
                attempt=attempt,
            )
        else:
            left_input = plan.left_shards[shard_id]
            right_input = plan.right_shards[shard_id]
            task = _ShardTask(
                shard_id=shard_id,
                attribute=plan.attribute,
                config=config,
                left=ShardInputPayload(
                    left_input.schema, left_input.records, left_input.name
                ),
                right=ShardInputPayload(
                    right_input.schema, right_input.records, right_input.name
                ),
                attempt=attempt,
            )
        sizes.append(len(pickle.dumps(task)))
    return sizes


def run_sharded(
    left: InputLike,
    right: InputLike,
    attribute: Union[str, JoinAttribute],
    config: Optional[RunConfig] = None,
    shards: int = 1,
    partitioner: Union[str, Partitioner] = "hash",
    backend: str = "serial",
    max_workers: Optional[int] = None,
    bus: Optional[AggregatedEventBus] = None,
    cancel: Optional[object] = None,
    failure_policy: Union[str, FailurePolicy, None] = None,
    faults: Optional[FaultPlan] = None,
    handoff: str = "auto",
) -> ShardedJoinResult:
    """One-call sharded join: partition, execute on a backend, merge.

    The convenience entry point ``link_tables``, the bench harness and the
    CLI build on; equivalent to building a :class:`ShardPlan` and handing
    it to a :class:`ParallelExecutor` by hand.  The config is forwarded
    to the plan build, so a partitioner given *by name* is constructed
    against it (:meth:`Partitioner.from_config`) — which is what keeps
    the ``gram`` partitioner's tokenisation (``q``, gram padding) in
    lock-step with the engine's approximate operator.  ``handoff``
    selects the shard-input representation (see
    :meth:`ShardPlan.build`); the result records what was resolved.
    """
    config = config or RunConfig()
    plan = ShardPlan.build(
        left, right, attribute, shards, partitioner, config=config,
        handoff=handoff,
    )
    executor = ParallelExecutor(
        backend=backend,
        max_workers=max_workers,
        failure_policy=failure_policy,
        faults=faults,
    )
    return executor.run(plan, config, bus=bus, cancel=cancel)
