"""The layered runtime: sessions, switch policies and the event bus.

This package is the composition layer between the switchable join engine
(:mod:`repro.joins`) and every consumer (``AdaptiveJoinProcessor``,
``link_tables``, the bench harness, the CLI):

* :mod:`repro.runtime.config` — :class:`RunConfig`, one frozen dataclass
  describing an execution (thresholds, parent role, budget, engine knobs);
* :mod:`repro.runtime.session` — :class:`JoinSession`, which builds the
  engine + control stack from a config and drives it to completion;
* :mod:`repro.runtime.policy` — the :class:`SwitchPolicy` protocol and the
  ``@register_policy`` registry (``"mar"``, ``"fixed"``,
  ``"budget-greedy"``);
* :mod:`repro.runtime.events` — the :class:`EventBus` the engine and the
  policies publish step / match / switch / transition events onto;
* :mod:`repro.runtime.collectors` — optional ready-made subscribers;
* :mod:`repro.runtime.sharding` — partitioners (``hash`` /
  ``round-robin`` / ``range`` / the gram-replicated ``gram``),
  :class:`ShardPlan` and the mergeable, duplicate-free
  :class:`ShardedJoinResult`;
* :mod:`repro.runtime.parallel` — :class:`ParallelExecutor` with the
  ``serial`` / ``thread`` / ``process`` backends and the
  :class:`AggregatedEventBus` that fans shard events back into one
  observer stream.

Exports are resolved lazily (PEP 562) so low-level modules — e.g.
:mod:`repro.joins.engine`, which publishes onto the bus — can import
``repro.runtime.events`` without dragging the whole session stack (and an
import cycle) in.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - static imports for type checkers
    from repro.runtime.collectors import (
        MatchTap,
        ProgressCollector,
        ProgressSnapshot,
        StateDwellCollector,
        SwitchLog,
        ThroughputCollector,
    )
    from repro.runtime.config import RunConfig, input_size
    from repro.runtime.events import (
        AssessmentEvent,
        EventBus,
        ShardCompleted,
        ShardEvent,
        TransitionEvent,
    )
    from repro.runtime.parallel import (
        AggregatedEventBus,
        ParallelExecutor,
        available_backends,
        register_backend,
        run_sharded,
    )
    from repro.runtime.policy import (
        BudgetGreedyPolicy,
        DeadlinePolicy,
        FixedStatePolicy,
        MarPolicy,
        SwitchPolicy,
        available_policies,
        create_policy,
        register_policy,
    )
    from repro.runtime.session import AdaptiveJoinResult, JoinSession
    from repro.runtime.sharding import (
        GramPartitioner,
        HashPartitioner,
        Partitioner,
        RangePartitioner,
        RoundRobinPartitioner,
        ShardedJoinResult,
        ShardOutcome,
        ShardPlan,
        available_partitioners,
        create_partitioner,
        register_partitioner,
    )

_EXPORTS = {
    "RunConfig": "repro.runtime.config",
    "input_size": "repro.runtime.config",
    "EventBus": "repro.runtime.events",
    "TransitionEvent": "repro.runtime.events",
    "AssessmentEvent": "repro.runtime.events",
    "SwitchPolicy": "repro.runtime.policy",
    "MarPolicy": "repro.runtime.policy",
    "FixedStatePolicy": "repro.runtime.policy",
    "BudgetGreedyPolicy": "repro.runtime.policy",
    "DeadlinePolicy": "repro.runtime.policy",
    "register_policy": "repro.runtime.policy",
    "create_policy": "repro.runtime.policy",
    "available_policies": "repro.runtime.policy",
    "JoinSession": "repro.runtime.session",
    "AdaptiveJoinResult": "repro.runtime.session",
    "MatchTap": "repro.runtime.collectors",
    "SwitchLog": "repro.runtime.collectors",
    "StateDwellCollector": "repro.runtime.collectors",
    "ThroughputCollector": "repro.runtime.collectors",
    "ProgressCollector": "repro.runtime.collectors",
    "ProgressSnapshot": "repro.runtime.collectors",
    "Partitioner": "repro.runtime.sharding",
    "HashPartitioner": "repro.runtime.sharding",
    "RoundRobinPartitioner": "repro.runtime.sharding",
    "RangePartitioner": "repro.runtime.sharding",
    "GramPartitioner": "repro.runtime.sharding",
    "register_partitioner": "repro.runtime.sharding",
    "create_partitioner": "repro.runtime.sharding",
    "available_partitioners": "repro.runtime.sharding",
    "ShardPlan": "repro.runtime.sharding",
    "ShardOutcome": "repro.runtime.sharding",
    "ShardedJoinResult": "repro.runtime.sharding",
    "ParallelExecutor": "repro.runtime.parallel",
    "run_sharded": "repro.runtime.parallel",
    "register_backend": "repro.runtime.parallel",
    "available_backends": "repro.runtime.parallel",
    "AggregatedEventBus": "repro.runtime.parallel",
    "ShardEvent": "repro.runtime.events",
    "ShardCompleted": "repro.runtime.events",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
