"""The layered runtime: sessions, switch policies and the event bus.

This package is the composition layer between the switchable join engine
(:mod:`repro.joins`) and every consumer (``AdaptiveJoinProcessor``,
``link_tables``, the bench harness, the CLI):

* :mod:`repro.runtime.config` — :class:`RunConfig`, one frozen dataclass
  describing an execution (thresholds, parent role, budget, engine knobs);
* :mod:`repro.runtime.session` — :class:`JoinSession`, which builds the
  engine + control stack from a config and drives it to completion;
* :mod:`repro.runtime.policy` — the :class:`SwitchPolicy` protocol and the
  ``@register_policy`` registry (``"mar"``, ``"fixed"``,
  ``"budget-greedy"``);
* :mod:`repro.runtime.events` — the :class:`EventBus` the engine and the
  policies publish step / match / switch / transition events onto;
* :mod:`repro.runtime.collectors` — optional ready-made subscribers;
* :mod:`repro.runtime.sharding` — partitioners (``hash`` /
  ``round-robin`` / ``range`` / the gram-replicated ``gram``),
  :class:`ShardPlan` and the mergeable, duplicate-free
  :class:`ShardedJoinResult`;
* :mod:`repro.runtime.parallel` — :class:`ParallelExecutor` with the
  ``serial`` / ``thread`` / ``process`` / ``async`` backends and the
  :class:`AggregatedEventBus` that fans shard events back into one
  observer stream;
* :mod:`repro.runtime.failures` — the :class:`FailurePolicy` registry
  (``fail-fast`` / ``retry`` / ``degrade``) deciding what a shard
  failure does to the run;
* :mod:`repro.runtime.faults` — the deterministic fault-injection
  harness (:class:`FaultPlan`) tests, benchmarks and the CI smoke use;
* :mod:`repro.runtime.errors` — the structured shard failure types
  (:class:`ShardExecutionError`, :class:`ShardTimeoutError`).

Exports are resolved lazily (PEP 562) so low-level modules — e.g.
:mod:`repro.joins.engine`, which publishes onto the bus — can import
``repro.runtime.events`` without dragging the whole session stack (and an
import cycle) in.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - static imports for type checkers
    from repro.runtime.collectors import (
        MatchTap,
        ProgressCollector,
        ProgressSnapshot,
        StateDwellCollector,
        SwitchLog,
        ThroughputCollector,
    )
    from repro.runtime.config import RunConfig, input_size
    from repro.runtime.errors import (
        ShardError,
        ShardExecutionError,
        ShardTimeoutError,
    )
    from repro.runtime.events import (
        AssessmentEvent,
        EventBus,
        ShardCompleted,
        ShardEvent,
        ShardFailed,
        ShardRetrying,
        TransitionEvent,
    )
    from repro.runtime.failures import (
        DegradePolicy,
        FailFastPolicy,
        FailurePolicy,
        RetryPolicy,
        ShardFailure,
        available_failure_policies,
        create_failure_policy,
        register_failure_policy,
    )
    from repro.runtime.faults import FaultPlan, FaultSpec, InjectedFaultError
    from repro.runtime.parallel import (
        AggregatedEventBus,
        FailureContext,
        ParallelExecutor,
        available_backends,
        register_backend,
        run_sharded,
    )
    from repro.runtime.policy import (
        BudgetGreedyPolicy,
        DeadlinePolicy,
        FixedStatePolicy,
        MarPolicy,
        SwitchPolicy,
        available_policies,
        create_policy,
        register_policy,
    )
    from repro.runtime.session import AdaptiveJoinResult, JoinSession
    from repro.runtime.sharding import (
        GramPartitioner,
        HashPartitioner,
        Partitioner,
        RangePartitioner,
        RoundRobinPartitioner,
        ShardedJoinResult,
        ShardOutcome,
        ShardPlan,
        available_partitioners,
        create_partitioner,
        register_partitioner,
    )

_EXPORTS = {
    "RunConfig": "repro.runtime.config",
    "input_size": "repro.runtime.config",
    "EventBus": "repro.runtime.events",
    "TransitionEvent": "repro.runtime.events",
    "AssessmentEvent": "repro.runtime.events",
    "SwitchPolicy": "repro.runtime.policy",
    "MarPolicy": "repro.runtime.policy",
    "FixedStatePolicy": "repro.runtime.policy",
    "BudgetGreedyPolicy": "repro.runtime.policy",
    "DeadlinePolicy": "repro.runtime.policy",
    "register_policy": "repro.runtime.policy",
    "create_policy": "repro.runtime.policy",
    "available_policies": "repro.runtime.policy",
    "JoinSession": "repro.runtime.session",
    "AdaptiveJoinResult": "repro.runtime.session",
    "MatchTap": "repro.runtime.collectors",
    "SwitchLog": "repro.runtime.collectors",
    "StateDwellCollector": "repro.runtime.collectors",
    "ThroughputCollector": "repro.runtime.collectors",
    "ProgressCollector": "repro.runtime.collectors",
    "ProgressSnapshot": "repro.runtime.collectors",
    "Partitioner": "repro.runtime.sharding",
    "HashPartitioner": "repro.runtime.sharding",
    "RoundRobinPartitioner": "repro.runtime.sharding",
    "RangePartitioner": "repro.runtime.sharding",
    "GramPartitioner": "repro.runtime.sharding",
    "register_partitioner": "repro.runtime.sharding",
    "create_partitioner": "repro.runtime.sharding",
    "available_partitioners": "repro.runtime.sharding",
    "ShardPlan": "repro.runtime.sharding",
    "ShardOutcome": "repro.runtime.sharding",
    "ShardedJoinResult": "repro.runtime.sharding",
    "ParallelExecutor": "repro.runtime.parallel",
    "run_sharded": "repro.runtime.parallel",
    "register_backend": "repro.runtime.parallel",
    "available_backends": "repro.runtime.parallel",
    "AggregatedEventBus": "repro.runtime.parallel",
    "ShardEvent": "repro.runtime.events",
    "ShardCompleted": "repro.runtime.events",
    "ShardFailed": "repro.runtime.events",
    "ShardRetrying": "repro.runtime.events",
    "FailurePolicy": "repro.runtime.failures",
    "FailFastPolicy": "repro.runtime.failures",
    "RetryPolicy": "repro.runtime.failures",
    "DegradePolicy": "repro.runtime.failures",
    "ShardFailure": "repro.runtime.failures",
    "register_failure_policy": "repro.runtime.failures",
    "create_failure_policy": "repro.runtime.failures",
    "available_failure_policies": "repro.runtime.failures",
    "FaultPlan": "repro.runtime.faults",
    "FaultSpec": "repro.runtime.faults",
    "InjectedFaultError": "repro.runtime.faults",
    "ShardError": "repro.runtime.errors",
    "ShardExecutionError": "repro.runtime.errors",
    "ShardTimeoutError": "repro.runtime.errors",
    "FailureContext": "repro.runtime.parallel",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
