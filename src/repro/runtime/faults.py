"""Deterministic fault injection for the sharded execution layer.

The harness that makes failure semantics *testable*: a
:class:`FaultPlan` is pure, picklable data describing which shards
misbehave, how, and when —

* ``fail shard k on attempt j``        → :meth:`FaultPlan.crash`
* ``hang shard k``                     → :meth:`FaultPlan.hang`
* ``fail after n engine batches``      → ``after_batches=n``
* a seeded pseudo-random scenario      → :meth:`FaultPlan.seeded`

The shard runner in :mod:`repro.runtime.parallel` consults the plan at
every attempt boundary and engine-batch boundary and raises
:class:`InjectedFaultError` (for ``fail``) or spins on the attempt's
deadline token (for ``hang``) at exactly the described point.  Because
the plan is data, the same scenario replays identically across the
serial / thread / process / async backends, in tests, in the bench
harness and in the CI smoke.

Nothing here is imported by the happy path unless a plan is supplied:
a run without faults never consults this module's logic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

_KINDS = ("fail", "hang")


class InjectedFaultError(RuntimeError):
    """The error a ``fail`` fault raises inside the targeted shard.

    A distinct type so tests and the CI smoke can assert that a surfaced
    failure is the *injected* one and not an accidental bug.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One injected misbehaviour: shard, kind, attempt window, batch offset.

    Attributes
    ----------
    shard_id:
        The shard this fault targets.
    kind:
        ``"fail"`` raises :class:`InjectedFaultError`; ``"hang"`` blocks
        the shard (cooperatively — it polls its deadline/cancel token)
        until a per-shard timeout or caller cancellation releases it.
    attempt:
        1-based attempt the fault fires on, or ``None`` to fire on
        *every* attempt (an irrecoverable shard).
    after_batches:
        Engine batches the attempt completes before the fault triggers
        (``0`` = before the first batch).
    """

    shard_id: int
    kind: str
    attempt: Optional[int] = None
    after_batches: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected {_KINDS}")
        if self.shard_id < 0:
            raise ValueError("shard_id must be non-negative")
        if self.attempt is not None and self.attempt < 1:
            raise ValueError("attempt is 1-based; use None for every attempt")
        if self.after_batches < 0:
            raise ValueError("after_batches must be non-negative")

    def fires_on(self, attempt: int) -> bool:
        """Whether this fault is active on the given 1-based attempt."""
        return self.attempt is None or self.attempt == attempt


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable collection of :class:`FaultSpec` records.

    Plans compose with ``+`` and are consulted per ``(shard, attempt)``
    via :meth:`action_for`.  When several specs target the same shard and
    attempt, the first in declaration order wins (deterministic).
    """

    faults: Tuple[FaultSpec, ...] = ()

    # -- constructors ---------------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan (injecting nothing)."""
        return cls()

    @classmethod
    def crash(
        cls,
        shard_id: int,
        attempts: Optional[Iterable[int]] = (1,),
        after_batches: int = 0,
    ) -> "FaultPlan":
        """Fail ``shard_id`` on the given attempts (``None`` = every attempt)."""
        if attempts is None:
            return cls((FaultSpec(shard_id, "fail", None, after_batches),))
        return cls(
            tuple(
                FaultSpec(shard_id, "fail", attempt, after_batches)
                for attempt in sorted(set(attempts))
            )
        )

    @classmethod
    def hang(
        cls,
        shard_id: int,
        attempts: Optional[Iterable[int]] = (1,),
        after_batches: int = 0,
    ) -> "FaultPlan":
        """Hang ``shard_id`` on the given attempts (``None`` = every attempt)."""
        if attempts is None:
            return cls((FaultSpec(shard_id, "hang", None, after_batches),))
        return cls(
            tuple(
                FaultSpec(shard_id, "hang", attempt, after_batches)
                for attempt in sorted(set(attempts))
            )
        )

    @classmethod
    def seeded(
        cls,
        seed: int,
        shard_count: int,
        fail_probability: float = 0.5,
        max_failed_attempts: int = 2,
        hang_probability: float = 0.0,
        max_after_batches: int = 0,
    ) -> "FaultPlan":
        """A reproducible pseudo-random scenario over ``shard_count`` shards.

        For each shard, with ``fail_probability`` it crashes on its first
        1..``max_failed_attempts`` attempts (so a ``retry`` policy with
        ``max_attempts > max_failed_attempts`` always clears the plan);
        independently, with ``hang_probability`` it hangs on the first
        attempt instead.  ``max_after_batches`` spreads the trigger point
        across early engine batches.  Same seed → same plan, everywhere.
        """
        rng = random.Random(seed)
        specs = []
        for shard_id in range(shard_count):
            offset = rng.randint(0, max_after_batches) if max_after_batches else 0
            if rng.random() < hang_probability:
                specs.append(FaultSpec(shard_id, "hang", 1, offset))
                continue
            if rng.random() < fail_probability:
                failed = rng.randint(1, max_failed_attempts)
                specs.extend(
                    FaultSpec(shard_id, "fail", attempt, offset)
                    for attempt in range(1, failed + 1)
                )
        return cls(tuple(specs))

    # -- composition & queries ------------------------------------------

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        return FaultPlan(self.faults + other.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def action_for(self, shard_id: int, attempt: int) -> Optional[FaultSpec]:
        """The fault (if any) to trigger for this shard on this attempt."""
        for spec in self.faults:
            if spec.shard_id == shard_id and spec.fires_on(attempt):
                return spec
        return None

    def for_shard(self, shard_id: int) -> "FaultPlan":
        """The sub-plan targeting one shard (shipped to process workers)."""
        return FaultPlan(
            tuple(spec for spec in self.faults if spec.shard_id == shard_id)
        )

    def shards_affected(self) -> Tuple[int, ...]:
        """Sorted shard ids with at least one fault."""
        return tuple(sorted({spec.shard_id for spec in self.faults}))

    def max_attempt_failed(self, shard_id: int) -> Optional[int]:
        """Highest attempt a ``fail`` spec targets for this shard.

        ``None`` when an every-attempt spec makes the shard irrecoverable
        (or when no ``fail`` spec targets it and the result would be 0).
        """
        highest = 0
        for spec in self.faults:
            if spec.shard_id != shard_id or spec.kind != "fail":
                continue
            if spec.attempt is None:
                return None
            highest = max(highest, spec.attempt)
        return highest
