"""Zero-copy shard handoff: columnar record blocks over shared memory.

The process backend used to pickle every shard's full record payload into
its worker — and gram-replicated plans multiplied that cost by the
replication factor, because each replica shard carried its own *copy* of
the records.  This module replaces the payload with a compile-once
representation:

* :class:`SideBlock` — one side's record set encoded **once** into flat
  columnar buffers: a contiguous ``payload`` byte string holding every
  cell's value bytes, an ``array('Q')`` offset table (one entry per cell
  plus a terminator) and an ``array('B')`` type-tag table.  Cells are laid
  out column-major (cell ``col * row_count + row``), mirroring the
  columnar kernels of :mod:`repro.kernels`.  Decoding row ``r`` walks one
  offset/tag pair per column and rebuilds the record through
  :meth:`~repro.engine.tuples.Record.from_trusted` — no per-row dicts, no
  re-validation.
* :func:`publish_block` — copies a :class:`SideBlock` (plus every shard's
  row-index array, so replication stays *indices*, never copies) into a
  single :class:`multiprocessing.shared_memory.SharedMemory` segment and
  returns a :class:`PublishedBlock` whose :class:`BlockDescriptor` is the
  only thing a worker ever receives on the wire.
* :meth:`BlockDescriptor.attach` — maps the segment back in a worker and
  exposes the same :class:`SideBlock` interface over plain
  ``memoryview``s: attaching copies nothing; individual cell values are
  materialised lazily as the shard's join consumes them.

Value encoding is exact, not lossy: ``None``/``True``/``False`` are pure
tags, ``str`` is UTF-8, ``int`` is ASCII decimal (arbitrary precision),
``float`` is the IEEE-754 little-endian bit pattern — so decoded records
are ``==`` to (and hash identically to) the originals, which is what keeps
the shared-memory path bit-identical to the pickle path.  Values of any
other type (or of subclasses of the supported types, which would decode to
the base type and break equality) make the side *unencodable*:
:meth:`SideBlock.encode` returns ``None`` and the plan falls back to the
classic pickle handoff.

Lifecycle: a :class:`SideBlock` itself is ordinary process memory owned by
the :class:`~repro.runtime.sharding.ShardPlan` — it is garbage-collected
with the plan and cannot leak.  Shared-memory segments exist only for the
duration of one process-backend run: the coordinator publishes, ships
descriptors, and unlinks in a ``finally`` (see
:mod:`repro.runtime.parallel`), so success, shard failure, cancellation
and resume all tear the segments down; ``JobHandle.resume`` re-publishes
from the plan's retained blocks.  Every segment created through this
module is tracked in a registry so tests (and the CI zero-copy smoke) can
assert :func:`live_block_count` returns to zero.
"""

from __future__ import annotations

import secrets
import struct
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.tuples import Record, Schema

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exercised via _FORCE_UNAVAILABLE
    _shared_memory = None  # type: ignore[assignment]

__all__ = [
    "HANDOFF_MODES",
    "BlockDescriptor",
    "PublishedBlock",
    "SideBlock",
    "live_block_count",
    "live_block_names",
    "publish_block",
    "shared_memory_available",
]

#: The shard-handoff modes accepted by ``ShardPlan.build`` and everything
#: layered above it (``run_sharded``, the jobs builder, ``repro link``).
#: ``auto`` uses columnar blocks when both sides encode and falls back to
#: pickle otherwise; the explicit modes force one representation (and
#: ``shared-memory`` raises on unencodable inputs rather than silently
#: shipping pickles).
HANDOFF_MODES = ("auto", "pickle", "shared-memory")

_TAG_NONE = 0
_TAG_STR = 1
_TAG_INT = 2
_TAG_FLOAT = 3
_TAG_TRUE = 4
_TAG_FALSE = 5

_FLOAT_STRUCT = struct.Struct("<d")

#: Set by tests to simulate a platform without ``shared_memory``.
_FORCE_UNAVAILABLE = False


def shared_memory_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` can back a publish."""
    return _shared_memory is not None and not _FORCE_UNAVAILABLE


class _Unencodable(Exception):
    """Internal signal: a cell value has no columnar encoding."""


class SideBlock:
    """One side's records as flat columnar buffers.

    ``payload``/``offsets``/``tags`` may be the owning ``bytes``/``array``
    objects (built by :meth:`encode`) or borrowed ``memoryview``s over a
    shared-memory segment (built by :meth:`BlockDescriptor.attach`); the
    decode path is identical for both.
    """

    __slots__ = ("schema", "row_count", "payload", "offsets", "tags", "stream_name")

    def __init__(
        self,
        schema: Schema,
        row_count: int,
        payload,
        offsets,
        tags,
        stream_name: str = "",
    ) -> None:
        self.schema = schema
        self.row_count = row_count
        self.payload = payload
        self.offsets = offsets
        self.tags = tags
        self.stream_name = stream_name

    @property
    def column_count(self) -> int:
        return len(self.schema)

    @property
    def payload_size(self) -> int:
        return len(self.payload)

    @classmethod
    def encode(
        cls, schema: Schema, records: Sequence[Record], stream_name: str = ""
    ) -> Optional["SideBlock"]:
        """Encode ``records`` columnar, or return ``None`` if any cell
        holds a value outside the encodable set (exactly ``None``, ``bool``,
        ``int``, ``float``, ``str`` — subclasses excluded)."""
        row_count = len(records)
        column_count = len(schema)
        payload = bytearray()
        offsets = array("Q", bytes(8 * (row_count * column_count + 1)))
        tags = array("B", bytes(row_count * column_count))
        cell = 0
        try:
            for col in range(column_count):
                for record in records:
                    value = record.value_at(col)
                    if value is None:
                        tag = _TAG_NONE
                    else:
                        kind = type(value)
                        if kind is str:
                            payload += value.encode("utf-8")
                            tag = _TAG_STR
                        elif kind is bool:
                            tag = _TAG_TRUE if value else _TAG_FALSE
                        elif kind is int:
                            payload += b"%d" % value
                            tag = _TAG_INT
                        elif kind is float:
                            payload += _FLOAT_STRUCT.pack(value)
                            tag = _TAG_FLOAT
                        else:
                            raise _Unencodable
                    tags[cell] = tag
                    cell += 1
                    offsets[cell] = len(payload)
        except (_Unencodable, UnicodeEncodeError):
            return None
        return cls(
            schema,
            row_count,
            bytes(payload),
            offsets,
            tags,
            stream_name=stream_name,
        )

    def record(self, row: int) -> Record:
        """Decode row ``row`` into a :class:`Record` (fresh value tuple)."""
        n = self.row_count
        payload = self.payload
        offsets = self.offsets
        tags = self.tags
        values: List[object] = []
        append = values.append
        for cell in range(row, n * self.column_count + row, n):
            tag = tags[cell]
            if tag == _TAG_STR:
                append(str(payload[offsets[cell] : offsets[cell + 1]], "utf-8"))
            elif tag == _TAG_NONE:
                append(None)
            elif tag == _TAG_INT:
                append(int(bytes(payload[offsets[cell] : offsets[cell + 1]])))
            elif tag == _TAG_FLOAT:
                append(_FLOAT_STRUCT.unpack_from(payload, offsets[cell])[0])
            elif tag == _TAG_TRUE:
                append(True)
            else:
                append(False)
        return Record.from_trusted(self.schema, tuple(values))

    def records(self, rows: Sequence[int]) -> List[Record]:
        """Decode a batch of row indices (repeats allowed)."""
        record = self.record
        return [record(row) for row in rows]

    def __repr__(self) -> str:
        return (
            f"<SideBlock rows={self.row_count} cols={self.column_count} "
            f"payload={self.payload_size}B>"
        )


class BlockDescriptor:
    """The picklable handle a worker receives instead of record payloads.

    Carries the shared-memory segment *name* plus the integers needed to
    re-derive the segment's region layout (see :func:`_region_layout`):
    row/column counts, payload size and the per-shard row-array extents.
    Everything heavy — cell bytes, offset/tag tables, the shard row-index
    arrays themselves — lives in the segment.  A descriptor pickles to a
    few hundred bytes regardless of how many records the plan holds, which
    is what makes retry resubmission O(descriptor).
    """

    __slots__ = (
        "name",
        "schema_attributes",
        "schema_name",
        "stream_name",
        "row_count",
        "payload_size",
        "shard_extents",
    )

    def __init__(
        self,
        name: str,
        schema_attributes: Tuple[str, ...],
        schema_name: str,
        stream_name: str,
        row_count: int,
        payload_size: int,
        shard_extents: Tuple[int, ...],
    ) -> None:
        self.name = name
        self.schema_attributes = schema_attributes
        self.schema_name = schema_name
        self.stream_name = stream_name
        self.row_count = row_count
        self.payload_size = payload_size
        self.shard_extents = shard_extents

    # __slots__ classes need explicit pickle support.
    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    @property
    def column_count(self) -> int:
        return len(self.schema_attributes)

    def attach(self) -> "AttachedBlock":
        """Map the segment and return a zero-copy view over it."""
        if not shared_memory_available():  # pragma: no cover - guarded upstream
            raise RuntimeError("shared_memory is unavailable; cannot attach")
        try:
            # Python >= 3.13: opt out of resource_tracker registration for
            # an attach-only mapping (the coordinator owns the segment).
            segment = _shared_memory.SharedMemory(name=self.name, track=False)
        except TypeError:
            segment = _shared_memory.SharedMemory(name=self.name)
        return AttachedBlock(self, segment)

    def __repr__(self) -> str:
        return (
            f"<BlockDescriptor {self.name!r} rows={self.row_count} "
            f"shards={len(self.shard_extents)}>"
        )


def _region_layout(
    row_count: int,
    column_count: int,
    payload_size: int,
    shard_extents: Sequence[int],
) -> Tuple[int, int, int, int, int]:
    """Byte offsets of the segment regions, plus the total size.

    Layout: ``[offsets 'Q'][shard rows 'Q'][tags 'B'][payload]`` — the
    8-byte-aligned regions first so the memoryview casts in
    :class:`AttachedBlock` are always aligned.
    """
    offsets_at = 0
    offsets_bytes = 8 * (row_count * column_count + 1)
    rows_at = offsets_at + offsets_bytes
    rows_bytes = 8 * sum(shard_extents)
    tags_at = rows_at + rows_bytes
    tags_bytes = row_count * column_count
    payload_at = tags_at + tags_bytes
    # shared_memory rejects size=0; keep at least one byte.
    total = max(payload_at + payload_size, 1)
    return offsets_at, rows_at, tags_at, payload_at, total


class AttachedBlock:
    """A worker-side zero-copy view of a published block.

    Exposes the :class:`SideBlock` decode interface (``.block``) and the
    per-shard row-index arrays (``.shard_rows``), all as ``memoryview``
    casts over the mapped segment.  :meth:`close` releases every exported
    view before closing the mapping — ``SharedMemory.close`` raises
    ``BufferError`` otherwise — and is idempotent.
    """

    def __init__(self, descriptor: BlockDescriptor, segment) -> None:
        self._segment = segment
        self._views: List[memoryview] = []
        layout = _region_layout(
            descriptor.row_count,
            descriptor.column_count,
            descriptor.payload_size,
            descriptor.shard_extents,
        )
        offsets_at, rows_at, tags_at, payload_at, _ = layout
        buf = segment.buf

        def region(start: int, stop: int) -> memoryview:
            view = buf[start:stop]
            self._views.append(view)
            return view

        offsets = region(offsets_at, rows_at).cast("Q")
        self._views.append(offsets)
        tags = region(tags_at, payload_at).cast("B")
        self._views.append(tags)
        payload = region(payload_at, payload_at + descriptor.payload_size)
        schema = Schema(descriptor.schema_attributes, name=descriptor.schema_name)
        self.block = SideBlock(
            schema,
            descriptor.row_count,
            payload,
            offsets,
            tags,
            stream_name=descriptor.stream_name,
        )
        rows_all = region(rows_at, tags_at).cast("Q")
        self._views.append(rows_all)
        self._shard_rows: List[memoryview] = []
        cursor = 0
        for extent in descriptor.shard_extents:
            rows = rows_all[cursor : cursor + extent]
            self._views.append(rows)
            self._shard_rows.append(rows)
            cursor += extent
        self._closed = False

    def shard_rows(self, shard_id: int) -> memoryview:
        """The row-index array of ``shard_id`` (a ``'Q'`` memoryview)."""
        return self._shard_rows[shard_id]

    def close(self) -> None:
        """Release every view and close the mapping (never unlinks)."""
        if self._closed:
            return
        self._closed = True
        self.block.payload = b""
        self.block.offsets = ()
        self.block.tags = ()
        self._shard_rows = []
        for view in reversed(self._views):
            view.release()
        self._views = []
        self._segment.close()


# ---------------------------------------------------------------------------
# Publish side: segment creation, registry, teardown
# ---------------------------------------------------------------------------

#: Live segments created by this process, by name.  ``PublishedBlock.release``
#: removes entries; tests assert the registry drains to zero after success,
#: failure, cancel and resume.
_LIVE_BLOCKS: Dict[str, object] = {}


def live_block_count() -> int:
    """Number of shared-memory segments this process created and has not
    yet released — the leak-test observable."""
    return len(_LIVE_BLOCKS)


def live_block_names() -> Tuple[str, ...]:
    """Names of the live segments (diagnostics and leak tests)."""
    return tuple(_LIVE_BLOCKS)


def build_descriptor(
    block: SideBlock,
    shard_rows: Sequence[Sequence[int]],
    name: str = "<unpublished>",
) -> BlockDescriptor:
    """The descriptor ``publish_block`` would ship, without creating a
    segment — used to *measure* wire payloads (`estimate task bytes`)
    where actually allocating shared memory would be wasteful."""
    return BlockDescriptor(
        name=name,
        schema_attributes=block.schema.attributes,
        schema_name=block.schema.name,
        stream_name=block.stream_name,
        row_count=block.row_count,
        payload_size=block.payload_size,
        shard_extents=tuple(len(rows) for rows in shard_rows),
    )


def publish_block(
    block: SideBlock, shard_rows: Sequence[Sequence[int]]
) -> "PublishedBlock":
    """Copy ``block`` plus every shard's row-index array into one fresh
    shared-memory segment and return its handle.

    The single copy here is the *entire* per-run handoff cost: it is paid
    once per side, not once per shard per attempt.  Raises ``OSError`` if
    the platform refuses the allocation (callers fall back to pickle).
    """
    if not shared_memory_available():
        raise RuntimeError("shared_memory is unavailable; cannot publish")
    extents = tuple(len(rows) for rows in shard_rows)
    offsets_at, rows_at, tags_at, payload_at, total = _region_layout(
        block.row_count, block.column_count, block.payload_size, extents
    )
    name = f"repro-blk-{secrets.token_hex(6)}"
    segment = _shared_memory.SharedMemory(name=name, create=True, size=total)
    try:
        buf = segment.buf
        offsets_bytes = block.offsets.tobytes()
        buf[offsets_at : offsets_at + len(offsets_bytes)] = offsets_bytes
        cursor = rows_at
        for rows in shard_rows:
            rows_bytes = array("Q", rows).tobytes()
            buf[cursor : cursor + len(rows_bytes)] = rows_bytes
            cursor += len(rows_bytes)
        tags_bytes = block.tags.tobytes()
        buf[tags_at : tags_at + len(tags_bytes)] = tags_bytes
        buf[payload_at : payload_at + block.payload_size] = block.payload
    except BaseException:
        segment.close()
        segment.unlink()
        raise
    descriptor = build_descriptor(block, shard_rows, name=name)
    _LIVE_BLOCKS[name] = segment
    return PublishedBlock(descriptor, segment)


class PublishedBlock:
    """A shared-memory segment owned by the publishing coordinator."""

    def __init__(self, descriptor: BlockDescriptor, segment) -> None:
        self.descriptor = descriptor
        self._segment = segment
        self._released = False

    @property
    def name(self) -> str:
        return self.descriptor.name

    def release(self) -> None:
        """Close and unlink the segment; idempotent.

        Called from the process backend's ``finally``, so the segment dies
        with the run on every exit path — success, shard failure,
        cancellation, resume re-publishes a fresh one.
        """
        if self._released:
            return
        self._released = True
        _LIVE_BLOCKS.pop(self.descriptor.name, None)
        self._segment.close()
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __repr__(self) -> str:
        return f"<PublishedBlock {self.descriptor.name!r} released={self._released}>"
