"""Exception hierarchy for the runtime execution layer.

The mirror of :mod:`repro.engine.errors` one layer up: a small, explicit
hierarchy so callers can distinguish *where* and *why* a sharded run
failed without string-matching on messages.  Every error a failing shard
surfaces is wrapped in a :class:`ShardExecutionError` carrying the shard
id, the attempt number and the engine batches elapsed before the
failure, with ``__cause__`` set to the original exception — the bare
re-raise of the pre-fault-tolerance backends lost all three.

:class:`ShardError` deliberately subclasses :class:`RuntimeError`:
callers (and tests) written against the old bare re-raise commonly catch
``RuntimeError`` around a sharded run, and the wrapped message embeds
the original error text, so existing ``except``/``match=`` sites keep
working while new code can catch the precise types.

Pickling contract: the process backend ships these errors across the
worker boundary, so every constructor passes *all* of its arguments to
``Exception.__init__`` (the default ``__reduce__`` re-invokes the class
with ``self.args``).  ``__cause__`` does not survive pickling — which is
why the message embeds the cause's text.
"""

from __future__ import annotations

from typing import Optional


class ShardError(RuntimeError):
    """Base class for all errors raised by the sharded execution layer."""


class ShardExecutionError(ShardError):
    """One shard's session failed (possibly after retries).

    Attributes
    ----------
    shard_id:
        The shard whose session raised.
    attempt:
        1-based attempt number that failed (``1`` = the first run).
    batches:
        Engine batches the attempt completed before failing (``0`` when
        the failure happened during session construction).
    message:
        Human-readable description, embedding the original error's text
        (``__cause__`` carries the original exception object itself when
        the error did not cross a process boundary).
    """

    def __init__(
        self, shard_id: int, attempt: int, batches: int = 0, message: str = ""
    ) -> None:
        super().__init__(shard_id, attempt, batches, message)
        self.shard_id = shard_id
        self.attempt = attempt
        self.batches = batches
        self.message = message

    def __str__(self) -> str:
        return (
            f"shard {self.shard_id} failed on attempt {self.attempt} "
            f"after {self.batches} engine batch(es): {self.message}"
        )


class ShardTimeoutError(ShardExecutionError):
    """A shard attempt exceeded its per-shard timeout.

    Raised by the shard runner when the attempt's deadline token trips —
    enforced at engine-batch boundaries through the same cancel-token
    path cooperative cancellation uses, so a hung shard becomes a
    timeout, never a deadlock.
    """

    def __init__(
        self,
        shard_id: int,
        attempt: int,
        batches: int,
        timeout_seconds: Optional[float],
        message: str = "",
    ) -> None:
        # Bypass ShardExecutionError.__init__ so self.args matches this
        # constructor (the pickling contract), then fill the same fields.
        Exception.__init__(self, shard_id, attempt, batches, timeout_seconds, message)
        self.shard_id = shard_id
        self.attempt = attempt
        self.batches = batches
        self.timeout_seconds = timeout_seconds
        self.message = message or (
            f"exceeded the per-shard timeout of {timeout_seconds}s"
        )

    def __str__(self) -> str:
        return (
            f"shard {self.shard_id} timed out on attempt {self.attempt} "
            f"after {self.batches} engine batch(es): {self.message}"
        )
