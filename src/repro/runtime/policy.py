"""Pluggable switch policies for the adaptive runtime.

The paper's contribution is *one* policy for deciding when to switch the
per-side join operators: the Monitor-Assess-Respond loop of Sec. 3.  The
runtime layer generalises that decision into a :class:`SwitchPolicy`
interface with a name registry, so new trade-off strategies plug in
without touching the session loop:

``"mar"`` (:class:`MarPolicy`, the default)
    The paper's control loop — assessor predicates σ/µ/π, responder guards
    φ_0..φ_3, optional cost-budget pinning.  Bit-identical to the
    pre-runtime ``AdaptiveJoinProcessor`` behaviour (enforced by
    ``tests/runtime/test_policy_equivalence.py``).

``"fixed"`` (:class:`FixedStatePolicy`)
    Never switches: the run stays in its initial state.  This subsumes the
    non-adaptive baselines (all-exact = fixed @ ``lex/rex``,
    all-approximate = fixed @ ``lap/rap``) and the "no adaptation"
    ablation, all through the same session machinery.

``"budget-greedy"`` (:class:`BudgetGreedyPolicy`)
    Greedy completeness under a cost cap: pin to the all-approximate state
    while budget headroom remains, then drop to all-exact for the rest of
    the run.  A deliberately simple foil to MAR for the budget trade-off
    benchmarks.

``"deadline"`` (:class:`DeadlinePolicy`)
    Meet a wall-clock budget (``RunConfig.deadline_seconds``): run
    approximate while the projected completion time under the cost model
    stays inside the budget, pin to all-exact the first time it does not.
    A one-shot trigger with an irregular cadence — after pinning it
    declares no further activation boundaries.

Registering a policy::

    from repro.runtime import SwitchPolicy, register_policy

    @register_policy("mine")
    class MyPolicy(SwitchPolicy):
        def should_activate(self, step): ...
        def activate(self, step): ...

and every entry point (``JoinSession``, ``link_tables``, the bench
harness, ``repro link --policy mine``) can select it by name.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from repro.core.assessor import Assessor
from repro.core.responder import Responder
from repro.core.state_machine import JoinState
from repro.runtime.config import RunConfig
from repro.runtime.events import AssessmentEvent, TransitionEvent


class SwitchPolicy:
    """Decides when and how a session switches its per-side join operators.

    A policy is bound to exactly one
    :class:`~repro.runtime.session.JoinSession` via :meth:`bind` (called by
    the session at build time) and is consulted by the session loop:
    :meth:`should_activate` after every step, :meth:`activate` when it
    answers True.  Activations happen between engine steps — i.e. in a
    quiescent state — so enacting a transition is always safe.
    """

    #: Registry name, filled in by :func:`register_policy`.
    name: str = ""

    def __init__(self) -> None:
        self.session = None

    # -- lifecycle ---------------------------------------------------------------

    def resolve_initial_state(self, config: RunConfig) -> JoinState:
        """The state the session should start in under this policy.

        An explicit ``config.initial_state`` always wins; otherwise the
        policy picks its natural starting point (``lex/rex`` by default,
        the paper's optimistic choice).  Called before :meth:`bind`, so
        implementations may only rely on the policy's own construction
        parameters and ``config``.
        """
        return config.initial_state or JoinState.LEX_REX

    def bind(self, session) -> None:
        """Attach the policy to its session (called once, at session build)."""
        if self.session is not None:
            raise RuntimeError(
                f"policy {self.name or type(self).__name__!r} is already bound "
                "to a session; create a fresh instance per run"
            )
        self.session = session

    # -- the decision interface -----------------------------------------------------

    @property
    def activation_interval(self) -> int:
        """Steps between the default activation boundaries.

        Defaults to the ``δ_adapt`` of the bound session's thresholds.
        """
        return self.session.config.thresholds.delta_adapt

    def next_activation_step(self, step_count: int) -> Optional[int]:
        """The next step after ``step_count`` at which this policy wants control.

        :meth:`JoinSession.run` never drives the engine past this boundary
        within one batch, then consults :meth:`should_activate` there — so
        batched execution hands control to the policy at exactly the same
        steps as one-at-a-time stepping, for *any* cadence.  ``None``
        means "never again" (the remaining input runs in maximal batches).

        The default boundary is the next multiple of
        :attr:`activation_interval`; policies with an irregular schedule
        (a one-shot trigger, adaptive cadence, …) override this so their
        ``should_activate`` steps are actually reached.
        """
        interval = self.activation_interval
        return step_count + (interval - step_count % interval)

    def should_activate(self, step: int) -> bool:
        """Whether the policy wants control after ``step``.

        Consulted after every step when single-stepping, and at each
        :meth:`next_activation_step` boundary under batched ``run()``.
        """
        raise NotImplementedError

    def activate(self, step: int) -> None:
        """One policy activation: may switch the engine via the session."""
        raise NotImplementedError


# -- registry -------------------------------------------------------------------------

_POLICIES: Dict[str, Callable[[], SwitchPolicy]] = {}


def register_policy(name: str):
    """Class decorator registering a :class:`SwitchPolicy` under ``name``."""
    if not name:
        raise ValueError("policy name must be non-empty")

    def decorate(cls):
        if name in _POLICIES:
            raise ValueError(f"policy {name!r} is already registered")
        _POLICIES[name] = cls
        cls.name = name
        return cls

    return decorate


def create_policy(name: str) -> SwitchPolicy:
    """Instantiate the policy registered under ``name``."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown switch policy {name!r}; registered: {available_policies()}"
        ) from None
    return factory()


def available_policies() -> Tuple[str, ...]:
    """Names of all registered policies, sorted."""
    return tuple(sorted(_POLICIES))


# -- the paper's policy ----------------------------------------------------------------


@register_policy("mar")
class MarPolicy(SwitchPolicy):
    """The paper's Monitor-Assess-Respond control loop (Sec. 3).

    Every ``δ_adapt`` steps the assessor evaluates the σ/µ/π predicates
    over the monitor's observation, the responder maps them onto the
    φ_0..φ_3 guards of the four-state machine and enacts the selected
    transition.  When the session carries a cost budget, exhaustion is
    checked first and overrides the responder: the processor is pinned to
    ``lex/rex`` for the remainder of the run (Sec. 4.4's user-controlled
    completeness/cost knob).
    """

    def __init__(self) -> None:
        super().__init__()
        self.assessor: Optional[Assessor] = None
        self.responder: Optional[Responder] = None
        self._budget_exhausted = False

    def bind(self, session) -> None:
        super().bind(session)
        config = session.config
        self.assessor = Assessor(
            thresholds=config.thresholds,
            parent_size=session.parent_size,
            parent_side=config.parent_side,
        )
        self.responder = Responder(
            session.state_machine,
            allow_source_identification=config.allow_source_identification,
        )

    @property
    def budget_exhausted(self) -> bool:
        """Whether the session's cost budget (if any) has been used up."""
        return self._budget_exhausted

    def should_activate(self, step: int) -> bool:
        return self.assessor.should_assess(step)

    def activate(self, step: int) -> None:
        session = self.session
        budget = session.cost_budget
        if budget is not None and not self._budget_exhausted:
            if budget.exhausted(session.trace, session.config.cost_model):
                self._budget_exhausted = True
        if self._budget_exhausted:
            # The user-imposed cost cap overrides the responder: pin the
            # processor to the cheap all-exact configuration.
            session.force_state(JoinState.LEX_REX, step)
            return
        observation = session.monitor.observation()
        assessment = self.assessor.assess(observation)
        state_before = session.state_machine.state
        guards, new_state, switches = self.responder.respond(
            assessment, session.engine
        )
        state_after = session.state_machine.state
        session.bus.publish(
            AssessmentEvent(assessment, guards, state_before, state_after)
        )
        if new_state is not None:
            session.bus.publish(
                TransitionEvent(step, state_before, new_state, tuple(switches))
            )


# -- non-adaptive and budget-first policies --------------------------------------------


@register_policy("fixed")
class FixedStatePolicy(SwitchPolicy):
    """Never switch: the run stays in its initial state end to end.

    With ``initial_state=lex/rex`` this is the all-exact baseline, with
    ``lap/rap`` the all-approximate one, and with a hybrid state a frozen
    asymmetric configuration — all driven through the same session loop,
    trace and event stream as the adaptive runs, which makes baseline and
    adaptive measurements directly comparable.
    """

    def next_activation_step(self, step_count: int) -> Optional[int]:
        return None  # no boundaries: the session drains in maximal batches

    def should_activate(self, step: int) -> bool:
        return False

    def activate(self, step: int) -> None:  # pragma: no cover - never reached
        raise AssertionError("FixedStatePolicy never activates")


@register_policy("budget-greedy")
class BudgetGreedyPolicy(SwitchPolicy):
    """Spend the budget on completeness first, then run out the clock exactly.

    Starts in ``lap/rap`` (unless an explicit initial state is configured)
    and, while the session carries a cost budget, enforces the greedy
    target at every activation: ``lap/rap`` while the budget has headroom,
    pinned to ``lex/rex`` from the first activation that finds it
    exhausted.  Without a budget the policy never switches at all — the
    run simply stays in its initial state (the completeness ceiling when
    that is the ``lap/rap`` default).

    The check fires every ``δ_adapt`` steps, so like MAR the budget can be
    overshot by at most one assessment interval's worth of cost.
    """

    def __init__(self) -> None:
        super().__init__()
        self._budget_exhausted = False

    def resolve_initial_state(self, config: RunConfig) -> JoinState:
        return config.initial_state or JoinState.LAP_RAP

    @property
    def budget_exhausted(self) -> bool:
        """Whether the session's cost budget (if any) has been used up."""
        return self._budget_exhausted

    def should_activate(self, step: int) -> bool:
        return step > 0 and step % self.activation_interval == 0

    def activate(self, step: int) -> None:
        session = self.session
        budget = session.cost_budget
        if budget is None:
            return  # nothing to spend down: respect the configured state
        if not self._budget_exhausted and budget.exhausted(
            session.trace, session.config.cost_model
        ):
            self._budget_exhausted = True
        target = JoinState.LEX_REX if self._budget_exhausted else JoinState.LAP_RAP
        session.force_state(target, step)


@register_policy("deadline")
class DeadlinePolicy(SwitchPolicy):
    """Meet a wall-clock budget: go exact once the projection says we won't.

    Starts all-approximate (unless an explicit initial state is
    configured) and, every ``δ_adapt`` steps, projects the run's
    completion time: the observed seconds-per-weighted-cost-unit so far
    (wall time elapsed over the trace's ``c_abs`` under the session's
    cost model) times the cost of finishing the remaining steps *in the
    current state*.  The first activation whose projection exceeds the
    wall budget pins the processor to ``lex/rex`` for the rest of the
    run — the cheapest way to still finish — after which the policy
    declares no further activation boundaries
    (:meth:`next_activation_step` returns ``None``), so the session
    drains the remaining input in maximal batches.  The cost of the
    pinning transition itself is below one step's noise and is not
    projected.

    The wall budget comes from the constructor (parameterised instances
    passed straight to :class:`~repro.runtime.session.JoinSession`) or
    from ``config.deadline_seconds`` when created by name through the
    registry; the clock starts at :meth:`bind` (session construction,
    which every entry point follows immediately with ``run()``).  Needs
    sized inputs to know the remaining step count — like MAR, it fails
    fast on unsized streams.

    ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        super().__init__()
        self._deadline_override = deadline_seconds
        self._clock = clock
        self.deadline_seconds: Optional[float] = None
        self._total_steps = 0
        self._started = 0.0
        self._pinned = False

    def resolve_initial_state(self, config: RunConfig) -> JoinState:
        return config.initial_state or JoinState.LAP_RAP

    def bind(self, session) -> None:
        super().bind(session)
        deadline = (
            self._deadline_override
            if self._deadline_override is not None
            else session.config.deadline_seconds
        )
        if deadline is None:
            raise ValueError(
                "the deadline policy needs a wall budget: pass "
                "deadline_seconds= to RunConfig (or construct "
                "DeadlinePolicy(deadline_seconds=...) directly)"
            )
        if deadline <= 0:
            raise ValueError(f"deadline_seconds must be positive, got {deadline}")
        if session.total_steps is None:
            raise ValueError(
                "the deadline policy projects the remaining work from the "
                "input sizes, but at least one input is an unsized stream"
            )
        self.deadline_seconds = deadline
        self._total_steps = session.total_steps
        self._started = self._clock()

    @property
    def deadline_exceeded(self) -> bool:
        """Whether the projection tripped and the run was pinned to exact."""
        return self._pinned

    def next_activation_step(self, step_count: int) -> Optional[int]:
        if self._pinned:
            return None  # one-shot trigger fired: drain in maximal batches
        return super().next_activation_step(step_count)

    def should_activate(self, step: int) -> bool:
        return (
            not self._pinned
            and step > 0
            and step % self.activation_interval == 0
        )

    def activate(self, step: int) -> None:
        session = self.session
        elapsed = self._clock() - self._started
        model = session.config.cost_model
        cost_so_far = model.absolute_cost(session.trace)
        if cost_so_far <= 0 or elapsed <= 0:
            return  # nothing measured yet: no basis for a projection
        seconds_per_unit = elapsed / cost_so_far
        remaining_steps = max(self._total_steps - step, 0)
        stay_cost = remaining_steps * model.state_weights[session.state]
        projected_completion = elapsed + stay_cost * seconds_per_unit
        if projected_completion > self.deadline_seconds:
            self._pinned = True
            session.force_state(JoinState.LEX_REX, step)
