"""Declarative run configuration for adaptive join executions.

Before the runtime layer existed, every entry point — the adaptive
processor, ``link_tables``, the bench harness and the CLI — hand-threaded
the same dozen knobs (thresholds, q/θ, parent side and size, initial
state, cost model, budget, engine filters, batch size) through its own
parameter list.  :class:`RunConfig` unifies them in one frozen dataclass:
a configuration is *declared* once and handed to
:class:`~repro.runtime.session.JoinSession`, which builds the whole
engine + control stack from it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.core.budget import CostBudget
from repro.core.cost_model import CostModel
from repro.core.state_machine import JoinState
from repro.core.thresholds import Thresholds
from repro.engine.table import Table
from repro.joins.base import GRAM_VERIFICATION_MODES, JoinSide


def _default_gram_verification() -> str:
    """Default ``gram_verification``: the ``REPRO_GRAM_VERIFICATION`` env var.

    Lets CI (and users) pin every :class:`RunConfig`-driven run to one
    verification mode without touching call sites; unset means ``"auto"``.
    Read per instantiation (``default_factory``), so changing the variable
    between runs takes effect without re-importing.  Invalid values fail
    in ``__post_init__`` exactly like an explicit argument would.
    """
    return os.environ.get("REPRO_GRAM_VERIFICATION", "auto")


def input_size(source: object) -> Optional[int]:
    """The number of records ``source`` will produce, or ``None`` if unknown.

    Tables and sized streams (``ListStream``, ``TableStream``) report their
    length; lazy/live streams (``IteratorStream``, network sources) do not,
    and callers that need a size must be given one explicitly.
    """
    if isinstance(source, Table):
        return len(source)
    try:
        return len(source)  # type: ignore[arg-type]
    except TypeError:
        return None


@dataclass(frozen=True)
class RunConfig:
    """One complete, immutable description of an adaptive join execution.

    Attributes
    ----------
    thresholds:
        The paper's tuning parameters (Table 3): ``θ_sim``, ``q``, window
        size, ``δ_adapt`` and the σ/µ/π thresholds.  ``θ_sim`` and ``q``
        also configure the engine's approximate operator.
    policy:
        Name of the registered switch policy driving the run (see
        :mod:`repro.runtime.policy`).  ``"mar"`` — the paper's
        Monitor-Assess-Respond loop — is the default.
    parent_side:
        Which input plays the parent/reference role of the parent-child
        expectation (Sec. 3.2).
    parent_size:
        ``|R|``, the expected size of the parent table.  ``None`` means
        "infer from the parent input"; see :meth:`resolve_parent_size`.
    initial_state:
        Processor state at start.  ``None`` lets the policy choose its
        natural starting point (``lex/rex`` for MAR — the optimistic
        choice — and ``lap/rap`` for the budget-greedy policy).
    allow_source_identification:
        Forwarded to the MAR responder; ``False`` restricts the machine to
        the two symmetric states (the two-state ablation).
    cost_budget:
        Optional absolute cap on the weighted execution cost.  Mutually
        exclusive with ``budget_fraction``.
    budget_fraction:
        Optional relative budget: the target ``c_rel`` ceiling in
        ``(0, 1]``, resolved against the cost gap ``C − c`` once the total
        step count is known (both inputs sized).  Mutually exclusive with
        ``cost_budget``.
    cost_model:
        Cost model used for budget accounting (paper weights by default).
    deadline_seconds:
        Optional wall-clock budget consumed by the ``deadline`` switch
        policy: once the projected completion time (under ``cost_model``)
        exceeds it, the run is pinned to the all-exact configuration.
        Ignored by policies that do not read it.
    verify_jaccard, use_prefix_filter, use_length_filter:
        Approximate-operator knobs, forwarded to the engine (the length
        filter is the PR-1 fast-path ablation toggle).
    gram_verification:
        How approximate probes recover a candidate's shared-gram count:
        ``"bitset"`` (gram bitsets + ``bit_count``), ``"array"`` (sorted
        gram-id array intersections), ``"auto"`` (default: bitsets,
        switching to arrays once the gram vocabulary outgrows the bitset
        regime — huge alphabets / q ≥ 4), or the columnar kernels
        ``"numpy-bitset"`` / ``"numpy-array"`` (batched verification via
        :mod:`repro.kernels`; each falls back to its pure-Python twin when
        numpy is absent).  Match sets and counters are identical in every
        mode; see PERFORMANCE.md.  The default honours the
        ``REPRO_GRAM_VERIFICATION`` environment variable when set.
    scan_batch:
        Engine read-ahead batch size (bulk stream pulls; ``1`` disables).
    eager_indexing:
        Keep every index of both sides current at every step (the
        pessimistic alternative of Sec. 2.3; ablation only).
    padded_qgrams, deduplicate:
        Remaining engine knobs, forwarded verbatim.
    """

    thresholds: Thresholds = field(default_factory=Thresholds)
    policy: str = "mar"
    parent_side: JoinSide = JoinSide.LEFT
    parent_size: Optional[int] = None
    initial_state: Optional[JoinState] = None
    allow_source_identification: bool = True
    cost_budget: Optional[CostBudget] = None
    budget_fraction: Optional[float] = None
    cost_model: CostModel = field(default_factory=CostModel)
    deadline_seconds: Optional[float] = None
    verify_jaccard: bool = False
    use_prefix_filter: bool = True
    use_length_filter: bool = True
    gram_verification: str = field(default_factory=_default_gram_verification)
    scan_batch: int = 32
    eager_indexing: bool = False
    padded_qgrams: bool = True
    deduplicate: bool = True

    def __post_init__(self) -> None:
        if not self.policy or not isinstance(self.policy, str):
            raise ValueError(f"policy must be a non-empty name, got {self.policy!r}")
        if self.parent_size is not None and self.parent_size <= 0:
            raise ValueError(f"parent_size must be positive, got {self.parent_size}")
        if self.scan_batch < 1:
            raise ValueError(f"scan_batch must be at least 1, got {self.scan_batch}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be positive, got {self.deadline_seconds}"
            )
        if self.gram_verification not in GRAM_VERIFICATION_MODES:
            raise ValueError(
                f"gram_verification must be one of {GRAM_VERIFICATION_MODES}, "
                f"got {self.gram_verification!r}"
            )
        if self.budget_fraction is not None:
            if self.cost_budget is not None:
                raise ValueError(
                    "pass either cost_budget (absolute) or budget_fraction "
                    "(relative), not both"
                )
            if not 0.0 < self.budget_fraction <= 1.0:
                raise ValueError(
                    f"budget_fraction must be in (0, 1], got {self.budget_fraction}"
                )

    # -- constructors ----------------------------------------------------------------

    @classmethod
    def paper_defaults(cls, **overrides: Any) -> "RunConfig":
        """The paper's tuned operating point (Sec. 4.2), MAR policy."""
        return cls(**overrides)

    @classmethod
    def from_thresholds(
        cls, thresholds: Optional[Thresholds], **overrides: Any
    ) -> "RunConfig":
        """Build a configuration around an existing ``Thresholds`` instance.

        ``None`` falls back to the paper defaults; every other
        :class:`RunConfig` field can be overridden by keyword.
        """
        return cls(thresholds=thresholds or Thresholds(), **overrides)

    def with_overrides(self, **overrides: Any) -> "RunConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **overrides)

    # -- resolution helpers ------------------------------------------------------------

    def resolve_parent_size(self, parent_input: object) -> int:
        """``|R|`` for this run: the explicit ``parent_size``, else the input's length.

        Raises
        ------
        ValueError
            When no explicit ``parent_size`` was configured and the parent
            input is an unsized stream; the error names the parameter so
            the caller knows exactly what to provide.
        """
        if self.parent_size is not None:
            return self.parent_size
        size = input_size(parent_input)
        if size is None:
            raise ValueError(
                "the parent input is a stream of unknown length, so |R| cannot "
                "be inferred: pass parent_size= (the expected parent/reference "
                "table size) to RunConfig / JoinSession / AdaptiveJoinProcessor"
            )
        return size

    def resolve_budget(self, total_steps: Optional[int]) -> Optional[CostBudget]:
        """The effective :class:`CostBudget` of this run, if any.

        An absolute ``cost_budget`` is returned as-is.  A relative
        ``budget_fraction`` needs the total step count (the combined size
        of both inputs) to resolve the cost gap; pass ``None`` when the
        inputs are unsized and a clear error is raised.
        """
        if self.cost_budget is not None:
            return self.cost_budget
        if self.budget_fraction is None:
            return None
        if total_steps is None:
            raise ValueError(
                "budget_fraction needs the total input size to resolve the "
                "cost gap, but at least one input is an unsized stream: pass "
                "an absolute cost_budget instead"
            )
        return CostBudget.relative(
            self.budget_fraction, total_steps, cost_model=self.cost_model
        )

    # -- reporting ---------------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Flat summary used by benchmark reports and traces."""
        return {
            "policy": self.policy,
            "parent_side": self.parent_side.value,
            "parent_size": self.parent_size,
            "initial_state": (
                self.initial_state.label if self.initial_state else None
            ),
            "allow_source_identification": self.allow_source_identification,
            "budget_fraction": self.budget_fraction,
            "deadline_seconds": self.deadline_seconds,
            "gram_verification": self.gram_verification,
            "max_absolute_cost": (
                self.cost_budget.max_absolute_cost if self.cost_budget else None
            ),
            "use_prefix_filter": self.use_prefix_filter,
            "use_length_filter": self.use_length_filter,
            "scan_batch": self.scan_batch,
            "eager_indexing": self.eager_indexing,
            **self.thresholds.as_dict(),
        }
