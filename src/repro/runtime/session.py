"""JoinSession — the single way adaptive join executions are built and driven.

A session takes two inputs, a join attribute and a
:class:`~repro.runtime.config.RunConfig` and assembles the whole stack:

* the switchable :class:`~repro.joins.engine.SymmetricJoinEngine`;
* an :class:`~repro.runtime.events.EventBus` the engine publishes
  :class:`~repro.joins.engine.StepBatch` /
  :class:`~repro.joins.engine.StepResult` /
  :class:`~repro.joins.base.MatchEvent` /
  :class:`~repro.joins.engine.SwitchRecord` events onto;
* the :class:`~repro.core.monitor.Monitor` and
  :class:`~repro.core.trace.ExecutionTrace`, attached as bus subscribers
  rather than hard-wired callees;
* the four-state machine and a named
  :class:`~repro.runtime.policy.SwitchPolicy` (``"mar"`` by default)
  deciding the operator switches.

``AdaptiveJoinProcessor``, :func:`repro.linkage.api.link_tables`, the
bench harness and the CLI all construct executions through this class, so
parameter plumbing lives in exactly one place.  A session is also the unit
of future parallelism: it owns its engine, bus and policy and shares no
mutable state with other sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

from repro.core.cost_model import CostModel
from repro.core.monitor import Monitor
from repro.core.state_machine import JoinState, StateMachine
from repro.core.trace import ExecutionTrace
from repro.engine.streams import InputLike, as_stream
from repro.engine.tuples import Record, Schema
from repro.joins.base import JoinAttribute, JoinSide, MatchEvent, OperationCounters
from repro.joins.engine import StepBatch, SymmetricJoinEngine
from repro.runtime.config import RunConfig, input_size
from repro.runtime.events import EventBus, TransitionEvent
from repro.runtime.policy import SwitchPolicy, create_policy

#: Batch size used to drain the remaining input once a policy reports no
#: further activation boundary (``next_activation_step() is None``).
_DRAIN_BATCH = 1024


@dataclass
class AdaptiveJoinResult:
    """Everything produced by one adaptive join run."""

    #: All matched pairs, in emission order.  Immutable: callers get a
    #: snapshot, never the session's internal accumulator.
    matches: Tuple[MatchEvent, ...]
    #: The execution trace (state occupancy, transitions, assessments).
    trace: ExecutionTrace
    #: Final processor state.
    final_state: JoinState
    #: Elementary-operation counters accumulated by the engine.
    counters: OperationCounters
    #: Output schema of the joined records.
    output_schema: Schema
    #: Whether the run was interrupted by a cancel token before draining
    #: both inputs (the matches/trace/counters are the partial state at
    #: the cancellation point).
    cancelled: bool = False

    @property
    def result_size(self) -> int:
        """Number of matched pairs produced (``r_abs``)."""
        return len(self.matches)

    @property
    def never_ran(self) -> bool:
        """Cancelled before the first engine step: skipped, not partial.

        The one definition of the skipped-run rule — the parallel
        backends and the jobs streaming path both drop such outcomes
        rather than reporting a shard that did no work.
        """
        return self.cancelled and self.trace.total_steps == 0

    def output_records(self) -> List[Record]:
        """Materialise the joined output records."""
        return [event.output_record(self.output_schema) for event in self.matches]

    def matched_pairs(self) -> List[tuple]:
        """(left ordinal, right ordinal) pairs, useful for completeness checks."""
        return [event.pair_key() for event in self.matches]

    def weighted_cost(self, cost_model: Optional[CostModel] = None) -> float:
        """``c_abs`` under ``cost_model`` (paper weights by default)."""
        return (cost_model or CostModel()).absolute_cost(self.trace)


class JoinSession:
    """One adaptive join execution: engine + event bus + control stack.

    Parameters
    ----------
    left, right:
        The two inputs: tables, streams, or any ``.stream()``-bearing
        source (e.g. a shard input, whose block-backed form reads
        zero-copy from shared columnar buffers).
    attribute:
        Join attribute name (same on both sides) or a
        :class:`~repro.joins.base.JoinAttribute`.
    config:
        The complete run configuration (paper defaults when omitted).
    bus:
        Optional pre-built event bus.  Subscribe observers *before*
        constructing the session — or at any quiescent point — and they
        see every subsequent event.
    policy:
        Optional policy override: an unbound :class:`SwitchPolicy`
        instance or a registered name; defaults to ``config.policy``.
        Passing an instance is the hook for parameterised or ad-hoc
        policies that the pure-data config cannot describe.
    """

    def __init__(
        self,
        left: InputLike,
        right: InputLike,
        attribute: Union[str, JoinAttribute],
        config: Optional[RunConfig] = None,
        bus: Optional[EventBus] = None,
        policy: Optional[Union[str, SwitchPolicy]] = None,
    ) -> None:
        self.config = config = config or RunConfig()
        if isinstance(attribute, str):
            attribute = JoinAttribute(attribute, attribute)
        self.attribute = attribute
        self.bus = bus if bus is not None else EventBus()

        # Normalise both inputs to record streams once, up front: tables
        # wrap in a TableStream, shard inputs contribute their stream view
        # (for block-backed shards a zero-copy RowSliceStream over the
        # shared columnar buffers), streams pass through.  Sizing, parent
        # size resolution and the engine all observe the same objects.
        left = as_stream(left)
        right = as_stream(right)

        # Parent size resolves lazily (first access of `parent_size`): only
        # policies that actually consume |R| — MAR's assessor binds it —
        # force the resolution, so size-free policies (fixed,
        # budget-greedy with an absolute budget) run over unsized streams.
        self._parent_input = left if config.parent_side is JoinSide.LEFT else right
        self._parent_size: Optional[int] = None
        left_size, right_size = input_size(left), input_size(right)
        #: Combined input size (== the step count of a full run), or
        #: ``None`` when either input is an unsized stream.  Consumed by
        #: budget resolution and by policies that project remaining work
        #: (e.g. the ``deadline`` policy).
        self.total_steps: Optional[int] = (
            left_size + right_size
            if left_size is not None and right_size is not None
            else None
        )
        self.cost_budget = config.resolve_budget(self.total_steps)

        if policy is None:
            policy = create_policy(config.policy)
        elif isinstance(policy, str):
            policy = create_policy(policy)
        self.policy = policy
        # Reflect an overriding policy back into the config so reports
        # built from config.as_dict() name the policy actually driving
        # the run (ad-hoc unregistered instances report their class name).
        effective_name = policy.name or type(policy).__name__
        if effective_name != config.policy:
            self.config = config = config.with_overrides(policy=effective_name)
        initial = policy.resolve_initial_state(config)
        self.initial_state = initial

        thresholds = config.thresholds
        self.engine = SymmetricJoinEngine(
            left,
            right,
            attribute,
            similarity_threshold=thresholds.theta_sim,
            q=thresholds.q,
            left_mode=initial.left_mode,
            right_mode=initial.right_mode,
            padded_qgrams=config.padded_qgrams,
            verify_jaccard=config.verify_jaccard,
            use_prefix_filter=config.use_prefix_filter,
            use_length_filter=config.use_length_filter,
            gram_verification=config.gram_verification,
            scan_batch=config.scan_batch,
            eager_indexing=config.eager_indexing,
            deduplicate=config.deduplicate,
            bus=self.bus,
        )
        self.monitor = Monitor(window_size=thresholds.window_size)
        self.state_machine = StateMachine(initial=initial)
        self.trace = ExecutionTrace(initial_state=initial)
        self._matches: List[MatchEvent] = []
        self._finished = False
        self._cancelled = False

        # The session's built-in observers consume the engine's aggregate
        # StepBatch events (one per batch — or per step, as a batch of one —
        # never both), so the engine's fast path skips per-step event
        # construction entirely.  Subscription order fixes the observer
        # order: monitor first, then trace, then match accumulation — the
        # same order the pre-runtime processor loop used (kept for
        # bit-identical traces).
        self.monitor.attach(self.bus)
        self.trace.attach(self.bus, self.state_machine)

        matches_extend = self._matches.extend

        def accumulate(batch: StepBatch) -> None:
            if batch.match_events:
                matches_extend(batch.match_events)

        self._accumulate_handler = self.bus.subscribe(StepBatch, accumulate)
        self._detached = False
        self.policy.bind(self)

    # -- state ---------------------------------------------------------------------

    @property
    def parent_size(self) -> int:
        """``|R|``, resolved on first access (see ``RunConfig.resolve_parent_size``)."""
        if self._parent_size is None:
            self._parent_size = self.config.resolve_parent_size(self._parent_input)
        return self._parent_size

    @property
    def state(self) -> JoinState:
        """Current processor state."""
        return self.state_machine.state

    @property
    def output_schema(self) -> Schema:
        """Schema of the joined output records."""
        return self.engine.output_schema

    @property
    def matches(self) -> Tuple[MatchEvent, ...]:
        """Matched pairs produced so far (immutable snapshot)."""
        return tuple(self._matches)

    @property
    def match_count(self) -> int:
        """Number of matched pairs produced so far (no snapshot cost)."""
        return len(self._matches)

    @property
    def finished(self) -> bool:
        """True once both inputs have been drained."""
        return self._finished

    @property
    def cancelled(self) -> bool:
        """True when a cancel token stopped the run before it finished."""
        return self._cancelled

    @property
    def budget_exhausted(self) -> bool:
        """Whether the policy reports the cost budget as used up."""
        return bool(getattr(self.policy, "budget_exhausted", False))

    # -- control-plane helpers (used by policies) ------------------------------------

    def detach(self) -> None:
        """Remove this session's own subscribers from the bus (idempotent).

        Called automatically when the session finishes, so a caller-owned
        bus can be handed to the *next* session (keeping long-lived
        collectors attached) without the completed session's monitor,
        trace and match accumulator cross-recording the new run.  Running
        two sessions on one bus *concurrently* remains unsupported.
        """
        if self._detached:
            return
        self._detached = True
        self.monitor.detach(self.bus)
        self.trace.detach(self.bus)
        self.bus.unsubscribe(StepBatch, self._accumulate_handler)

    def _mark_finished(self) -> None:
        self._finished = True
        self.detach()

    def mark_cancelled(self) -> None:
        """Latch cancellation and release the bus (the run will not resume).

        Called by :meth:`run_batches` when its cancel token trips, and by
        external drivers (the jobs layer's stream teardown) that stop
        consuming a session mid-run: :attr:`cancelled` latches, the
        session's subscribers detach, and :meth:`result` snapshots the
        partial outcome.  Idempotent.
        """
        self._cancelled = True
        self.detach()

    def force_state(self, state: JoinState, step: int) -> None:
        """Unconditionally move the session to ``state`` (policy override).

        Bypasses guard evaluation: the state machine is forced, the engine
        modes are switched (with catch-up) and a
        :class:`~repro.runtime.events.TransitionEvent` is published.  A
        no-op when already in ``state``.
        """
        state_before = self.state_machine.state
        if state_before is state:
            return
        self.state_machine.force(state, step=step)
        switches = self.engine.set_modes(state.left_mode, state.right_mode)
        self.bus.publish(
            TransitionEvent(step, state_before, state, tuple(switches))
        )

    # -- execution ------------------------------------------------------------------

    def step(self) -> Optional[List[MatchEvent]]:
        """Execute one engine step followed (when due) by one policy activation.

        Returns the match events produced by the step, or ``None`` when
        the join has finished.  Observers (monitor, trace, collectors) are
        notified through the bus during the engine step.
        """
        result = self.engine.step()
        if result is None:
            self._mark_finished()
            return None
        if self.policy.should_activate(result.step):
            self.policy.activate(result.step)
        return result.matches

    def run(self, cancel: Optional[object] = None) -> AdaptiveJoinResult:
        """Run the join to completion and return the full result.

        Drives the engine through its batched stepping API: between two
        policy activations the processor state cannot change, so the
        engine is asked for the whole run of steps up to the policy's next
        activation boundary (:meth:`SwitchPolicy.next_activation_step`) at
        once (:meth:`SymmetricJoinEngine.run_batch`); observers consume
        one aggregate :class:`~repro.joins.engine.StepBatch` per batch, so
        the monitor windows, the trace and the activation points are
        bit-identical to stepping one tuple at a time via :meth:`step`.

        ``cancel`` (anything with an ``is_set()`` method, typically a
        :class:`threading.Event`) stops the run at the next batch
        boundary; the returned result then carries ``cancelled=True``
        with the partial matches/trace/counters.
        """
        for _ in self.run_batches(cancel=cancel):
            pass
        return self.result()

    def run_batches(
        self,
        max_batch: Optional[int] = None,
        cancel: Optional[object] = None,
    ) -> Iterator[List[MatchEvent]]:
        """Drive the join incrementally, yielding each batch's match events.

        The generator behind :meth:`run` and the streaming surface of the
        jobs layer (:meth:`repro.jobs.JobHandle.stream_matches`).  Each
        iteration runs one engine batch — up to the policy's next
        activation boundary, additionally capped at ``max_batch`` steps
        when given — and yields the (possibly empty) list of
        :class:`~repro.joins.base.MatchEvent`\\ s it produced, so a
        consumer sees matches as they are found instead of after the
        run.  Policy activations happen at exactly the same steps as
        under :meth:`run`: capping a batch never crosses an activation
        boundary, it only splits the stretch between two boundaries.

        ``cancel`` is checked between batches (i.e. between engine
        steps, in a quiescent state): once ``cancel.is_set()`` the
        generator stops, the session's observers are detached and
        :attr:`cancelled` latches — :meth:`result` then snapshots the
        partial outcome.
        """
        if max_batch is not None and max_batch < 1:
            raise ValueError(f"max_batch must be at least 1, got {max_batch}")
        engine = self.engine
        policy = self.policy
        while not self._finished:
            if cancel is not None and cancel.is_set():
                self.mark_cancelled()
                return
            boundary = policy.next_activation_step(engine.step_count)
            if boundary is None:
                chunk = _DRAIN_BATCH
            elif boundary <= engine.step_count:
                raise ValueError(
                    f"policy {policy.name or type(policy).__name__!r} returned "
                    f"next_activation_step {boundary} ≤ current step "
                    f"{engine.step_count}"
                )
            else:
                chunk = boundary - engine.step_count
            if max_batch is not None and chunk > max_batch:
                chunk = max_batch
            batch = engine.run_batch(chunk)
            if batch is None:
                self._mark_finished()
                break
            last_step = batch.last_step
            if policy.should_activate(last_step):
                policy.activate(last_step)
            if batch.count < chunk:
                self._mark_finished()
            yield batch.match_events

    def result(self) -> AdaptiveJoinResult:
        """Snapshot the current outcome (also valid mid-run)."""
        return AdaptiveJoinResult(
            matches=tuple(self._matches),
            trace=self.trace,
            final_state=self.state_machine.state,
            counters=self.engine.counters(),
            output_schema=self.engine.output_schema,
            cancelled=self._cancelled,
        )
