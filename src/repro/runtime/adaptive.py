"""The adaptive join processor (paper Sec. 3).

:class:`AdaptiveJoinProcessor` is the paper-facing entry point for the
MAR-controlled adaptive join.  It lives in the runtime layer because it
is, since the PR-2 runtime refactor, a thin façade over
:class:`~repro.runtime.session.JoinSession` — the historical home
(``repro.core.adaptive``) survives as a deprecation shim, because a
``core`` module importing upward into ``repro.runtime`` inverted the
layer order (the RL002 waiver this relocation retired).  The session
builds the engine + control stack from a
:class:`~repro.runtime.config.RunConfig` and drives it, with

1. a :class:`~repro.joins.engine.SymmetricJoinEngine` executing the join
   step by step (one step = one quiescent-state transition) and
   publishing every step onto the session's event bus;
2. a :class:`~repro.core.monitor.Monitor` observing each step as a bus
   subscriber;
3. a :class:`~repro.runtime.policy.SwitchPolicy` — by default the paper's
   MAR loop (:class:`~repro.runtime.policy.MarPolicy`): every ``δ_adapt``
   steps an :class:`~repro.core.assessor.Assessor` evaluates the σ / µ / π
   predicates and a :class:`~repro.core.responder.Responder` maps the
   assessment onto the four-state machine of Fig. 4, switching the
   engine's per-side operators (with the hash-table catch-up of Sec. 2.3);
4. an :class:`~repro.core.trace.ExecutionTrace` recording state occupancy,
   transitions and assessments (also a bus subscriber) for the cost model
   and the Fig. 7/8 breakdowns.

The processor starts, optimistically, in ``lex/rex`` (both sides exact).

Two entry points are provided:

* :meth:`AdaptiveJoinProcessor.run` — run the whole join and return an
  :class:`AdaptiveJoinResult` (the mode used by the benchmarks);
* :class:`AdaptiveSymmetricJoin` — an iterator-protocol operator wrapper,
  so the adaptive join can be dropped into a query plan like any other
  physical operator.

Code that needs more control — a different switch policy, extra event
subscribers, declarative configuration — should use
:class:`~repro.runtime.session.JoinSession` directly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.core.budget import CostBudget
from repro.core.cost_model import CostModel
from repro.core.monitor import Monitor
from repro.core.state_machine import JoinState, StateMachine
from repro.core.thresholds import Thresholds
from repro.core.trace import ExecutionTrace
from repro.engine.iterators import Operator
from repro.engine.tuples import Record, Schema
from repro.joins.base import JoinAttribute, JoinSide, MatchEvent
from repro.joins.engine import SymmetricJoinEngine
from repro.runtime.config import RunConfig
from repro.runtime.session import AdaptiveJoinResult, InputLike, JoinSession

__all__ = [
    "AdaptiveJoinProcessor",
    "AdaptiveJoinResult",
    "AdaptiveSymmetricJoin",
]


class AdaptiveJoinProcessor:
    """Adaptive record-linkage join with a MAR control loop.

    Parameters
    ----------
    left, right:
        The two inputs (tables or streams).  By default the *left* input is
        treated as the parent/reference table of the parent-child
        expectation (Sec. 3.2); see ``parent_side``.
    attribute:
        Join attribute name (same on both sides) or a
        :class:`~repro.joins.base.JoinAttribute`.
    thresholds:
        The tuning parameters of Table 3; defaults to the paper's operating
        point.
    parent_size:
        ``|R|``, the expected size of the parent table.  If omitted it is
        resolved from the parent input when it is sized (a table or a
        bounded stream); for true streams the caller must provide the
        estimate (see :meth:`RunConfig.resolve_parent_size`).
    parent_side:
        Which input plays the parent role (default left).
    initial_state:
        Processor state at start; ``None`` (the default) lets the policy
        choose (``lex/rex`` for MAR, the optimistic choice).
    allow_source_identification:
        Forwarded to the responder; False restricts the machine to the two
        symmetric states (ablation).
    cost_budget:
        Optional :class:`~repro.core.budget.CostBudget` capping the weighted
        execution cost.  Once the budget is exhausted (checked at every
        control-loop activation) the processor is pinned to ``lex/rex`` for
        the remainder of the run — the user-controlled completeness/cost
        knob the paper's conclusions call for.
    cost_model:
        Cost model used to account the budget (paper weights by default).
    policy:
        Name of the registered switch policy to drive the run (default
        ``"mar"``, the paper's control loop; see
        :mod:`repro.runtime.policy`).
    """

    def __init__(
        self,
        left: InputLike,
        right: InputLike,
        attribute: Union[str, JoinAttribute],
        thresholds: Optional[Thresholds] = None,
        parent_size: Optional[int] = None,
        parent_side: JoinSide = JoinSide.LEFT,
        initial_state: Optional[JoinState] = None,
        allow_source_identification: bool = True,
        cost_budget: Optional[CostBudget] = None,
        cost_model: Optional[CostModel] = None,
        policy: str = "mar",
    ) -> None:
        config = RunConfig(
            thresholds=thresholds or Thresholds(),
            policy=policy,
            parent_side=parent_side,
            parent_size=parent_size,
            initial_state=initial_state,
            allow_source_identification=allow_source_identification,
            cost_budget=cost_budget,
            cost_model=cost_model or CostModel(),
        )
        self.session = JoinSession(left, right, attribute, config)

    # -- configuration views --------------------------------------------------------

    @property
    def config(self) -> RunConfig:
        """The declarative configuration the session was built from."""
        return self.session.config

    @property
    def thresholds(self) -> Thresholds:
        """The tuning parameters of Table 3."""
        return self.session.config.thresholds

    @property
    def attribute(self) -> JoinAttribute:
        """The join attribute pair."""
        return self.session.attribute

    @property
    def parent_side(self) -> JoinSide:
        """Which input plays the parent role."""
        return self.session.config.parent_side

    @property
    def parent_size(self) -> int:
        """``|R|``, the resolved parent-table size."""
        return self.session.parent_size

    @property
    def cost_budget(self) -> Optional[CostBudget]:
        """The effective cost budget, if any."""
        return self.session.cost_budget

    @property
    def cost_model(self) -> CostModel:
        """The cost model used for budget accounting."""
        return self.session.config.cost_model

    # -- component views (kept for introspection and tests) --------------------------

    @property
    def engine(self) -> SymmetricJoinEngine:
        """The underlying switchable symmetric-join engine."""
        return self.session.engine

    @property
    def monitor(self) -> Monitor:
        """The monitor observing the run."""
        return self.session.monitor

    @property
    def state_machine(self) -> StateMachine:
        """The four-state machine tracking the processor configuration."""
        return self.session.state_machine

    @property
    def trace(self) -> ExecutionTrace:
        """The execution trace accumulated so far."""
        return self.session.trace

    @property
    def assessor(self):
        """The MAR assessor (``None`` for policies without one)."""
        return getattr(self.session.policy, "assessor", None)

    @property
    def responder(self):
        """The MAR responder (``None`` for policies without one)."""
        return getattr(self.session.policy, "responder", None)

    # -- state ---------------------------------------------------------------------

    @property
    def state(self) -> JoinState:
        """Current processor state."""
        return self.session.state

    @property
    def output_schema(self) -> Schema:
        """Schema of the joined output records."""
        return self.session.output_schema

    @property
    def matches(self) -> Tuple[MatchEvent, ...]:
        """Matched pairs produced so far (immutable snapshot).

        Each access copies the accumulator (O(matches so far)); callers
        polling per step should read :attr:`match_count` instead.
        """
        return self.session.matches

    @property
    def match_count(self) -> int:
        """Number of matched pairs produced so far (no snapshot cost)."""
        return self.session.match_count

    @property
    def finished(self) -> bool:
        """True once both inputs have been drained."""
        return self.session.finished

    @property
    def budget_exhausted(self) -> bool:
        """Whether the cost budget (if any) has been used up."""
        return self.session.budget_exhausted

    # -- execution ------------------------------------------------------------------

    def step(self) -> Optional[List[MatchEvent]]:
        """Execute one join step followed (when due) by one control-loop activation.

        Returns the match events produced by the step, or ``None`` when the
        join has finished.
        """
        return self.session.step()

    def run(self) -> AdaptiveJoinResult:
        """Run the join to completion and return the full result."""
        return self.session.run()


class AdaptiveSymmetricJoin(Operator):
    """Iterator-protocol wrapper around :class:`AdaptiveJoinProcessor`.

    Lets the adaptive join participate in ordinary pipelined plans: each
    ``next_record`` call advances the underlying processor until a match is
    available and returns the joined record.
    """

    def __init__(
        self,
        left: InputLike,
        right: InputLike,
        attribute: Union[str, JoinAttribute],
        thresholds: Optional[Thresholds] = None,
        parent_size: Optional[int] = None,
        parent_side: JoinSide = JoinSide.LEFT,
        policy: str = "mar",
        name: str = "",
    ) -> None:
        self._processor = AdaptiveJoinProcessor(
            left,
            right,
            attribute,
            thresholds=thresholds,
            parent_size=parent_size,
            parent_side=parent_side,
            policy=policy,
        )
        super().__init__(self._processor.output_schema, name=name or "AdaptiveJoin")
        self._pending: List[MatchEvent] = []

    @property
    def processor(self) -> AdaptiveJoinProcessor:
        """The wrapped adaptive processor (for inspection after the run)."""
        return self._processor

    def _do_open(self) -> None:
        self._pending = []

    def _do_next(self) -> Optional[Record]:
        while not self._pending:
            matches = self._processor.step()
            if matches is None:
                return None
            if matches:
                self._pending.extend(matches)
        event = self._pending.pop(0)
        return event.output_record(self.output_schema)

    def is_quiescent(self) -> bool:
        """Quiescent iff no produced-but-unreturned matches are pending."""
        return not self._pending
