"""The event bus of the layered runtime.

Executions built by :class:`~repro.runtime.session.JoinSession` no longer
call their observers directly: the engine and the switch policy *publish*
typed events onto an :class:`EventBus`, and every interested component —
the :class:`~repro.core.monitor.Monitor`, the
:class:`~repro.core.trace.ExecutionTrace`, ad-hoc metrics collectors —
*subscribes* to the event types it cares about.  This decouples the four
layers (engine → runtime → linkage/bench/cli): new observers attach
without touching the execution loop, and the loop never grows
observer-specific plumbing again.

Event taxonomy
--------------
Events are dispatched **by concrete type**; any object can be an event.
The runtime publishes:

* :class:`~repro.joins.engine.StepBatch` — one aggregate per executed
  engine batch (or per single step, as a batch of one); the stream the
  runtime's built-in observers (monitor, trace, session accumulator,
  progress collector) consume — every executed step is covered by exactly
  one published batch;
* :class:`~repro.joins.engine.StepResult` — one per engine step, emitted
  by the engine *only on the per-step execution paths* (``step`` /
  ``run_steps``; the batched fast path skips per-step events when nothing
  subscribes to them — attaching a ``StepResult`` subscriber before the
  run is what opts a session into per-step granularity);
* :class:`~repro.joins.base.MatchEvent` — one per matched pair, emitted by
  the engine *only when at least one subscriber is registered* (so the hot
  probe loop never pays for unobserved matches);
* :class:`~repro.joins.engine.SwitchRecord` — one per per-side operator
  switch performed by the engine;
* :class:`TransitionEvent` — one per state-machine transition enacted by a
  switch policy (a transition groups the per-side switches it caused);
* :class:`AssessmentEvent` — one per control-loop activation of the MAR
  policy, with the σ/µ/π verdict and the evaluated guards;
* :class:`ShardEvent` / :class:`ShardCompleted` — shard-tagged wrappers
  and per-shard lifecycle events published by the sharded execution
  layer (:mod:`repro.runtime.parallel`) on an ``AggregatedEventBus``;
* :class:`ShardFailed` / :class:`ShardRetrying` — the failure-semantics
  lifecycle: one ``ShardFailed`` per failed attempt (with the wrapped
  error and whether a retry follows), one ``ShardRetrying`` per retry
  scheduled, on every backend.

Ordering guarantee: for one engine step, the ``StepResult`` (when the
per-step path is active) is published first, then the step's
``MatchEvent``\\ s in emission order, then the ``StepBatch`` covering the
step(s) — the batch always arrives after every per-step event it
aggregates.  Subscribers to the same event type run in subscription order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Type

# TransitionEvent / AssessmentEvent are *consumed* by core observers
# (ExecutionTrace), so the dataclasses live one layer down in
# repro.core.events; this re-export keeps every historical import path
# working (repro lint RL002: core must not import upward from runtime).
from repro.core.events import AssessmentEvent, TransitionEvent

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.runtime.session import AdaptiveJoinResult

__all__ = [
    "AssessmentEvent",
    "EventBus",
    "Handler",
    "ShardCompleted",
    "ShardEvent",
    "ShardFailed",
    "ShardRetrying",
    "TransitionEvent",
]

Handler = Callable[[object], None]


@dataclass(frozen=True, slots=True)
class ShardEvent:
    """A shard session's event, tagged with the shard it came from.

    Published on an :class:`~repro.runtime.parallel.AggregatedEventBus`
    *in addition to* the raw event, so shard-agnostic collectors keep
    working unchanged while shard-aware observers subscribe to this
    wrapper.
    """

    shard_id: int
    event: object


@dataclass(frozen=True, slots=True)
class ShardCompleted:
    """One shard finished; published by the executor on every backend.

    Always published in shard-id order, so subscribers see a
    deterministic lifecycle stream regardless of backend: the serial
    backend completes shards in that order; the process and async
    backends stream shard *k*'s event as soon as shards ``0..k`` have
    all completed (head-of-line, a live progress feed); the thread
    backend gathers first and publishes after.  The natural feed for
    progress observers (:class:`~repro.runtime.collectors.ProgressCollector`).
    """

    shard_id: int
    result: "AdaptiveJoinResult"
    wall_seconds: float


@dataclass(frozen=True, slots=True)
class ShardFailed:
    """One shard attempt failed; published before the policy reacts.

    ``error`` is the wrapped
    :class:`~repro.runtime.errors.ShardExecutionError` (shard id,
    attempt, elapsed batches, cause).  ``will_retry`` tells observers
    whether a :class:`ShardRetrying` follows or the failure is terminal
    (re-raised under fail-fast, dropped-and-recorded under degrade).
    """

    shard_id: int
    attempt: int
    error: object
    will_retry: bool


@dataclass(frozen=True, slots=True)
class ShardRetrying:
    """A failed shard is being re-run (after ``delay_seconds`` backoff)."""

    shard_id: int
    next_attempt: int
    delay_seconds: float


class EventBus:
    """A minimal synchronous, type-keyed publish/subscribe bus.

    Handlers are registered per concrete event type and invoked in
    subscription order, synchronously, on :meth:`publish`.  The bus is the
    runtime's hot path (one ``StepResult`` per scanned tuple flows through
    it), so dispatch is a single dict lookup plus a loop — no inheritance
    walking, no filtering, no queues.
    """

    __slots__ = ("_handlers",)

    def __init__(self) -> None:
        self._handlers: Dict[Type, List[Handler]] = {}

    def subscribe(self, event_type: Type, handler: Handler) -> Handler:
        """Register ``handler`` for events of exactly ``event_type``.

        Returns the handler so the call can be used to keep a reference
        for :meth:`unsubscribe`.
        """
        if not callable(handler):
            raise TypeError(f"handler must be callable, got {handler!r}")
        self._handlers.setdefault(event_type, []).append(handler)
        return handler

    def unsubscribe(self, event_type: Type, handler: Handler) -> None:
        """Remove a previously registered handler (no-op if absent).

        The handler list object itself survives (emptied, not dropped), so
        publishers holding a :meth:`channel` reference stay current.
        """
        handlers = self._handlers.get(event_type)
        if handlers is None:
            return
        try:
            handlers.remove(handler)
        except ValueError:
            return

    def has_subscribers(self, event_type: Type) -> bool:
        """Whether any handler is registered for ``event_type``.

        Publishers of high-volume events (per-match events) check this
        before constructing/publishing, so unobserved event streams cost
        nothing.
        """
        return bool(self._handlers.get(event_type))

    def channel(self, event_type: Type) -> List[Handler]:
        """The *live* handler list for ``event_type`` (hot-path accessor).

        High-frequency publishers (the engine publishes one ``StepResult``
        per scanned tuple) may cache this list once and iterate it
        directly, skipping the per-event dict lookup of :meth:`publish`.
        The list object is stable for the lifetime of the bus — later
        ``subscribe`` / ``unsubscribe`` calls mutate it in place — and an
        empty list is falsy, so ``if channel:`` doubles as the
        has-subscribers check.
        """
        return self._handlers.setdefault(event_type, [])

    def subscriber_count(self, event_type: Type) -> int:
        """Number of handlers registered for ``event_type``."""
        return len(self._handlers.get(event_type, ()))

    def publish(self, event: object) -> None:
        """Dispatch ``event`` to every handler of its concrete type."""
        handlers = self._handlers.get(type(event))
        if handlers is None:
            return
        for handler in handlers:
            handler(event)
