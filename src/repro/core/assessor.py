"""The Assessor of the MAR control loop (paper Sec. 3.2 and 3.5, Table 2).

The assessor turns the monitor's raw observations into the three predicate
families the responder needs:

``σ(t)``
    There is a statistically significant shortfall in the observed result
    size: under the parent-child binomial model of Sec. 3.2,
    ``P(O ≤ observed) ≤ θ_out`` (Eq. 1).

``µ_i(t)``
    Input ``i`` is *unlikely to be currently perturbed*: the fraction of
    window steps with an approximate match attributed to ``i`` is at most
    ``θ_curpert`` (count- or fraction-valued, see
    :class:`~repro.core.thresholds.Thresholds`).

``π_i(t)``
    Input ``i`` is *unlikely to have been perturbed in the past*: the number
    of past assessments at which ``i`` looked perturbed (``¬µ_i``) is at
    most ``θ_pastpert``.  (The paper's Table 2 literally sums ``I(µ_i)``,
    i.e. the *unperturbed* evaluations, but its prose — "how often in the
    past a high density of approximate matches have been observed" — makes
    clear the count is over perturbed evaluations; we follow the prose.)

The assessor is also the component that decides *when* the responder is
activated: only every ``δ_adapt`` steps (Sec. 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.monitor import Observation
from repro.core.thresholds import Thresholds
from repro.joins.base import JoinSide
from repro.stats.completeness import CompletenessModel, ResultSizeObservation
from repro.stats.windows import BooleanHistory


@dataclass(frozen=True)
class Assessment:
    """The assessor's verdict at one activation of the control loop."""

    step: int
    sigma: bool
    mu: Dict[JoinSide, bool]
    pi: Dict[JoinSide, bool]
    #: Whether approximate-match evidence could have been collected in the
    #: current window (False while only exact operators have been running).
    evidence_available: bool
    #: The left-tail probability of Eq. 1 (for reporting / traces).
    outlier_probability: float
    #: Expected minus observed matches under the binomial model.
    shortfall: float

    @property
    def mu_left(self) -> bool:
        """µ_left — the left input looks currently unperturbed."""
        return self.mu[JoinSide.LEFT]

    @property
    def mu_right(self) -> bool:
        """µ_right — the right input looks currently unperturbed."""
        return self.mu[JoinSide.RIGHT]

    @property
    def pi_left(self) -> bool:
        """π_left — the left input has rarely looked perturbed in the past."""
        return self.pi[JoinSide.LEFT]

    @property
    def pi_right(self) -> bool:
        """π_right — the right input has rarely looked perturbed in the past."""
        return self.pi[JoinSide.RIGHT]


class Assessor:
    """Evaluates the σ / µ / π predicates from monitor observations.

    Parameters
    ----------
    thresholds:
        The tuning parameters (Table 3).
    parent_size:
        ``|R|``, the size of the parent (reference) table, needed by the
        binomial completeness model.
    parent_side:
        Which join input plays the parent role (default: left).  The other
        side is the child whose tuples are each expected to match exactly
        one parent tuple.
    """

    def __init__(
        self,
        thresholds: Thresholds,
        parent_size: int,
        parent_side: JoinSide = JoinSide.LEFT,
    ) -> None:
        self.thresholds = thresholds
        self.parent_side = parent_side
        self.model = CompletenessModel(
            parent_size=parent_size, outlier_threshold=thresholds.theta_out
        )
        self._perturbation_history: Dict[JoinSide, BooleanHistory] = {
            side: BooleanHistory() for side in JoinSide
        }
        self._last_assessment_step: Optional[int] = None

    # -- activation gating ---------------------------------------------------------

    def should_assess(self, step: int) -> bool:
        """Whether the control loop should activate at ``step``.

        True every ``δ_adapt`` steps (and never twice for the same step).
        """
        if step <= 0 or step % self.thresholds.delta_adapt != 0:
            return False
        if self._last_assessment_step == step:
            return False
        return True

    # -- assessment ---------------------------------------------------------------

    def assess(self, observation: Observation) -> Assessment:
        """Evaluate all predicates for ``observation`` and update the histories."""
        self._last_assessment_step = observation.step

        child_side = self.parent_side.other
        result_observation = ResultSizeObservation(
            observed_matches=observation.observed_matches,
            child_scanned=observation.scanned(child_side),
            parent_scanned=observation.scanned(self.parent_side),
            step=observation.step,
        )
        outlier_probability = (
            self.model.observation_probability(result_observation)
            if result_observation.child_scanned > 0
            else 1.0
        )
        sigma = self.model.is_outlier(result_observation)
        shortfall = self.model.shortfall(result_observation)

        mu_threshold = self.thresholds.current_perturbation_fraction
        mu = {
            side: observation.approx_window_fractions[side] <= mu_threshold
            for side in JoinSide
        }
        evidence_available = observation.evidence_available

        # Update the perturbation histories only when the window actually
        # carried evidence; counting vacuous "unperturbed" verdicts would
        # dilute π for no reason.
        if evidence_available:
            for side in JoinSide:
                self._perturbation_history[side].record(not mu[side])

        pi = {
            side: self._perturbation_history[side].true_count
            <= self.thresholds.past_perturbation_limit
            for side in JoinSide
        }

        return Assessment(
            step=observation.step,
            sigma=sigma,
            mu=mu,
            pi=pi,
            evidence_available=evidence_available,
            outlier_probability=outlier_probability,
            shortfall=shortfall,
        )

    # -- introspection -------------------------------------------------------------

    def perturbed_assessments(self, side: JoinSide) -> int:
        """How many past assessments judged ``side`` to be perturbed."""
        return self._perturbation_history[side].true_count
