"""The Monitor of the MAR control loop (paper Sec. 3, Fig. 1).

The monitor observes the query processor while it runs and exposes, at any
step ``t``:

* the observed result size ``O_t`` (matched pairs emitted so far);
* how many tuples have been scanned from each input;
* ``A_{t,W}`` — per input side, how many of the last ``W`` steps produced an
  approximate (non-exact) match attributable to that side;
* whether any approximate matching has actually been *possible* within the
  window (no approximate operator active ⇒ the ``µ`` predicates carry no
  evidence);
* the similarity values of recent matches (the "sliding window of similarity
  values" the paper mentions), summarised as the minimum similarity seen in
  the window.

Attribution of a non-exact match to a side follows Sec. 3.3: if the stored
partner of the pair had already been matched exactly before, the *probing*
(freshly scanned) tuple must be the variant and the event is attributed to
the probing side only (and symmetrically when the probing tuple is the one
with the exact-match flag).  Matches with no attribution evidence do not,
by default, count against either side's window: the ``µ`` predicates are
meant to capture *specific* evidence that one input is perturbed, and the
"assume variants occur in both tables" default of the paper is already
expressed by the responder's blanket transition to ``lap/rap``.  Pass
``count_unattributed_against_both=True`` to revert to the conservative
accounting in which unattributed approximate matches raise both windows
(this suppresses the hybrid states almost entirely; the choice is recorded
in DESIGN.md).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import repeat
from typing import Deque, Dict, List

from repro.joins.base import JoinMode, JoinSide
from repro.joins.engine import StepBatch, StepResult
from repro.stats.windows import SlidingWindowCounter


@dataclass(frozen=True)
class Observation:
    """A snapshot of the monitored variables at one step."""

    step: int
    observed_matches: int
    left_scanned: int
    right_scanned: int
    #: Per-side count of window steps with an attributed approximate match.
    approx_window_counts: Dict[JoinSide, int]
    #: Per-side ``A_{t,W} / W`` fraction.
    approx_window_fractions: Dict[JoinSide, float]
    #: Number of window steps during which an approximate operator was active.
    approx_active_steps: int
    #: Lowest similarity among matches produced inside the window (1.0 when
    #: the window holds no matches).
    min_window_similarity: float

    def scanned(self, side: JoinSide) -> int:
        """Tuples scanned from ``side`` so far."""
        return self.left_scanned if side is JoinSide.LEFT else self.right_scanned

    @property
    def evidence_available(self) -> bool:
        """Whether the window could have recorded approximate matches at all."""
        return self.approx_active_steps > 0


class Monitor:
    """Collects the observable quantities the assessor needs.

    Parameters
    ----------
    window_size:
        ``W``, the length (in steps) of the sliding windows.
    count_unattributed_against_both:
        Whether non-exact matches with no attribution evidence should raise
        both sides' windows (see module docstring).  Default False.
    """

    def __init__(
        self,
        window_size: int,
        count_unattributed_against_both: bool = False,
    ) -> None:
        if window_size <= 0:
            raise ValueError(f"window size must be positive, got {window_size}")
        self.window_size = window_size
        self.count_unattributed_against_both = count_unattributed_against_both
        self._approx_match_windows: Dict[JoinSide, SlidingWindowCounter] = {
            side: SlidingWindowCounter(window_size) for side in JoinSide
        }
        self._approx_active_window = SlidingWindowCounter(window_size)
        self._min_similarity_window: Deque[float] = deque(maxlen=window_size)
        self._observed_matches = 0
        self._scanned: Dict[JoinSide, int] = {JoinSide.LEFT: 0, JoinSide.RIGHT: 0}
        self._step = 0

    # -- observation -------------------------------------------------------------

    def attach(self, bus) -> "Monitor":
        """Subscribe this monitor to a runtime event bus.

        The monitor consumes the engine's aggregate
        :class:`~repro.joins.engine.StepBatch` events: every executed step
        is covered by exactly one published batch (the fast-path aggregate,
        or a batch of one from single-stepping), so batch observation is
        bit-identical to observing every step — see :meth:`observe_batch`.
        Returns ``self`` so construction and attachment chain.
        """
        bus.subscribe(StepBatch, self.observe_batch)
        return self

    def detach(self, bus) -> None:
        """Remove this monitor's subscription from ``bus`` (no-op if absent)."""
        bus.unsubscribe(StepBatch, self.observe_batch)

    def observe_step(self, result: StepResult) -> None:
        """Record one engine step."""
        self._step = result.step
        self._scanned[result.side] += 1
        self._observed_matches += len(result.matches)

        attributed = {JoinSide.LEFT: False, JoinSide.RIGHT: False}
        step_min_similarity = 1.0
        for event in result.matches:
            step_min_similarity = min(step_min_similarity, event.similarity)
            if event.exact_value_match:
                continue
            if event.variant_evidence is not None:
                attributed[event.variant_evidence] = True
            elif self.count_unattributed_against_both:
                attributed[JoinSide.LEFT] = True
                attributed[JoinSide.RIGHT] = True
        for side in JoinSide:
            self._approx_match_windows[side].record(attributed[side])
        self._approx_active_window.record(result.mode is JoinMode.APPROXIMATE)
        # Track the lowest similarity inside the window with a bounded deque
        # (one entry per step; maxlen evicts the oldest automatically).
        self._min_similarity_window.append(
            step_min_similarity if result.matches else 1.0
        )

    def observe_batch(self, batch: StepBatch) -> None:
        """Record a contiguous run of engine steps in one update.

        Bit-identical to calling :meth:`observe_step` for each step of the
        batch: totals are simple sums, and the sliding windows advance by
        runs — matchless steps form runs of identical window entries, so
        only the (typically sparse) steps that produced matches are touched
        individually.  The approximate-activity window needs the per-step
        scan side only when the two sides run in different modes; the batch
        carries ``sides`` exactly in that case.
        """
        count = batch.count
        if count <= 0:
            return
        self._step = batch.first_step + count - 1
        self._scanned[JoinSide.LEFT] += batch.left_steps
        self._scanned[JoinSide.RIGHT] += batch.right_steps
        matches = batch.match_events
        self._observed_matches += len(matches)

        left_approx = batch.left_mode is JoinMode.APPROXIMATE
        right_approx = batch.right_mode is JoinMode.APPROXIMATE
        if left_approx == right_approx:
            self._approx_active_window.record_run(left_approx, count)
        else:
            # Hybrid state: activity depends on which side each step scanned.
            record_active = self._approx_active_window.record
            for side in batch.sides:
                record_active(
                    left_approx if side is JoinSide.LEFT else right_approx
                )

        left_window = self._approx_match_windows[JoinSide.LEFT]
        right_window = self._approx_match_windows[JoinSide.RIGHT]
        if not matches:
            left_window.record_run(False, count)
            right_window.record_run(False, count)
            self._record_similarity_run(count)
            return

        # Group match events by step (events arrive in step order, so the
        # dict iterates in ascending step order): per match step we need the
        # two attribution booleans and the step's minimum similarity.
        per_step: Dict[int, List] = {}
        both = self.count_unattributed_against_both
        for event in matches:
            entry = per_step.get(event.step)
            if entry is None:
                entry = per_step[event.step] = [False, False, 1.0]
            if event.similarity < entry[2]:
                entry[2] = event.similarity
            if event.exact_value_match:
                continue
            evidence = event.variant_evidence
            if evidence is not None:
                entry[0 if evidence is JoinSide.LEFT else 1] = True
            elif both:
                entry[0] = True
                entry[1] = True

        previous = batch.first_step - 1
        for step, (left_hit, right_hit, min_similarity) in per_step.items():
            gap = step - previous - 1
            if gap:
                left_window.record_run(False, gap)
                right_window.record_run(False, gap)
                self._record_similarity_run(gap)
            left_window.record(left_hit)
            right_window.record(right_hit)
            self._min_similarity_window.append(min_similarity)
            previous = step
        tail = self._step - previous
        if tail:
            left_window.record_run(False, tail)
            right_window.record_run(False, tail)
            self._record_similarity_run(tail)

    def _record_similarity_run(self, count: int) -> None:
        """Append ``count`` matchless-step entries (1.0) to the window."""
        window = self._min_similarity_window
        window.extend(repeat(1.0, min(count, self.window_size)))

    # -- reporting ---------------------------------------------------------------

    @property
    def step(self) -> int:
        """Most recent step observed."""
        return self._step

    @property
    def observed_matches(self) -> int:
        """Result size ``O_t`` observed so far."""
        return self._observed_matches

    def scanned(self, side: JoinSide) -> int:
        """Tuples scanned from ``side`` so far."""
        return self._scanned[side]

    def observation(self) -> Observation:
        """Return the current snapshot of all monitored variables."""
        counts = {
            side: self._approx_match_windows[side].positives for side in JoinSide
        }
        fractions = {
            side: self._approx_match_windows[side].fraction for side in JoinSide
        }
        return Observation(
            step=self._step,
            observed_matches=self._observed_matches,
            left_scanned=self._scanned[JoinSide.LEFT],
            right_scanned=self._scanned[JoinSide.RIGHT],
            approx_window_counts=counts,
            approx_window_fractions=fractions,
            approx_active_steps=self._approx_active_window.positives,
            min_window_similarity=(
                min(self._min_similarity_window)
                if self._min_similarity_window
                else 1.0
            ),
        )

    def reset_windows(self) -> None:
        """Clear the sliding windows (used by ablation variants)."""
        for window in self._approx_match_windows.values():
            window.reset()
        self._approx_active_window.reset()
        self._min_similarity_window.clear()
