"""The Monitor of the MAR control loop (paper Sec. 3, Fig. 1).

The monitor observes the query processor while it runs and exposes, at any
step ``t``:

* the observed result size ``O_t`` (matched pairs emitted so far);
* how many tuples have been scanned from each input;
* ``A_{t,W}`` — per input side, how many of the last ``W`` steps produced an
  approximate (non-exact) match attributable to that side;
* whether any approximate matching has actually been *possible* within the
  window (no approximate operator active ⇒ the ``µ`` predicates carry no
  evidence);
* the similarity values of recent matches (the "sliding window of similarity
  values" the paper mentions), summarised as the minimum similarity seen in
  the window.

Attribution of a non-exact match to a side follows Sec. 3.3: if the stored
partner of the pair had already been matched exactly before, the *probing*
(freshly scanned) tuple must be the variant and the event is attributed to
the probing side only (and symmetrically when the probing tuple is the one
with the exact-match flag).  Matches with no attribution evidence do not,
by default, count against either side's window: the ``µ`` predicates are
meant to capture *specific* evidence that one input is perturbed, and the
"assume variants occur in both tables" default of the paper is already
expressed by the responder's blanket transition to ``lap/rap``.  Pass
``count_unattributed_against_both=True`` to revert to the conservative
accounting in which unattributed approximate matches raise both windows
(this suppresses the hybrid states almost entirely; the choice is recorded
in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.joins.base import JoinMode, JoinSide
from repro.joins.engine import StepResult
from repro.stats.windows import SlidingWindowCounter


@dataclass(frozen=True)
class Observation:
    """A snapshot of the monitored variables at one step."""

    step: int
    observed_matches: int
    left_scanned: int
    right_scanned: int
    #: Per-side count of window steps with an attributed approximate match.
    approx_window_counts: Dict[JoinSide, int]
    #: Per-side ``A_{t,W} / W`` fraction.
    approx_window_fractions: Dict[JoinSide, float]
    #: Number of window steps during which an approximate operator was active.
    approx_active_steps: int
    #: Lowest similarity among matches produced inside the window (1.0 when
    #: the window holds no matches).
    min_window_similarity: float

    def scanned(self, side: JoinSide) -> int:
        """Tuples scanned from ``side`` so far."""
        return self.left_scanned if side is JoinSide.LEFT else self.right_scanned

    @property
    def evidence_available(self) -> bool:
        """Whether the window could have recorded approximate matches at all."""
        return self.approx_active_steps > 0


class Monitor:
    """Collects the observable quantities the assessor needs.

    Parameters
    ----------
    window_size:
        ``W``, the length (in steps) of the sliding windows.
    count_unattributed_against_both:
        Whether non-exact matches with no attribution evidence should raise
        both sides' windows (see module docstring).  Default False.
    """

    def __init__(
        self,
        window_size: int,
        count_unattributed_against_both: bool = False,
    ) -> None:
        if window_size <= 0:
            raise ValueError(f"window size must be positive, got {window_size}")
        self.window_size = window_size
        self.count_unattributed_against_both = count_unattributed_against_both
        self._approx_match_windows: Dict[JoinSide, SlidingWindowCounter] = {
            side: SlidingWindowCounter(window_size) for side in JoinSide
        }
        self._approx_active_window = SlidingWindowCounter(window_size)
        self._min_similarity_window: list = []
        self._observed_matches = 0
        self._scanned: Dict[JoinSide, int] = {JoinSide.LEFT: 0, JoinSide.RIGHT: 0}
        self._step = 0

    # -- observation -------------------------------------------------------------

    def attach(self, bus) -> "Monitor":
        """Subscribe this monitor to a runtime event bus.

        After attachment every :class:`~repro.joins.engine.StepResult` the
        engine publishes flows into :meth:`observe_step`; the session loop
        no longer calls the monitor explicitly.  Returns ``self`` so
        construction and attachment chain.
        """
        bus.subscribe(StepResult, self.observe_step)
        return self

    def detach(self, bus) -> None:
        """Remove this monitor's subscription from ``bus`` (no-op if absent)."""
        bus.unsubscribe(StepResult, self.observe_step)

    def observe_step(self, result: StepResult) -> None:
        """Record one engine step."""
        self._step = result.step
        self._scanned[result.side] += 1
        self._observed_matches += len(result.matches)

        attributed = {JoinSide.LEFT: False, JoinSide.RIGHT: False}
        step_min_similarity = 1.0
        for event in result.matches:
            step_min_similarity = min(step_min_similarity, event.similarity)
            if event.exact_value_match:
                continue
            if event.variant_evidence is not None:
                attributed[event.variant_evidence] = True
            elif self.count_unattributed_against_both:
                attributed[JoinSide.LEFT] = True
                attributed[JoinSide.RIGHT] = True
        for side in JoinSide:
            self._approx_match_windows[side].record(attributed[side])
        self._approx_active_window.record(result.mode is JoinMode.APPROXIMATE)
        # Track the lowest similarity inside the window with a bounded list
        # (one entry per step).
        self._min_window_similarity_append(step_min_similarity if result.matches else 1.0)

    def _min_window_similarity_append(self, value: float) -> None:
        self._min_similarity_window.append(value)
        if len(self._min_similarity_window) > self.window_size:
            self._min_similarity_window.pop(0)

    # -- reporting ---------------------------------------------------------------

    @property
    def step(self) -> int:
        """Most recent step observed."""
        return self._step

    @property
    def observed_matches(self) -> int:
        """Result size ``O_t`` observed so far."""
        return self._observed_matches

    def scanned(self, side: JoinSide) -> int:
        """Tuples scanned from ``side`` so far."""
        return self._scanned[side]

    def observation(self) -> Observation:
        """Return the current snapshot of all monitored variables."""
        counts = {
            side: self._approx_match_windows[side].positives for side in JoinSide
        }
        fractions = {
            side: self._approx_match_windows[side].fraction for side in JoinSide
        }
        return Observation(
            step=self._step,
            observed_matches=self._observed_matches,
            left_scanned=self._scanned[JoinSide.LEFT],
            right_scanned=self._scanned[JoinSide.RIGHT],
            approx_window_counts=counts,
            approx_window_fractions=fractions,
            approx_active_steps=self._approx_active_window.positives,
            min_window_similarity=(
                min(self._min_similarity_window)
                if self._min_similarity_window
                else 1.0
            ),
        )

    def reset_windows(self) -> None:
        """Clear the sliding windows (used by ablation variants)."""
        for window in self._approx_match_windows.values():
            window.reset()
        self._approx_active_window.reset()
        self._min_similarity_window.clear()
