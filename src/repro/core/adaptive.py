"""Deprecated location of the adaptive façade (moved to the runtime layer).

:class:`AdaptiveJoinProcessor`, :class:`AdaptiveSymmetricJoin` and the
re-exported :class:`AdaptiveJoinResult` live in
:mod:`repro.runtime.adaptive` now.  The façade has been a thin wrapper
*building* a :class:`repro.runtime.session.JoinSession` since the PR-2
runtime refactor, so keeping it in ``repro.core`` inverted the layer
order (``core`` importing upward into ``runtime`` — the one RL002 waiver
the repo carried).  This module is the promised deprecation shim: it
forwards attribute access to the new home with a
:class:`DeprecationWarning` and will be removed in a future major
version.  Import from :mod:`repro.runtime.adaptive` (or just ``repro``,
whose top-level re-export never moved).
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only re-export for checkers
    from repro.runtime.adaptive import (
        AdaptiveJoinProcessor,
        AdaptiveJoinResult,
        AdaptiveSymmetricJoin,
    )

__all__ = [
    "AdaptiveJoinProcessor",
    "AdaptiveJoinResult",
    "AdaptiveSymmetricJoin",
]

#: Names this shim forwards (everything the module ever exported).
_MOVED: tuple = (
    "AdaptiveJoinProcessor",
    "AdaptiveJoinResult",
    "AdaptiveSymmetricJoin",
)


def __getattr__(name: str):
    """Lazily forward the moved names, with a deprecation warning.

    The import happens inside the hook (not at module level) so merely
    importing ``repro.core`` stays silent and layer-clean; only actually
    touching a moved name pays the warning.  The inline RL002 disable is
    deliberate: the whole point of a shim is one documented upward
    reference, gone when the shim is.
    """
    if name in _MOVED:
        warnings.warn(
            f"repro.core.adaptive.{name} moved to repro.runtime.adaptive "
            f"(the façade builds a runtime JoinSession, so it belongs in "
            f"the runtime layer); update the import — this shim will be "
            f"removed in a future major version",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.runtime import adaptive  # repro-lint: disable=RL002

        return getattr(adaptive, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def __dir__() -> list:
    return sorted(set(globals()) | set(_MOVED))
