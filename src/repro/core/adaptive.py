"""The adaptive join processor (paper Sec. 3).

:class:`AdaptiveJoinProcessor` ties the pieces together:

1. a :class:`~repro.joins.engine.SymmetricJoinEngine` executes the join step
   by step (one step = one quiescent-state transition);
2. a :class:`~repro.core.monitor.Monitor` observes each step;
3. every ``δ_adapt`` steps an :class:`~repro.core.assessor.Assessor`
   evaluates the σ / µ / π predicates;
4. a :class:`~repro.core.responder.Responder` maps the assessment onto the
   four-state machine of Fig. 4 and, when a transition fires, switches the
   engine's per-side operators (with the hash-table catch-up of Sec. 2.3);
5. an :class:`~repro.core.trace.ExecutionTrace` records state occupancy,
   transitions and assessments for the cost model and the Fig. 7/8
   breakdowns.

The processor starts, optimistically, in ``lex/rex`` (both sides exact).

Two entry points are provided:

* :meth:`AdaptiveJoinProcessor.run` — run the whole join and return an
  :class:`AdaptiveJoinResult` (the mode used by the benchmarks);
* :class:`AdaptiveSymmetricJoin` — an iterator-protocol operator wrapper, so
  the adaptive join can be dropped into a query plan like any other
  physical operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.core.assessor import Assessor
from repro.core.budget import CostBudget
from repro.core.cost_model import CostModel
from repro.core.monitor import Monitor
from repro.core.responder import Responder
from repro.core.state_machine import JoinState, StateMachine
from repro.core.thresholds import Thresholds
from repro.core.trace import ExecutionTrace
from repro.engine.iterators import Operator
from repro.engine.streams import RecordStream, TableStream
from repro.engine.table import Table
from repro.engine.tuples import Record, Schema
from repro.joins.base import JoinAttribute, JoinSide, MatchEvent, OperationCounters
from repro.joins.engine import SymmetricJoinEngine

InputLike = Union[RecordStream, Table]


def _as_stream(source: InputLike) -> RecordStream:
    if isinstance(source, Table):
        return TableStream(source)
    return source


@dataclass
class AdaptiveJoinResult:
    """Everything produced by one adaptive join run."""

    #: All matched pairs, in emission order.
    matches: List[MatchEvent]
    #: The execution trace (state occupancy, transitions, assessments).
    trace: ExecutionTrace
    #: Final processor state.
    final_state: JoinState
    #: Elementary-operation counters accumulated by the engine.
    counters: OperationCounters
    #: Output schema of the joined records.
    output_schema: Schema

    @property
    def result_size(self) -> int:
        """Number of matched pairs produced (``r_abs``)."""
        return len(self.matches)

    def output_records(self) -> List[Record]:
        """Materialise the joined output records."""
        return [event.output_record(self.output_schema) for event in self.matches]

    def matched_pairs(self) -> List[tuple]:
        """(left ordinal, right ordinal) pairs, useful for completeness checks."""
        return [event.pair_key() for event in self.matches]

    def weighted_cost(self, cost_model: Optional[CostModel] = None) -> float:
        """``c_abs`` under ``cost_model`` (paper weights by default)."""
        return (cost_model or CostModel()).absolute_cost(self.trace)


class AdaptiveJoinProcessor:
    """Adaptive record-linkage join with a MAR control loop.

    Parameters
    ----------
    left, right:
        The two inputs (tables or streams).  By default the *left* input is
        treated as the parent/reference table of the parent-child
        expectation (Sec. 3.2); see ``parent_side``.
    attribute:
        Join attribute name (same on both sides) or a
        :class:`~repro.joins.base.JoinAttribute`.
    thresholds:
        The tuning parameters of Table 3; defaults to the paper's operating
        point.
    parent_size:
        ``|R|``, the expected size of the parent table.  If omitted and the
        parent input is a :class:`~repro.engine.table.Table`, its length is
        used; for true streams the caller must provide the estimate.
    parent_side:
        Which input plays the parent role (default left).
    initial_state:
        Processor state at start (default ``lex/rex``, the optimistic
        choice).
    allow_source_identification:
        Forwarded to the responder; False restricts the machine to the two
        symmetric states (ablation).
    cost_budget:
        Optional :class:`~repro.core.budget.CostBudget` capping the weighted
        execution cost.  Once the budget is exhausted (checked at every
        control-loop activation) the processor is pinned to ``lex/rex`` for
        the remainder of the run — the user-controlled completeness/cost
        knob the paper's conclusions call for.
    cost_model:
        Cost model used to account the budget (paper weights by default).
    """

    def __init__(
        self,
        left: InputLike,
        right: InputLike,
        attribute: Union[str, JoinAttribute],
        thresholds: Optional[Thresholds] = None,
        parent_size: Optional[int] = None,
        parent_side: JoinSide = JoinSide.LEFT,
        initial_state: JoinState = JoinState.LEX_REX,
        allow_source_identification: bool = True,
        cost_budget: Optional[CostBudget] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.thresholds = thresholds or Thresholds()
        if isinstance(attribute, str):
            attribute = JoinAttribute(attribute, attribute)
        self.attribute = attribute
        self.parent_side = parent_side

        parent_input = left if parent_side is JoinSide.LEFT else right
        if parent_size is None:
            if isinstance(parent_input, Table):
                parent_size = len(parent_input)
            elif hasattr(parent_input, "__len__"):
                parent_size = len(parent_input)  # type: ignore[arg-type]
            else:
                raise ValueError(
                    "parent_size must be provided when the parent input is a "
                    "stream of unknown length"
                )
        self.parent_size = parent_size

        self.engine = SymmetricJoinEngine(
            _as_stream(left),
            _as_stream(right),
            attribute,
            similarity_threshold=self.thresholds.theta_sim,
            q=self.thresholds.q,
            left_mode=initial_state.left_mode,
            right_mode=initial_state.right_mode,
        )
        self.monitor = Monitor(window_size=self.thresholds.window_size)
        self.assessor = Assessor(
            thresholds=self.thresholds,
            parent_size=self.parent_size,
            parent_side=parent_side,
        )
        self.state_machine = StateMachine(initial=initial_state)
        self.responder = Responder(
            self.state_machine,
            allow_source_identification=allow_source_identification,
        )
        self.trace = ExecutionTrace(initial_state=initial_state)
        self.cost_budget = cost_budget
        self.cost_model = cost_model or CostModel()
        self._budget_exhausted = False
        self._matches: List[MatchEvent] = []
        self._finished = False

    # -- state ---------------------------------------------------------------------

    @property
    def state(self) -> JoinState:
        """Current processor state."""
        return self.state_machine.state

    @property
    def output_schema(self) -> Schema:
        """Schema of the joined output records."""
        return self.engine.output_schema

    @property
    def matches(self) -> List[MatchEvent]:
        """Matched pairs produced so far."""
        return self._matches

    @property
    def finished(self) -> bool:
        """True once both inputs have been drained."""
        return self._finished

    # -- execution ------------------------------------------------------------------

    def step(self) -> Optional[List[MatchEvent]]:
        """Execute one join step followed (when due) by one control-loop activation.

        Returns the match events produced by the step, or ``None`` when the
        join has finished.
        """
        result = self.engine.step()
        if result is None:
            self._finished = True
            return None
        state = self.state_machine.state
        self.monitor.observe_step(result)
        self.trace.record_step(state, result.side, len(result.matches))
        self._matches.extend(result.matches)

        if self.assessor.should_assess(result.step):
            self._activate_control_loop(result.step)
        return result.matches

    @property
    def budget_exhausted(self) -> bool:
        """Whether the cost budget (if any) has been used up."""
        return self._budget_exhausted

    def _activate_control_loop(self, step: int) -> None:
        """One Monitor → Assess → Respond activation."""
        if self.cost_budget is not None and not self._budget_exhausted:
            if self.cost_budget.exhausted(self.trace, self.cost_model):
                self._budget_exhausted = True
        if self._budget_exhausted:
            # The user-imposed cost cap overrides the responder: pin the
            # processor to the cheap all-exact configuration.
            state_before = self.state_machine.state
            if state_before is not JoinState.LEX_REX:
                self.state_machine.force(JoinState.LEX_REX, step=step)
                switches = self.engine.set_modes(
                    JoinState.LEX_REX.left_mode, JoinState.LEX_REX.right_mode
                )
                self.trace.record_transition(
                    step, state_before, JoinState.LEX_REX, switches
                )
            return
        observation = self.monitor.observation()
        assessment = self.assessor.assess(observation)
        state_before = self.state_machine.state
        guards, new_state, switches = self.responder.respond(assessment, self.engine)
        state_after = self.state_machine.state
        self.trace.record_assessment(assessment, guards, state_before, state_after)
        if new_state is not None:
            self.trace.record_transition(step, state_before, new_state, switches)

    def run(self) -> AdaptiveJoinResult:
        """Run the join to completion and return the full result.

        Drives the engine through its batched stepping API: between two
        control-loop activations the processor state cannot change, so the
        engine is asked for the whole run of steps up to the next ``δ_adapt``
        boundary at once (:meth:`SymmetricJoinEngine.run_steps`) and the
        per-step observations are replayed over the batch.  The monitor
        window, the trace and the activation points are identical to
        stepping one tuple at a time via :meth:`step`.
        """
        delta = self.thresholds.delta_adapt
        engine = self.engine
        observe = self.monitor.observe_step
        record_step = self.trace.record_step
        matches_extend = self._matches.extend
        while not self._finished:
            chunk = delta - (engine.step_count % delta)
            batch = engine.run_steps(chunk)
            if not batch:
                self._finished = True
                break
            state = self.state_machine.state
            for result in batch:
                observe(result)
                record_step(state, result.side, len(result.matches))
                if result.matches:
                    matches_extend(result.matches)
            last_step = batch[-1].step
            if self.assessor.should_assess(last_step):
                self._activate_control_loop(last_step)
            if len(batch) < chunk:
                self._finished = True
        return AdaptiveJoinResult(
            matches=self._matches,
            trace=self.trace,
            final_state=self.state_machine.state,
            counters=self.engine.counters(),
            output_schema=self.output_schema,
        )


class AdaptiveSymmetricJoin(Operator):
    """Iterator-protocol wrapper around :class:`AdaptiveJoinProcessor`.

    Lets the adaptive join participate in ordinary pipelined plans: each
    ``next_record`` call advances the underlying processor until a match is
    available and returns the joined record.
    """

    def __init__(
        self,
        left: InputLike,
        right: InputLike,
        attribute: Union[str, JoinAttribute],
        thresholds: Optional[Thresholds] = None,
        parent_size: Optional[int] = None,
        parent_side: JoinSide = JoinSide.LEFT,
        name: str = "",
    ) -> None:
        self._processor = AdaptiveJoinProcessor(
            left,
            right,
            attribute,
            thresholds=thresholds,
            parent_size=parent_size,
            parent_side=parent_side,
        )
        super().__init__(self._processor.output_schema, name=name or "AdaptiveJoin")
        self._pending: List[MatchEvent] = []

    @property
    def processor(self) -> AdaptiveJoinProcessor:
        """The wrapped adaptive processor (for inspection after the run)."""
        return self._processor

    def _do_open(self) -> None:
        self._pending = []

    def _do_next(self) -> Optional[Record]:
        while not self._pending:
            matches = self._processor.step()
            if matches is None:
                return None
            if matches:
                self._pending.extend(matches)
        event = self._pending.pop(0)
        return event.output_record(self.output_schema)

    def is_quiescent(self) -> bool:
        """Quiescent iff no produced-but-unreturned matches are pending."""
        return not self._pending
