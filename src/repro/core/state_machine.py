"""The four-state machine controlled by the responder (paper Fig. 4).

Each state fixes, for each input side, whether tuples scanned from that side
are matched exactly or approximately:

=============  =====================  ======================
state          left-scanned tuples    right-scanned tuples
=============  =====================  ======================
``LEX_REX``    exact                  exact
``LAP_REX``    approximate            exact
``LEX_RAP``    exact                  approximate
``LAP_RAP``    approximate            approximate
=============  =====================  ======================

The paper abbreviates the states EE, AE, EA, AA in Figs. 7-8; those labels
are exposed as :attr:`JoinState.short_label`.

Transitions are guarded by the predicates ``φ_0 .. φ_3`` of Sec. 3.5, which
are evaluated here from an :class:`~repro.core.assessor.Assessment`:

* ``φ_0 = ¬σ ∧ µ_left ∧ µ_right`` → ``LEX_REX``
* ``φ_1 = σ ∧ ¬µ_left ∧ ¬µ_right`` → ``LAP_RAP``
* ``φ_2 = σ ∧ ¬µ_left ∧ µ_right ∧ π_left`` → ``LAP_REX``
* ``φ_3 = σ ∧ µ_left ∧ ¬µ_right ∧ π_right`` → ``LEX_RAP``

One behavioural point is under-specified by the formalisation: in the
initial state ``LEX_REX`` no approximate operator is running, so no
approximate matches can be observed and both ``µ`` predicates are vacuously
true — read literally, ``φ_1`` could then never trigger the exit from
``LEX_REX`` even though the prose states that "σ … is specifically
responsible for the transition out of lex/rex".  We therefore treat the
``µ`` predicates as *inconclusive* when no approximate-match evidence could
have been collected in the current window; with σ raised and inconclusive
µ's, the machine moves to ``LAP_RAP`` exactly as the prose describes for
``φ_1`` ("it is not possible to determine which of the inputs is
responsible").  This interpretation is recorded in DESIGN.md.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.joins.base import JoinMode, JoinSide


class JoinState(enum.Enum):
    """Processor states: one matching mode per input side."""

    LEX_REX = ("lex/rex", JoinMode.EXACT, JoinMode.EXACT)
    LAP_REX = ("lap/rex", JoinMode.APPROXIMATE, JoinMode.EXACT)
    LEX_RAP = ("lex/rap", JoinMode.EXACT, JoinMode.APPROXIMATE)
    LAP_RAP = ("lap/rap", JoinMode.APPROXIMATE, JoinMode.APPROXIMATE)

    def __init__(self, label: str, left_mode: JoinMode, right_mode: JoinMode) -> None:
        self.label = label
        self.left_mode = left_mode
        self.right_mode = right_mode

    @property
    def short_label(self) -> str:
        """The two-letter label used in the paper's figures (EE/AE/EA/AA)."""
        left = "E" if self.left_mode is JoinMode.EXACT else "A"
        right = "E" if self.right_mode is JoinMode.EXACT else "A"
        return left + right

    def mode(self, side: JoinSide) -> JoinMode:
        """Matching mode of ``side`` in this state."""
        return self.left_mode if side is JoinSide.LEFT else self.right_mode

    @classmethod
    def from_modes(cls, left_mode: JoinMode, right_mode: JoinMode) -> "JoinState":
        """The state corresponding to a (left, right) mode pair."""
        for state in cls:
            if state.left_mode is left_mode and state.right_mode is right_mode:
                return state
        raise ValueError(f"no state for modes ({left_mode}, {right_mode})")

    @classmethod
    def from_label(cls, label: str) -> "JoinState":
        """Look a state up by its paper label (``lex/rex`` …) or short label (``EE`` …)."""
        for state in cls:
            if label in (state.label, state.short_label, state.name):
                return state
        raise ValueError(f"unknown join state label {label!r}")

    @property
    def is_fully_exact(self) -> bool:
        """True for ``LEX_REX``."""
        return self is JoinState.LEX_REX

    @property
    def is_fully_approximate(self) -> bool:
        """True for ``LAP_RAP``."""
        return self is JoinState.LAP_RAP

    def __repr__(self) -> str:
        return f"JoinState.{self.name}"


@dataclass(frozen=True)
class TransitionGuards:
    """The evaluated guards ``φ_0 .. φ_3`` at one assessment point."""

    phi0: bool
    phi1: bool
    phi2: bool
    phi3: bool

    def target(self) -> Optional[JoinState]:
        """The state selected by the guards, or ``None`` if none fired.

        ``φ_2`` / ``φ_3`` (source-specific reactions) take precedence over
        ``φ_1`` (the blanket reaction); ``φ_0`` is only considered when no
        evidence of perturbation fired, which is guaranteed by construction
        because ``σ`` appears positively in ``φ_1..3`` and negatively in
        ``φ_0``.
        """
        if self.phi2:
            return JoinState.LAP_REX
        if self.phi3:
            return JoinState.LEX_RAP
        if self.phi1:
            return JoinState.LAP_RAP
        if self.phi0:
            return JoinState.LEX_REX
        return None

    def as_dict(self) -> Dict[str, bool]:
        """Plain-dict view used by traces and reports."""
        return {
            "phi0": self.phi0,
            "phi1": self.phi1,
            "phi2": self.phi2,
            "phi3": self.phi3,
        }


class StateMachine:
    """Tracks the current processor state and applies guarded transitions."""

    def __init__(self, initial: JoinState = JoinState.LEX_REX) -> None:
        self._state = initial
        self._history: List[Tuple[int, JoinState]] = [(0, initial)]

    @property
    def state(self) -> JoinState:
        """The current state."""
        return self._state

    @property
    def history(self) -> List[Tuple[int, JoinState]]:
        """``(step, state)`` pairs for every state entered (including the initial one)."""
        return list(self._history)

    def apply(self, guards: TransitionGuards, step: int) -> Optional[JoinState]:
        """Apply the guards; return the new state if a transition happened.

        Self-transitions (guard target equals the current state) are not
        recorded as transitions — they carry no switch cost.
        """
        target = guards.target()
        if target is None or target is self._state:
            return None
        self._state = target
        self._history.append((step, target))
        return target

    def force(self, state: JoinState, step: int) -> None:
        """Unconditionally move to ``state`` (used by tests and ablations)."""
        if state is self._state:
            return
        self._state = state
        self._history.append((step, state))

    @property
    def transition_count(self) -> int:
        """Number of state changes performed so far."""
        return len(self._history) - 1
