"""Control-loop event dataclasses shared across the layer boundary.

:class:`TransitionEvent` and :class:`AssessmentEvent` are *published* by
the runtime's switch policies but *consumed* by core observers — the
:class:`~repro.core.trace.ExecutionTrace` records both.  They originally
lived in :mod:`repro.runtime.events`, which made ``repro.core.trace``
import upward from ``repro.runtime`` — the one layering inversion the
``repro lint`` RL002 sweep flagged.  They are plain leaf data (their
fields reference only ``core`` and ``joins`` types, both at or below
this layer), so they live here and :mod:`repro.runtime.events`
re-exports them backwards-compatibly: every historical import path
(``from repro.runtime.events import TransitionEvent`` and the
re-exports in ``repro.runtime``/``repro.runtime.parallel``) keeps
working, and the classes themselves are identical objects either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.assessor import Assessment
    from repro.core.state_machine import JoinState, TransitionGuards
    from repro.joins.engine import SwitchRecord

__all__ = ["AssessmentEvent", "TransitionEvent"]


@dataclass(frozen=True, slots=True)
class TransitionEvent:
    """One state-machine transition enacted by a switch policy."""

    step: int
    from_state: "JoinState"
    to_state: "JoinState"
    #: The per-side engine switches the transition caused (with catch-up).
    switches: Tuple["SwitchRecord", ...]

    @property
    def catch_up_tuples(self) -> int:
        """Tuples re-indexed by the hash-table catch-up of this transition."""
        return sum(switch.catch_up_tuples for switch in self.switches)


@dataclass(frozen=True, slots=True)
class AssessmentEvent:
    """One control-loop activation (assessment + guard evaluation)."""

    assessment: "Assessment"
    guards: "TransitionGuards"
    state_before: "JoinState"
    state_after: "JoinState"
