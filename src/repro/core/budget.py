"""Cost-budgeted adaptation (the paper's "further work" extension).

Sec. 4.4 of the paper closes with the observation that, because the adaptive
strategy never costs more than the all-approximate join, "the algorithm may
be tuned, possibly under user control, for a target gain in terms of result
completeness, while keeping the marginal cost over the exact join baseline
within a predictable limit.  Further work is needed to explore this space of
available trade-offs."

This module implements that control knob.  A :class:`CostBudget` caps the
weighted execution cost (Sec. 4.3 units) the adaptive join may spend above
the all-exact baseline; once the budget is exhausted the responder is
overridden and the processor is pinned to the all-exact state for the rest
of the run.  Budgets are most conveniently expressed *relatively* — as a
fraction of the cost gap ``C − c`` between the all-approximate and all-exact
runs — via :meth:`CostBudget.relative`, which mirrors the ``c_rel`` metric:
a run with budget fraction ``f`` ends with ``c_rel ≤ f`` (up to the cost of
the single assessment interval during which the budget is detected to be
exhausted).

The trade-off curve (gain achieved as a function of the allowed cost) is
explored by ``benchmarks/bench_budget_tradeoff.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.cost_model import CostModel
from repro.core.trace import ExecutionTrace


@dataclass(frozen=True)
class CostBudget:
    """A cap on the weighted execution cost of an adaptive run.

    Attributes
    ----------
    max_absolute_cost:
        Maximum allowed ``c_abs`` (weighted cost units, where one unit is
        the cost of one all-exact step).
    """

    max_absolute_cost: float

    def __post_init__(self) -> None:
        if self.max_absolute_cost <= 0:
            raise ValueError(
                f"budget must be positive, got {self.max_absolute_cost}"
            )

    @classmethod
    def relative(
        cls,
        fraction: float,
        total_steps: int,
        cost_model: Optional[CostModel] = None,
    ) -> "CostBudget":
        """Budget expressed as a fraction of the cost gap ``C − c``.

        Parameters
        ----------
        fraction:
            Target ``c_rel`` ceiling in (0, 1]; 1.0 reproduces the
            unbudgeted behaviour (the adaptive join never exceeds ``C``).
        total_steps:
            Total number of steps the join will execute (the combined size
            of both inputs).
        cost_model:
            Cost model supplying the state weights (paper weights by
            default).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"budget fraction must be in (0, 1], got {fraction}")
        if total_steps <= 0:
            raise ValueError(f"total_steps must be positive, got {total_steps}")
        model = cost_model or CostModel()
        gap = model.all_approximate_cost(total_steps) - model.all_exact_cost(
            total_steps
        )
        # The all-exact floor is always spent; the budget constrains the
        # spend above that floor.
        return cls(
            max_absolute_cost=model.all_exact_cost(total_steps) + fraction * gap
        )

    def exhausted(
        self, trace: ExecutionTrace, cost_model: Optional[CostModel] = None
    ) -> bool:
        """Whether the run described by ``trace`` has used up the budget."""
        model = cost_model or CostModel()
        return model.absolute_cost(trace) >= self.max_absolute_cost

    def remaining(
        self, trace: ExecutionTrace, cost_model: Optional[CostModel] = None
    ) -> float:
        """Budget still available for the run described by ``trace`` (≥ 0)."""
        model = cost_model or CostModel()
        return max(0.0, self.max_absolute_cost - model.absolute_cost(trace))
