"""Thresholds and tuning parameters of the adaptive strategy (paper Table 3).

The paper's empirically determined operating point (Sec. 4.2) is used for
all defaults:

===============  ======= =====================================================
parameter        default meaning
===============  ======= =====================================================
``theta_sim``    0.85    string-similarity threshold of the approximate join
``window_size``  100     size ``W`` of the per-input sliding window
``delta_adapt``  100     steps between successive activations of the MAR loop
``theta_out``    0.05    outlier-detection threshold of the σ predicate
``theta_curpert``  2     acceptable current-perturbation threshold (µ)
``theta_pastpert`` 5     acceptable past-perturbation threshold (π)
``q``              3     q-gram width of the approximate operator
===============  ======= =====================================================

``theta_curpert`` is reported by the paper as "2" even though the µ
predicate formally thresholds the *fraction* ``A_{t,W}/W``; we therefore
accept either convention: values ≤ 1 are interpreted as fractions, values
> 1 as absolute counts out of the window (so the paper's ``2`` means "at
most 2 approximate matches in the last ``W`` steps").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class Thresholds:
    """Configuration of the adaptive join (see module docstring for defaults)."""

    theta_sim: float = 0.85
    window_size: int = 100
    delta_adapt: int = 100
    theta_out: float = 0.05
    theta_curpert: float = 2.0
    theta_pastpert: float = 5.0
    q: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.theta_sim <= 1.0:
            raise ValueError(f"theta_sim must be in (0, 1], got {self.theta_sim}")
        if self.window_size <= 0:
            raise ValueError(f"window_size must be positive, got {self.window_size}")
        if self.delta_adapt <= 0:
            raise ValueError(f"delta_adapt must be positive, got {self.delta_adapt}")
        if not 0.0 < self.theta_out < 1.0:
            raise ValueError(f"theta_out must be in (0, 1), got {self.theta_out}")
        if self.theta_curpert < 0:
            raise ValueError(
                f"theta_curpert must be non-negative, got {self.theta_curpert}"
            )
        if self.theta_pastpert < 0:
            raise ValueError(
                f"theta_pastpert must be non-negative, got {self.theta_pastpert}"
            )
        if self.q <= 0:
            raise ValueError(f"q must be positive, got {self.q}")

    @property
    def current_perturbation_fraction(self) -> float:
        """The µ threshold normalised to a fraction of the window size.

        Values of ``theta_curpert`` greater than 1 are treated as counts
        out of ``window_size`` (the paper's convention in Sec. 4.2); values
        in [0, 1] are used as fractions directly.
        """
        if self.theta_curpert > 1.0:
            return self.theta_curpert / self.window_size
        return self.theta_curpert

    @property
    def past_perturbation_limit(self) -> float:
        """The π threshold: maximum number of past perturbed assessments."""
        return self.theta_pastpert

    def with_overrides(self, **overrides) -> "Thresholds":
        """Return a copy with the given fields replaced (validation re-runs)."""
        return replace(self, **overrides)

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view, used by benchmark reports."""
        return {
            "theta_sim": self.theta_sim,
            "window_size": self.window_size,
            "delta_adapt": self.delta_adapt,
            "theta_out": self.theta_out,
            "theta_curpert": self.theta_curpert,
            "theta_pastpert": self.theta_pastpert,
            "q": self.q,
        }


#: The paper's tuned operating point (Sec. 4.2), as a ready-made instance.
PAPER_THRESHOLDS = Thresholds()
