"""The paper's contribution: adaptive join processing for record linkage.

This package implements the Monitor-Assess-Respond (MAR) control loop of
Secs. 2-3 of the paper on top of the switchable symmetric-join engine of
:mod:`repro.joins`:

* :mod:`repro.core.thresholds` — the tunable parameters of Table 3
  (``W``, ``θ_sim``, ``δ_adapt``, ``θ_out``, ``θ_curpert``, ``θ_pastpert``).
* :mod:`repro.core.state_machine` — the four processor states of Fig. 4 and
  the transition guards ``φ_0..φ_3``.
* :mod:`repro.core.monitor` — observation of result size, per-side
  approximate-match windows and perturbation evidence.
* :mod:`repro.core.assessor` — the ``σ``, ``µ_i`` and ``π_i`` predicates of
  Table 2.
* :mod:`repro.core.responder` — mapping of assessments onto state
  transitions.
* :class:`AdaptiveJoinProcessor` — the paper-facing façade over
  :class:`repro.runtime.JoinSession` — now lives in
  :mod:`repro.runtime.adaptive` (it *builds* a runtime session, so it
  belongs above this layer); :mod:`repro.core.adaptive` remains as a
  deprecation shim and this package forwards the historical re-exports
  through it.
* :mod:`repro.core.trace` — per-run execution traces (state occupancy,
  transitions, assessments) feeding Figs. 7-8.
* :mod:`repro.core.cost_model` — the weighted cost model of Sec. 4.3.
* :mod:`repro.core.metrics` — relative gain, relative cost and efficiency.
"""

from repro.core.assessor import Assessment, Assessor
from repro.core.budget import CostBudget
from repro.core.cost_model import (
    PAPER_STATE_WEIGHTS,
    PAPER_TRANSITION_WEIGHTS,
    CostBreakdown,
    CostModel,
)
from repro.core.metrics import GainCostReport, efficiency, relative_cost, relative_gain
from repro.core.monitor import Monitor, Observation
from repro.core.responder import Responder
from repro.core.state_machine import JoinState, StateMachine, TransitionGuards
from repro.core.thresholds import Thresholds
from repro.core.trace import (
    AssessmentRecord,
    ExecutionTrace,
    TransitionRecord,
    merge_traces,
)

#: Historical re-exports now living in ``repro.runtime.adaptive``;
#: forwarded lazily through the :mod:`repro.core.adaptive` shim so the
#: deprecation warning fires on use, not on ``import repro.core``.
_MOVED_TO_RUNTIME = (
    "AdaptiveJoinProcessor",
    "AdaptiveJoinResult",
    "AdaptiveSymmetricJoin",
)


def __getattr__(name: str):
    if name in _MOVED_TO_RUNTIME:
        from repro.core import adaptive

        return getattr(adaptive, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AdaptiveJoinProcessor",
    "AdaptiveJoinResult",
    "AdaptiveSymmetricJoin",
    "Assessment",
    "Assessor",
    "CostBudget",
    "CostBreakdown",
    "CostModel",
    "PAPER_STATE_WEIGHTS",
    "PAPER_TRANSITION_WEIGHTS",
    "GainCostReport",
    "relative_gain",
    "relative_cost",
    "efficiency",
    "Monitor",
    "Observation",
    "Responder",
    "JoinState",
    "StateMachine",
    "TransitionGuards",
    "Thresholds",
    "ExecutionTrace",
    "TransitionRecord",
    "AssessmentRecord",
    "merge_traces",
]
