"""The Responder of the MAR control loop (paper Sec. 3.4-3.5).

The responder maps an :class:`~repro.core.assessor.Assessment` onto the
transition guards ``φ_0 .. φ_3`` of the four-state machine and enacts the
selected transition on the query processor (the switchable symmetric-join
engine).

Guard definitions (Sec. 3.5), with one documented interpretation for the
exit from ``lex/rex`` (see :mod:`repro.core.state_machine`):

* ``φ_0 = ¬σ ∧ µ_left ∧ µ_right``                     → ``lex/rex``
* ``φ_1 = σ ∧ ¬µ_left ∧ ¬µ_right``                    → ``lap/rap``
  — additionally raised when ``σ`` holds but the window carries no
  approximate-match evidence at all (e.g. while running fully exact), the
  situation the paper describes as "not possible to determine which of the
  inputs is responsible".
* ``φ_2 = σ ∧ ¬µ_left ∧ µ_right ∧ π_left``            → ``lap/rex``
* ``φ_3 = σ ∧ µ_left ∧ ¬µ_right ∧ π_right``           → ``lex/rap``

Since the runtime refactor the responder is driven by
:class:`~repro.runtime.policy.MarPolicy` (one call per control-loop
activation); it remains engine-enacting — evaluating guards, updating the
state machine and reconfiguring the engine are one atomic response, always
performed between engine steps (i.e. in a quiescent state).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.assessor import Assessment
from repro.core.state_machine import JoinState, StateMachine, TransitionGuards
from repro.joins.engine import SwitchRecord, SymmetricJoinEngine


class Responder:
    """Evaluates transition guards and enacts operator switches.

    Parameters
    ----------
    state_machine:
        The state machine tracking the processor configuration.
    allow_source_identification:
        When False, the hybrid states ``lap/rex`` and ``lex/rap`` are never
        entered: guards φ_2/φ_3 are suppressed and their situations fall
        back to φ_1 (→ ``lap/rap``).  This implements the two-state
        ablation benchmarked in ``bench_ablation_two_state``.
    """

    def __init__(
        self,
        state_machine: StateMachine,
        allow_source_identification: bool = True,
    ) -> None:
        self.state_machine = state_machine
        self.allow_source_identification = allow_source_identification

    # -- guard evaluation -----------------------------------------------------------

    def evaluate_guards(self, assessment: Assessment) -> TransitionGuards:
        """Compute ``φ_0 .. φ_3`` for ``assessment``."""
        sigma = assessment.sigma
        mu_left, mu_right = assessment.mu_left, assessment.mu_right
        pi_left, pi_right = assessment.pi_left, assessment.pi_right

        phi0 = (not sigma) and mu_left and mu_right
        phi1 = sigma and (not mu_left) and (not mu_right)
        phi2 = sigma and (not mu_left) and mu_right and pi_left
        phi3 = sigma and mu_left and (not mu_right) and pi_right

        if sigma and not assessment.evidence_available:
            # No approximate operator has been active in the window, so the
            # µ predicates are vacuous: the source of the perturbation
            # cannot be identified.  React with the blanket transition.
            phi1, phi2, phi3 = True, False, False

        if not self.allow_source_identification:
            if phi2 or phi3:
                phi1 = True
            phi2 = phi3 = False

        return TransitionGuards(phi0=phi0, phi1=phi1, phi2=phi2, phi3=phi3)

    # -- response -------------------------------------------------------------------

    def respond(
        self,
        assessment: Assessment,
        engine: SymmetricJoinEngine,
    ) -> Tuple[TransitionGuards, Optional[JoinState], List[SwitchRecord]]:
        """Evaluate guards, update the state machine and reconfigure the engine.

        Returns the evaluated guards, the new state (or ``None`` when no
        transition happened) and the engine switch records produced by the
        reconfiguration (one per side whose mode actually changed).
        """
        guards = self.evaluate_guards(assessment)
        new_state = self.state_machine.apply(guards, step=assessment.step)
        switches: List[SwitchRecord] = []
        if new_state is not None:
            switches = engine.set_modes(new_state.left_mode, new_state.right_mode)
        return guards, new_state, switches
