"""Gain, cost and efficiency metrics (paper Sec. 4.3-4.4).

The adaptive strategy is evaluated against the two non-adaptive extremes:

* ``r`` — result size of the **all-exact** run (the completeness baseline);
* ``R`` — result size of the **all-approximate** run (the completeness
  ceiling);
* ``c`` — weighted cost of the all-exact run (the cost floor);
* ``C`` — weighted cost of the all-approximate run (the cost ceiling).

For an adaptive run with result size ``r_abs`` and cost ``c_abs``:

.. math::

    g_{rel} = \\frac{r_{abs} - r}{R - r}
    \\qquad
    c_{rel} = \\frac{c_{abs}}{C - c}
    \\qquad
    e = \\frac{g_{rel}}{c_{rel}}

``g_rel`` is the fraction of the completeness gap the adaptive run
recovered; ``c_rel`` expresses its cost relative to the cost gap; the
efficiency index ``e`` (reported under each column of Fig. 6) is the ratio
of the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


def relative_gain(adaptive_result_size: int, exact_result_size: int,
                  approximate_result_size: int) -> float:
    """``g_rel = (r_abs − r) / (R − r)``.

    When the all-approximate and all-exact runs return the same number of
    pairs (``R == r``, i.e. there was nothing to recover), the gain is
    defined as 1.0 if the adaptive run matched that size and 0.0 otherwise.
    """
    gap = approximate_result_size - exact_result_size
    if gap <= 0:
        return 1.0 if adaptive_result_size >= exact_result_size else 0.0
    return (adaptive_result_size - exact_result_size) / gap


def relative_cost(adaptive_cost: float, exact_cost: float,
                  approximate_cost: float) -> float:
    """``c_rel = c_abs / (C − c)``; 0.0 when the cost gap is degenerate."""
    gap = approximate_cost - exact_cost
    if gap <= 0:
        return 0.0
    return adaptive_cost / gap


def efficiency(gain: float, cost: float) -> float:
    """``e = g_rel / c_rel``; infinite when the cost is zero and gain positive."""
    if cost <= 0.0:
        return float("inf") if gain > 0 else 0.0
    return gain / cost


@dataclass(frozen=True)
class GainCostReport:
    """The complete gain/cost assessment of one adaptive run (one Fig. 6 column).

    Attributes mirror the paper's symbols; ``test_case`` identifies the
    perturbation pattern / variant placement the run was executed on.
    """

    test_case: str
    exact_result_size: int          # r
    approximate_result_size: int    # R
    adaptive_result_size: int       # r_abs
    exact_cost: float               # c
    approximate_cost: float         # C
    adaptive_cost: float            # c_abs

    @property
    def gain(self) -> float:
        """``g_rel``."""
        return relative_gain(
            self.adaptive_result_size,
            self.exact_result_size,
            self.approximate_result_size,
        )

    @property
    def cost(self) -> float:
        """``c_rel``."""
        return relative_cost(
            self.adaptive_cost, self.exact_cost, self.approximate_cost
        )

    @property
    def efficiency(self) -> float:
        """``e = g_rel / c_rel``."""
        return efficiency(self.gain, self.cost)

    @property
    def completeness_vs_approximate(self) -> float:
        """Adaptive result size as a fraction of the all-approximate result size."""
        if self.approximate_result_size == 0:
            return 1.0
        return self.adaptive_result_size / self.approximate_result_size

    @property
    def cost_vs_approximate(self) -> float:
        """Adaptive cost as a fraction of the all-approximate cost."""
        if self.approximate_cost == 0:
            return 0.0
        return self.adaptive_cost / self.approximate_cost

    @property
    def never_worse_than_approximate(self) -> bool:
        """The key sanity property of Sec. 4.4: ``c_abs ≤ C``."""
        return self.adaptive_cost <= self.approximate_cost

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary used by the benchmark reports."""
        return {
            "test_case": self.test_case,
            "r_exact": self.exact_result_size,
            "R_approx": self.approximate_result_size,
            "r_adaptive": self.adaptive_result_size,
            "c_exact": self.exact_cost,
            "C_approx": self.approximate_cost,
            "c_adaptive": self.adaptive_cost,
            "gain": self.gain,
            "cost": self.cost,
            "efficiency": self.efficiency,
        }
