"""The weighted cost model of Sec. 4.3.

The paper expresses the cost of an adaptive run as

.. math::

    c_{abs} = \\sum_i sc_i + \\sum_i tc_i
    \\qquad sc_i = t_i \\cdot w_i
    \\qquad tc_i = tr_i \\cdot v_i

where ``t_i`` is the number of steps spent in state ``i``, ``tr_i`` the
number of transitions *into* state ``i``, and ``w_i`` / ``v_i`` are unit
weights measured experimentally and normalised by the unit step cost of the
all-exact state ``lex/rex``.

The weights the paper reports are::

    w = [w_lex/rex, w_lap/rex, w_lex/rap, w_lap/rap] = [1, 22.14, 51.8, 70.2]
    v = [v_lex/rex, v_lap/rex, v_lex/rap, v_lap/rap] = [122.48, 37.96, 84.99, 173.42]

Those values are exposed as :data:`PAPER_STATE_WEIGHTS` /
:data:`PAPER_TRANSITION_WEIGHTS` and used by default, so that Fig. 8 can be
reproduced with the paper's own calibration.  A machine-specific calibration
(measuring step and transition times of this implementation) is provided by
:mod:`repro.bench.calibration` and can be injected into :class:`CostModel`
to compare shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core.state_machine import JoinState
from repro.core.trace import ExecutionTrace

#: Per-state unit step weights reported by the paper (normalised to lex/rex).
PAPER_STATE_WEIGHTS: Dict[JoinState, float] = {
    JoinState.LEX_REX: 1.0,
    JoinState.LAP_REX: 22.14,
    JoinState.LEX_RAP: 51.8,
    JoinState.LAP_RAP: 70.2,
}

#: Per-target-state transition weights reported by the paper (same unit).
PAPER_TRANSITION_WEIGHTS: Dict[JoinState, float] = {
    JoinState.LEX_REX: 122.48,
    JoinState.LAP_REX: 37.96,
    JoinState.LEX_RAP: 84.99,
    JoinState.LAP_RAP: 173.42,
}


@dataclass(frozen=True)
class CostBreakdown:
    """The per-state cost decomposition of one run (the Fig. 8 bars)."""

    state_costs: Dict[JoinState, float]
    transition_costs: Dict[JoinState, float]

    @property
    def total_state_cost(self) -> float:
        """Σ_i sc_i."""
        return sum(self.state_costs.values())

    @property
    def total_transition_cost(self) -> float:
        """Σ_i tc_i."""
        return sum(self.transition_costs.values())

    @property
    def total(self) -> float:
        """c_abs = Σ sc_i + Σ tc_i."""
        return self.total_state_cost + self.total_transition_cost

    def as_rows(self) -> Dict[str, float]:
        """Flat mapping ``{"steps EE": …, "transitions into AA": …}`` for reports."""
        rows: Dict[str, float] = {}
        for state, cost in self.state_costs.items():
            rows[f"steps {state.short_label}"] = cost
        for state, cost in self.transition_costs.items():
            rows[f"transitions into {state.short_label}"] = cost
        return rows


class CostModel:
    """Computes weighted execution costs from execution traces.

    Parameters
    ----------
    state_weights, transition_weights:
        Unit weights per state; default to the paper's calibrated values.
        A machine-measured calibration (see
        :func:`repro.bench.calibration.calibrate_weights`) can be passed
        instead.
    """

    def __init__(
        self,
        state_weights: Optional[Mapping[JoinState, float]] = None,
        transition_weights: Optional[Mapping[JoinState, float]] = None,
    ) -> None:
        self.state_weights = dict(state_weights or PAPER_STATE_WEIGHTS)
        self.transition_weights = dict(transition_weights or PAPER_TRANSITION_WEIGHTS)
        for weights in (self.state_weights, self.transition_weights):
            for state in JoinState:
                if state not in weights:
                    raise ValueError(f"missing weight for state {state}")
                if weights[state] < 0:
                    raise ValueError(f"negative weight for state {state}")

    # -- absolute costs -----------------------------------------------------------

    def breakdown(self, trace: ExecutionTrace) -> CostBreakdown:
        """Per-state and per-transition weighted costs of a run."""
        state_costs = {
            state: trace.steps_per_state[state] * self.state_weights[state]
            for state in JoinState
        }
        transition_costs = {
            state: trace.transitions_into[state] * self.transition_weights[state]
            for state in JoinState
        }
        return CostBreakdown(state_costs=state_costs, transition_costs=transition_costs)

    def absolute_cost(self, trace: ExecutionTrace) -> float:
        """``c_abs`` of the run described by ``trace``."""
        return self.breakdown(trace).total

    # -- baseline costs ------------------------------------------------------------

    def all_exact_cost(self, total_steps: int) -> float:
        """``c``: cost of executing every step in ``lex/rex`` (no transitions)."""
        return total_steps * self.state_weights[JoinState.LEX_REX]

    def all_approximate_cost(self, total_steps: int) -> float:
        """``C``: cost of executing every step in ``lap/rap`` (no transitions)."""
        return total_steps * self.state_weights[JoinState.LAP_RAP]

    def relative_cost(self, trace: ExecutionTrace) -> float:
        """``c_rel = c_abs / (C − c)`` for the run described by ``trace``.

        Uses the trace's own step count for the baselines, which matches the
        paper's procedure (all strategies scan the same inputs and therefore
        execute the same number of steps).
        """
        best = self.all_exact_cost(trace.total_steps)
        worst = self.all_approximate_cost(trace.total_steps)
        gap = worst - best
        if gap <= 0:
            return 0.0
        return self.absolute_cost(trace) / gap
