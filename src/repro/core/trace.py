"""Execution traces of adaptive join runs.

Figures 7 and 8 of the paper break a run down into the number of steps spent
in each of the four states, the number of state transitions, and the
corresponding weighted costs.  :class:`ExecutionTrace` accumulates exactly
that information (plus the assessment log, useful for debugging and for the
parameter-tuning benchmarks) while the adaptive processor runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.core.assessor import Assessment
from repro.core.events import AssessmentEvent, TransitionEvent
from repro.core.state_machine import JoinState, TransitionGuards
from repro.joins.base import JoinSide
from repro.joins.engine import StepBatch, StepResult, SwitchRecord


@dataclass(frozen=True)
class TransitionRecord:
    """One state transition performed by the responder."""

    step: int
    from_state: JoinState
    to_state: JoinState
    #: Tuples re-indexed during the hash-table catch-up of this transition.
    catch_up_tuples: int
    #: Shard the transition happened in, for traces produced by
    #: :func:`merge_traces`; ``None`` in single-session traces.
    shard: Optional[int] = None


@dataclass(frozen=True)
class AssessmentRecord:
    """One activation of the control loop, with its outcome."""

    assessment: Assessment
    guards: TransitionGuards
    state_before: JoinState
    state_after: JoinState

    @property
    def transitioned(self) -> bool:
        """Whether this activation changed the processor state."""
        return self.state_before is not self.state_after


@dataclass
class ExecutionTrace:
    """Aggregate trace of one adaptive (or baseline) join execution."""

    initial_state: JoinState = JoinState.LEX_REX
    #: Steps spent in each state (Fig. 7, left bars).
    steps_per_state: Dict[JoinState, int] = field(
        default_factory=lambda: {state: 0 for state in JoinState}
    )
    #: Transitions *into* each state (Fig. 8 transition costs are weighted by target).
    transitions_into: Dict[JoinState, int] = field(
        default_factory=lambda: {state: 0 for state in JoinState}
    )
    transitions: List[TransitionRecord] = field(default_factory=list)
    assessments: List[AssessmentRecord] = field(default_factory=list)
    #: Matches emitted, split by the state in force when they were produced.
    matches_per_state: Dict[JoinState, int] = field(
        default_factory=lambda: {state: 0 for state in JoinState}
    )
    total_steps: int = 0
    total_matches: int = 0
    left_scanned: int = 0
    right_scanned: int = 0

    # -- accumulation ----------------------------------------------------------------

    def attach(self, bus, state_machine) -> "ExecutionTrace":
        """Subscribe this trace to a runtime event bus.

        Steps, transitions and assessments are recorded from the published
        events instead of explicit calls from the processor loop.  The
        ``state_machine`` supplies the state in force for each step (the
        engine does not know it); activations happen between steps, so the
        state read at publish time is exactly the state the step ran in.
        Returns ``self`` so construction and attachment chain.
        """

        record_batch = self.record_batch

        def on_batch(batch: StepBatch) -> None:
            # Batches never span an activation, so the state read at publish
            # time is the state every step of the batch ran in.
            record_batch(
                state_machine.state,
                batch.count,
                batch.left_steps,
                batch.right_steps,
                len(batch.match_events),
            )

        def on_transition(event: TransitionEvent) -> None:
            self.record_transition(
                event.step, event.from_state, event.to_state, list(event.switches)
            )

        def on_assessment(event: AssessmentEvent) -> None:
            self.record_assessment(
                event.assessment, event.guards, event.state_before, event.state_after
            )

        subscriptions = [
            (StepBatch, bus.subscribe(StepBatch, on_batch)),
            (TransitionEvent, bus.subscribe(TransitionEvent, on_transition)),
            (AssessmentEvent, bus.subscribe(AssessmentEvent, on_assessment)),
        ]
        self._subscriptions = getattr(self, "_subscriptions", []) + subscriptions
        return self

    def detach(self, bus) -> None:
        """Remove every subscription :meth:`attach` registered (no-op if none)."""
        for event_type, handler in getattr(self, "_subscriptions", ()):
            bus.unsubscribe(event_type, handler)
        self._subscriptions = []

    def record_step(self, state: JoinState, side: JoinSide, matches: int) -> None:
        """Record one engine step executed in ``state``."""
        self.steps_per_state[state] += 1
        self.matches_per_state[state] += matches
        self.total_steps += 1
        self.total_matches += matches
        if side is JoinSide.LEFT:
            self.left_scanned += 1
        else:
            self.right_scanned += 1

    def record_batch(
        self,
        state: JoinState,
        count: int,
        left_steps: int,
        right_steps: int,
        matches: int,
    ) -> None:
        """Record ``count`` contiguous steps executed in ``state`` in O(1).

        Equivalent to ``count`` :meth:`record_step` calls — the trace keeps
        only sums, so a batch folds into six additions.
        """
        self.steps_per_state[state] += count
        self.matches_per_state[state] += matches
        self.total_steps += count
        self.total_matches += matches
        self.left_scanned += left_steps
        self.right_scanned += right_steps

    def record_transition(
        self,
        step: int,
        from_state: JoinState,
        to_state: JoinState,
        switches: List[SwitchRecord],
    ) -> None:
        """Record one responder-enacted state transition."""
        catch_up = sum(switch.catch_up_tuples for switch in switches)
        self.transitions.append(
            TransitionRecord(
                step=step,
                from_state=from_state,
                to_state=to_state,
                catch_up_tuples=catch_up,
            )
        )
        self.transitions_into[to_state] += 1

    def record_assessment(
        self,
        assessment: Assessment,
        guards: TransitionGuards,
        state_before: JoinState,
        state_after: JoinState,
    ) -> None:
        """Record one activation of the control loop."""
        self.assessments.append(
            AssessmentRecord(
                assessment=assessment,
                guards=guards,
                state_before=state_before,
                state_after=state_after,
            )
        )

    # -- derived quantities ------------------------------------------------------------

    @property
    def transition_count(self) -> int:
        """Total number of state transitions (Fig. 7, right bars)."""
        return len(self.transitions)

    def steps_in(self, state) -> int:
        """Steps spent in ``state`` (a :class:`JoinState` or a label like ``"EE"``)."""
        if isinstance(state, str):
            state = JoinState.from_label(state)
        return self.steps_per_state[state]

    def step_fractions(self) -> Dict[JoinState, float]:
        """Fraction of steps spent in each state (the Fig. 7 breakdown)."""
        if self.total_steps == 0:
            return {state: 0.0 for state in JoinState}
        return {
            state: count / self.total_steps
            for state, count in self.steps_per_state.items()
        }

    def exact_step_fraction(self) -> float:
        """Fraction of steps executed fully exactly (the ≈30 % the paper reports)."""
        return self.step_fractions()[JoinState.LEX_REX]

    def assessment_count(self) -> int:
        """Number of control-loop activations."""
        return len(self.assessments)

    def summary(self) -> Dict[str, object]:
        """A flat summary dictionary used by benchmark reports."""
        return {
            "total_steps": self.total_steps,
            "total_matches": self.total_matches,
            "transitions": self.transition_count,
            "assessments": self.assessment_count(),
            "steps_per_state": {
                state.short_label: count
                for state, count in self.steps_per_state.items()
            },
            "transitions_into": {
                state.short_label: count
                for state, count in self.transitions_into.items()
            },
            "exact_step_fraction": self.exact_step_fraction(),
        }


def merge_traces(
    traces: Sequence[ExecutionTrace],
    shard_ids: Optional[Sequence[int]] = None,
) -> ExecutionTrace:
    """Merge per-shard execution traces into one aggregate trace.

    Per-state step counts, match counts, scan counts and transition tallies
    add up; the transition and assessment logs are concatenated in shard
    order.  Each shard numbers its steps from 1, so every transition's
    ``step`` — and every assessment's ``assessment.step`` — is offset by
    the total step count of the preceding shards — the merged logs read as
    one global, monotonically ordered timeline — and transitions are
    tagged with their shard id (``shard_ids`` defaults to positional).
    The merged trace is a reporting view: cost-model weighting
    (:meth:`CostModel.absolute_cost`) only consumes the per-state tallies,
    which are exact, so merged weighted costs equal the sum of per-shard
    weighted costs.
    """
    if not traces:
        raise ValueError("merge_traces needs at least one trace")
    if shard_ids is None:
        shard_ids = range(len(traces))
    elif len(shard_ids) != len(traces):
        raise ValueError(
            f"got {len(traces)} traces but {len(shard_ids)} shard ids"
        )
    merged = ExecutionTrace(initial_state=traces[0].initial_state)
    step_offset = 0
    for shard_id, trace in zip(shard_ids, traces):
        for state in JoinState:
            merged.steps_per_state[state] += trace.steps_per_state[state]
            merged.transitions_into[state] += trace.transitions_into[state]
            merged.matches_per_state[state] += trace.matches_per_state[state]
        merged.total_steps += trace.total_steps
        merged.total_matches += trace.total_matches
        merged.left_scanned += trace.left_scanned
        merged.right_scanned += trace.right_scanned
        merged.transitions.extend(
            replace(record, step=record.step + step_offset, shard=shard_id)
            for record in trace.transitions
        )
        if step_offset:
            merged.assessments.extend(
                replace(
                    record,
                    assessment=replace(
                        record.assessment,
                        step=record.assessment.step + step_offset,
                    ),
                )
                for record in trace.assessments
            )
        else:
            merged.assessments.extend(trace.assessments)
        step_offset += trace.total_steps
    return merged
