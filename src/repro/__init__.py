"""repro — reproduction of *Time-completeness trade-offs in record linkage
using Adaptive Query Processing* (Lengu, Missier, Fernandes, Guerrini,
Mesiti — EDBT 2009).

The package is organised in layers, bottom-up:

``repro.engine``
    A small pipelined, iterator-based query-engine substrate: records,
    schemas, in-memory tables, streaming sources and relational operators
    built on the classical OPEN/NEXT/CLOSE protocol with explicit quiescent
    states (the property that makes safe operator replacement possible).

``repro.similarity``
    String-similarity substrate: q-gram tokenisation and Jaccard similarity
    (the measure used by the paper), plus edit-based and hybrid measures.

``repro.stats``
    Probability and streaming-statistics substrate: binomial distribution,
    outlier detection of the observed join-result size, sliding-window
    counters.

``repro.joins``
    The physical join operators: the exact symmetric hash join ``SHJoin``,
    the approximate symmetric set hash join ``SSHJoin`` (pipelined SSJoin),
    hybrid per-side configurations, the switch/catch-up machinery and the
    non-adaptive baselines.

``repro.core``
    The paper's contribution: the Monitor-Assess-Respond adaptive control
    loop, the four-state machine (``lex/rex``, ``lap/rex``, ``lex/rap``,
    ``lap/rap``), the cost model and the gain/cost/efficiency metrics of
    Sec. 4.  (The paper-facing ``AdaptiveJoinProcessor`` façade lives in
    ``repro.runtime.adaptive``; ``repro.core.adaptive`` is a deprecation
    shim.)

``repro.runtime``
    The composition layer: ``RunConfig`` (one declarative description of
    an execution), ``JoinSession`` (builds and drives engine + control
    stack; the single construction path used by the processor façade,
    ``link_tables``, the bench harness and the CLI), the pluggable
    ``SwitchPolicy`` registry (``mar``, ``fixed``, ``budget-greedy``) and
    the ``EventBus`` the engine publishes step/match/switch events onto.

``repro.linkage``
    A thin record-linkage toolkit layer (decision rules, blocking,
    evaluation against ground truth) and the high-level ``link_tables``
    entry point (a compatibility wrapper over the jobs layer).

``repro.jobs``
    The job-oriented public API: the fluent ``LinkageJob`` builder
    (compiles to a frozen ``RunConfig``) and the ``JobHandle`` it
    returns — blocking ``run()``, lazy ``stream_matches()`` (sync and
    async), live ``progress()`` and mid-run ``cancel()`` with partial
    results.

``repro.datagen``
    The synthetic workload generator of Sec. 4.1: municipality-style parent
    tables, accident-style child tables, variant injection and the four
    perturbation patterns of Fig. 5.

``repro.bench``
    The experiment drivers that regenerate every table and figure of the
    paper's evaluation (see DESIGN.md and EXPERIMENTS.md).
"""

from repro.core.metrics import GainCostReport
from repro.core.state_machine import JoinState
from repro.core.thresholds import Thresholds
from repro.engine.table import Table
from repro.engine.tuples import Record, Schema
from repro.jobs import JobHandle, LinkageJob, LinkageResult, StreamedMatch
from repro.joins.shjoin import SHJoin
from repro.joins.sshjoin import SSHJoin
from repro.linkage.api import link_tables
from repro.runtime.adaptive import AdaptiveJoinProcessor, AdaptiveJoinResult
from repro.runtime.config import RunConfig
from repro.runtime.events import EventBus
from repro.runtime.policy import available_policies, register_policy
from repro.runtime.session import JoinSession

__version__ = "1.2.0"

__all__ = [
    "AdaptiveJoinProcessor",
    "AdaptiveJoinResult",
    "Thresholds",
    "JoinState",
    "GainCostReport",
    "Table",
    "Record",
    "Schema",
    "SHJoin",
    "SSHJoin",
    "link_tables",
    "LinkageJob",
    "JobHandle",
    "LinkageResult",
    "StreamedMatch",
    "RunConfig",
    "JoinSession",
    "EventBus",
    "register_policy",
    "available_policies",
    "__version__",
]
