"""Edit-based string distances.

The test-data generator creates variants at edit distance 1 from the clean
value (Sec. 4.1 of the paper), so edit distances are needed both to verify
generated datasets and as alternative similarity measures in the linkage
toolkit layer.
"""

from __future__ import annotations

from typing import List


def levenshtein_distance(left: str, right: str) -> int:
    """Levenshtein (insert/delete/substitute) distance between two strings.

    A standard two-row dynamic program; O(len(left) * len(right)) time,
    O(min(len)) space.

    Examples
    --------
    >>> levenshtein_distance("GENOVA", "GENOVA")
    0
    >>> levenshtein_distance("GENOVA", "GENOVX")
    1
    """
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    # Keep the shorter string as the column dimension to bound memory.
    if len(right) > len(left):
        left, right = right, left
    previous: List[int] = list(range(len(right) + 1))
    for i, left_char in enumerate(left, start=1):
        current = [i] + [0] * len(right)
        for j, right_char in enumerate(right, start=1):
            substitution = previous[j - 1] + (0 if left_char == right_char else 1)
            current[j] = min(previous[j] + 1, current[j - 1] + 1, substitution)
        previous = current
    return previous[-1]


def damerau_levenshtein_distance(left: str, right: str) -> int:
    """Damerau-Levenshtein distance (adds adjacent transposition).

    The restricted ("optimal string alignment") variant, which suffices for
    recognising single-typo variants such as transposed characters.
    """
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    rows = len(left) + 1
    cols = len(right) + 1
    table: List[List[int]] = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        table[i][0] = i
    for j in range(cols):
        table[0][j] = j
    for i in range(1, rows):
        for j in range(1, cols):
            cost = 0 if left[i - 1] == right[j - 1] else 1
            table[i][j] = min(
                table[i - 1][j] + 1,
                table[i][j - 1] + 1,
                table[i - 1][j - 1] + cost,
            )
            if (
                i > 1
                and j > 1
                and left[i - 1] == right[j - 2]
                and left[i - 2] == right[j - 1]
            ):
                table[i][j] = min(table[i][j], table[i - 2][j - 2] + 1)
    return table[-1][-1]


def levenshtein_similarity(left: str, right: str) -> float:
    """Levenshtein distance normalised into a [0, 1] similarity.

    ``1 − distance / max(len)``; two empty strings have similarity 1.0.
    """
    longest = max(len(left), len(right))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(left, right) / longest
