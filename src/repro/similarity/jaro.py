"""Jaro and Jaro-Winkler similarities.

These edit-based hybrid measures are standard in record-linkage toolkits
(Tailor, BigMatch) and are exposed here so the linkage layer can offer them
alongside the q-gram Jaccard measure the paper uses.
"""

from __future__ import annotations


def jaro_similarity(left: str, right: str) -> float:
    """Jaro similarity between two strings, in [0, 1].

    Two empty strings compare as identical (1.0); an empty string against a
    non-empty one yields 0.0.
    """
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    match_window = max(len(left), len(right)) // 2 - 1
    match_window = max(match_window, 0)

    left_matched = [False] * len(left)
    right_matched = [False] * len(right)
    matches = 0
    for i, left_char in enumerate(left):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len(right))
        for j in range(start, end):
            if right_matched[j] or right[j] != left_char:
                continue
            left_matched[i] = True
            right_matched[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i, was_matched in enumerate(left_matched):
        if not was_matched:
            continue
        while not right_matched[j]:
            j += 1
        if left[i] != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    return (
        matches / len(left)
        + matches / len(right)
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(
    left: str, right: str, prefix_scale: float = 0.1, max_prefix: int = 4
) -> float:
    """Jaro-Winkler similarity: Jaro boosted by a common-prefix bonus.

    ``prefix_scale`` must lie in [0, 0.25] to keep the result in [0, 1].
    """
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError(f"prefix_scale must be in [0, 0.25], got {prefix_scale}")
    jaro = jaro_similarity(left, right)
    prefix = 0
    for left_char, right_char in zip(left, right):
        if left_char != right_char or prefix >= max_prefix:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)
