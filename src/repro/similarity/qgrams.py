"""q-gram tokenisation.

The set of q-grams of a string ``s``, denoted ``q(s)`` in the paper, is the
set of all substrings obtained by sliding a window of width ``q`` over
``s``.  The paper uses ``q = 3`` and counts ``|jA| + q − 1`` grams for a
join-attribute value of length ``|jA|``, which corresponds to *padded*
q-grams: the string is framed with ``q − 1`` copies of a padding character
on each side, so that every character participates in exactly ``q`` grams
and short strings still produce tokens.

Both padded and unpadded variants are provided; the SSHJoin operator uses
the padded variant to match the paper's cost accounting.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, List, Tuple

PADDING_CHAR = "¤"  # unlikely to occur in real join-attribute values


def qgrams(text: str, q: int = 3, padded: bool = True) -> List[str]:
    """Return the list of q-grams of ``text`` in sliding-window order.

    Parameters
    ----------
    text:
        The string to tokenise.  ``None`` is treated as the empty string.
    q:
        Window width; must be a positive integer.
    padded:
        When true (default) the string is framed with ``q − 1`` padding
        characters on each side, yielding ``len(text) + q − 1`` grams — the
        count used throughout the paper's cost analysis.  When false, plain
        substrings are used and strings shorter than ``q`` yield a single
        gram equal to the whole string (or none if empty).

    Examples
    --------
    >>> qgrams("abc", q=3, padded=False)
    ['abc']
    >>> len(qgrams("abc", q=3, padded=True))
    5
    """
    if q <= 0:
        raise ValueError(f"q must be a positive integer, got {q}")
    if text is None:
        text = ""
    if not text:
        return []
    if padded:
        framed = PADDING_CHAR * (q - 1) + text + PADDING_CHAR * (q - 1)
        return [framed[i : i + q] for i in range(len(text) + q - 1)]
    if len(text) < q:
        return [text]
    return [text[i : i + q] for i in range(len(text) - q + 1)]


def qgram_set(text: str, q: int = 3, padded: bool = True) -> FrozenSet[str]:
    """Return the *set* ``q(s)`` of distinct q-grams of ``text``."""
    return frozenset(qgrams(text, q=q, padded=padded))


def qgram_multiset(text: str, q: int = 3, padded: bool = True) -> Counter:
    """Return the multiset (Counter) of q-grams of ``text``.

    Multiset semantics matter for strings with repeated substrings; the
    SSHJoin counter-based probing works on multisets of grams so that the
    threshold ``c(t') ≥ k`` has the intended meaning.
    """
    return Counter(qgrams(text, q=q, padded=padded))


def qgram_profile(text: str, q: int = 3, padded: bool = True) -> Dict[str, int]:
    """Return a plain-dict q-gram frequency profile of ``text``."""
    return dict(qgram_multiset(text, q=q, padded=padded))


def positional_qgrams(
    text: str, q: int = 3, padded: bool = True
) -> List[Tuple[int, str]]:
    """Return ``(position, gram)`` pairs for ``text``.

    Positional q-grams support positional filters (not used by the paper's
    operator but exposed for the linkage toolkit layer and extensions).
    """
    return list(enumerate(qgrams(text, q=q, padded=padded)))


def expected_qgram_count(value_length: int, q: int = 3) -> int:
    """The paper's gram count for a value of length ``value_length``.

    Table 1 of the paper uses ``|jA| + q − 1`` grams per value; this helper
    centralises that formula so the cost model and tests agree with the
    tokeniser.
    """
    if value_length <= 0:
        return 0
    return value_length + q - 1
