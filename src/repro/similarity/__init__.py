"""String-similarity substrate.

The paper measures string similarity with the Jaccard coefficient over
q-grams (q = 3 by default).  This package implements that measure together
with the q-gram machinery the SSHJoin operator needs (per-string q-gram
sets, multisets and positional grams), and a set of alternative similarity
functions (overlap, Dice, cosine over q-grams, Levenshtein, Damerau-
Levenshtein, Jaro, Jaro-Winkler) used as extensions and in the linkage
toolkit layer.
"""

from repro.similarity.qgrams import (
    PADDING_CHAR,
    qgram_multiset,
    qgram_profile,
    qgram_set,
    qgrams,
)
from repro.similarity.setsim import (
    cosine_qgram_similarity,
    dice_similarity,
    jaccard_qgram_similarity,
    jaccard_similarity,
    overlap_coefficient,
)
from repro.similarity.editdistance import (
    damerau_levenshtein_distance,
    levenshtein_distance,
    levenshtein_similarity,
)
from repro.similarity.jaro import jaro_similarity, jaro_winkler_similarity
from repro.similarity.registry import (
    SimilarityFunction,
    available_similarities,
    get_similarity,
    register_similarity,
)

__all__ = [
    "PADDING_CHAR",
    "qgrams",
    "qgram_set",
    "qgram_multiset",
    "qgram_profile",
    "jaccard_similarity",
    "jaccard_qgram_similarity",
    "overlap_coefficient",
    "dice_similarity",
    "cosine_qgram_similarity",
    "levenshtein_distance",
    "levenshtein_similarity",
    "damerau_levenshtein_distance",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "SimilarityFunction",
    "register_similarity",
    "get_similarity",
    "available_similarities",
]
