"""Set- and token-based similarity measures.

The paper's operator decides matches with the Jaccard coefficient over
q-gram sets:

.. math::

    sim(s_1, s_2) = \\frac{|q(s_1) \\cap q(s_2)|}{|q(s_1) \\cup q(s_2)|}

Overlap, Dice and cosine variants are provided as well; they share the same
q-gram tokenisation and are interchangeable through the similarity registry
(the paper notes that "other similarity functions based on q-grams can be
exploited").
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Set

from repro.similarity.qgrams import qgram_multiset, qgram_set


def jaccard_similarity(left: Iterable, right: Iterable) -> float:
    """Jaccard coefficient of two token collections.

    Accepts any iterables of hashable tokens; duplicates are ignored (set
    semantics).  Two empty collections are defined to have similarity 1.0
    (they are indistinguishable), while an empty vs a non-empty collection
    has similarity 0.0.
    """
    left_set: Set = set(left)
    right_set: Set = set(right)
    if not left_set and not right_set:
        return 1.0
    union = len(left_set | right_set)
    if union == 0:
        return 1.0
    return len(left_set & right_set) / union


def jaccard_qgram_similarity(
    left: str, right: str, q: int = 3, padded: bool = True
) -> float:
    """Jaccard coefficient over the q-gram sets of two strings.

    This is the ``sim`` function of the paper (Sec. 2.2).

    Examples
    --------
    >>> jaccard_qgram_similarity("GENOVA", "GENOVA")
    1.0
    >>> 0.0 < jaccard_qgram_similarity("GENOVA", "GENOVa") < 1.0
    True
    """
    return jaccard_similarity(
        qgram_set(left, q=q, padded=padded), qgram_set(right, q=q, padded=padded)
    )


def overlap_coefficient(left: Iterable, right: Iterable) -> float:
    """Overlap (Szymkiewicz-Simpson) coefficient of two token collections.

    ``|A ∩ B| / min(|A|, |B|)``; 1.0 when either side is empty and the other
    is too, 0.0 when exactly one side is empty.
    """
    left_set: Set = set(left)
    right_set: Set = set(right)
    if not left_set and not right_set:
        return 1.0
    if not left_set or not right_set:
        return 0.0
    return len(left_set & right_set) / min(len(left_set), len(right_set))


def dice_similarity(left: Iterable, right: Iterable) -> float:
    """Sørensen-Dice coefficient of two token collections."""
    left_set: Set = set(left)
    right_set: Set = set(right)
    if not left_set and not right_set:
        return 1.0
    denominator = len(left_set) + len(right_set)
    if denominator == 0:
        return 1.0
    return 2.0 * len(left_set & right_set) / denominator


def cosine_qgram_similarity(
    left: str, right: str, q: int = 3, padded: bool = True
) -> float:
    """Cosine similarity between the q-gram frequency vectors of two strings.

    Unlike the Jaccard variant this respects gram multiplicities, which can
    matter for values with repeated substrings.
    """
    left_counts: Counter = qgram_multiset(left, q=q, padded=padded)
    right_counts: Counter = qgram_multiset(right, q=q, padded=padded)
    if not left_counts and not right_counts:
        return 1.0
    if not left_counts or not right_counts:
        return 0.0
    dot = sum(count * right_counts[gram] for gram, count in left_counts.items())
    left_norm = math.sqrt(sum(c * c for c in left_counts.values()))
    right_norm = math.sqrt(sum(c * c for c in right_counts.values()))
    if left_norm == 0.0 or right_norm == 0.0:
        return 0.0
    return dot / (left_norm * right_norm)


def jaccard_from_shared(shared: int, left_size: int, right_size: int) -> float:
    """Jaccard coefficient from a shared-count and the two set sizes.

    The one formula every verification path — the bitset and sorted-array
    loops of :meth:`repro.joins.base.SideState.probe_qgram` and the
    columnar kernels of :mod:`repro.kernels` — uses to turn a shared-gram
    count into the reported similarity:
    ``shared / (|A| + |B| − shared)``.  Also accepts numpy arrays for any
    argument (float64 division is the same IEEE operation as Python's, so
    vectorised and scalar results are bit-identical).  Two empty sets are
    defined to have similarity 1.0, matching :func:`jaccard_similarity`.
    """
    union = left_size + right_size - shared
    if isinstance(union, int) and union == 0:
        return 1.0
    return shared / union


def jaccard_match_threshold(
    value_length: int, q: int, similarity_threshold: float
) -> int:
    """Minimum number of shared q-grams required to reach a Jaccard threshold.

    SSHJoin prunes candidate tuples using a count threshold ``k`` on shared
    q-grams: a pair whose Jaccard similarity is at least ``θ_sim`` must
    share at least

    .. math::

        k = \\lceil \\theta_{sim} \\cdot g \\rceil

    grams, where ``g = |jA| + q − 1`` is the gram count of the probe value
    — because the union of the two gram sets is at least as large as the
    probe's own gram set.  The bound is conservative (never prunes a true
    match) but tight enough to keep candidate sets small.
    """
    if not 0.0 <= similarity_threshold <= 1.0:
        raise ValueError(
            f"similarity threshold must be in [0, 1], got {similarity_threshold}"
        )
    if value_length <= 0:
        return 0
    grams = value_length + q - 1
    return max(1, math.ceil(similarity_threshold * grams))
