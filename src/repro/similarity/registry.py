"""A registry of named string-similarity functions.

The adaptive join and the linkage toolkit accept a similarity function
either as a callable ``(str, str) -> float`` or as a registered name.  The
registry keeps the mapping between the two, so configuration files,
benchmarks and the command line can refer to measures by name.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.similarity.editdistance import levenshtein_similarity
from repro.similarity.jaro import jaro_similarity, jaro_winkler_similarity
from repro.similarity.setsim import (
    cosine_qgram_similarity,
    dice_similarity,
    jaccard_qgram_similarity,
    overlap_coefficient,
)
from repro.similarity.qgrams import qgram_set

SimilarityFunction = Callable[[str, str], float]

_REGISTRY: Dict[str, SimilarityFunction] = {}


def register_similarity(name: str, function: SimilarityFunction) -> None:
    """Register ``function`` under ``name`` (overwriting silently is an error)."""
    if not name:
        raise ValueError("similarity function name must be non-empty")
    if name in _REGISTRY:
        raise ValueError(f"similarity function {name!r} is already registered")
    _REGISTRY[name] = function


def get_similarity(name_or_function) -> SimilarityFunction:
    """Resolve ``name_or_function`` to a callable similarity function.

    Callables are returned unchanged; strings are looked up in the registry.
    """
    if callable(name_or_function):
        return name_or_function
    try:
        return _REGISTRY[name_or_function]
    except KeyError:
        raise KeyError(
            f"unknown similarity function {name_or_function!r}; "
            f"available: {sorted(_REGISTRY)}"
        ) from None


def available_similarities() -> List[str]:
    """Names of all registered similarity functions."""
    return sorted(_REGISTRY)


def _qgram_overlap(left: str, right: str) -> float:
    return overlap_coefficient(qgram_set(left), qgram_set(right))


def _qgram_dice(left: str, right: str) -> float:
    return dice_similarity(qgram_set(left), qgram_set(right))


def _register_builtins() -> None:
    register_similarity("jaccard_qgram", jaccard_qgram_similarity)
    register_similarity("cosine_qgram", cosine_qgram_similarity)
    register_similarity("overlap_qgram", _qgram_overlap)
    register_similarity("dice_qgram", _qgram_dice)
    register_similarity("levenshtein", levenshtein_similarity)
    register_similarity("jaro", jaro_similarity)
    register_similarity("jaro_winkler", jaro_winkler_similarity)


_register_builtins()
