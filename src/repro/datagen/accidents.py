"""Synthetic accidents child table.

The child table of the paper's scenario records car accidents, each carrying
the location string of the municipality where it occurred.  In the clean
(unperturbed) data every accident's location matches one parent-table
location exactly — the parent-child expectation the completeness model of
Sec. 3.2 relies on.

Accidents also carry a few payload attributes (date, severity, vehicle
count) so that the examples and the linkage layer have something realistic
to project and aggregate; the join itself only uses ``location``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.engine.table import Table
from repro.engine.tuples import Schema

#: Schema of the generated child table.
ACCIDENT_SCHEMA = Schema(
    ["accident_id", "location", "date", "severity", "vehicles"], name="accidents"
)

_SEVERITIES: Sequence[str] = ("minor", "moderate", "severe", "fatal")


def _random_date(rng: random.Random) -> str:
    """An ISO date within a one-year window (values only need to look plausible)."""
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return f"2008-{month:02d}-{day:02d}"


def generate_accidents(
    locations: Sequence[str],
    count: int,
    seed: int = 11,
    location_sampler: Optional[random.Random] = None,
) -> Table:
    """Generate ``count`` accident records referencing the given locations.

    Parameters
    ----------
    locations:
        The clean parent-table location strings to draw from.  Each accident
        references one of them uniformly at random, so a location may be
        referenced by zero, one or several accidents (realistic fan-out).
    count:
        Number of accident records to generate.
    seed:
        Seed for the deterministic generation.
    location_sampler:
        Optional dedicated RNG for the location choice; when omitted the
        main RNG is used.  (Exposed so test cases can fix the referenced
        locations while varying the payload.)

    Returns
    -------
    Table
        A table with schema ``(accident_id, location, date, severity,
        vehicles)`` whose ``location`` values are all clean (exact copies of
        parent values); variant injection happens separately, in
        :mod:`repro.datagen.testcases`.
    """
    if not locations:
        raise ValueError("at least one location is required")
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    rng = random.Random(seed)
    location_rng = location_sampler or rng
    table = Table(ACCIDENT_SCHEMA, name="accidents")
    for identifier in range(count):
        location = location_rng.choice(locations)
        table.insert_values(
            identifier,
            location,
            _random_date(rng),
            rng.choice(_SEVERITIES),
            rng.randint(1, 4),
        )
    return table


def accident_locations(table: Table) -> List[str]:
    """The location column of an accidents table (convenience for tests)."""
    return [str(value) for value in table.column("location")]
