"""Perturbation patterns (paper Fig. 5).

A perturbation pattern describes *where* in an input the variant tuples
occur.  The paper fixes the overall variant rate at 10 % of the input and
distributes those variants according to one of four patterns:

``uniform``
    Variants are spread uniformly over the whole input (Fig. 5.a): no
    distinguishable perturbation regions, slow accumulation of statistical
    evidence.
``interleaved_low``
    Low-intensity perturbation regions interleaved with clean stretches
    (Fig. 5.b).
``few_high``
    A small number of well-separated, high-intensity perturbation regions
    (Fig. 5.c).
``many_high``
    Many short, high-intensity perturbation regions (Fig. 5.d) — with the
    total variant rate fixed, more regions means shorter regions.

A pattern is described by a list of :class:`PerturbationRegion` fractions
(start / length / intensity relative to the input length); the helper
:func:`perturbation_flags` turns a pattern into a concrete boolean mask
("is the i-th tuple a variant?") for a given input size and target rate,
re-scaling region intensities so the realised rate matches the target.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class PerturbationRegion:
    """One contiguous perturbed stretch of an input, in relative coordinates.

    ``start`` and ``length`` are fractions of the input length in [0, 1];
    ``intensity`` is the probability that a tuple inside the region is a
    variant (before the global re-scaling that pins the overall rate).
    """

    start: float
    length: float
    intensity: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.start <= 1.0:
            raise ValueError(f"region start must be in [0, 1], got {self.start}")
        if not 0.0 < self.length <= 1.0:
            raise ValueError(f"region length must be in (0, 1], got {self.length}")
        if not 0.0 < self.intensity <= 1.0:
            raise ValueError(f"region intensity must be in (0, 1], got {self.intensity}")


@dataclass(frozen=True)
class PerturbationPattern:
    """A named perturbation pattern: a list of regions plus a description."""

    name: str
    regions: Sequence[PerturbationRegion]
    description: str = ""

    def intensity_profile(self, size: int) -> List[float]:
        """Per-position variant probability (before rate normalisation)."""
        profile = [0.0] * size
        for region in self.regions:
            begin = int(region.start * size)
            end = min(size, begin + max(1, int(region.length * size)))
            for index in range(begin, end):
                profile[index] = max(profile[index], region.intensity)
        return profile


def _uniform_pattern() -> PerturbationPattern:
    return PerturbationPattern(
        name="uniform",
        regions=(PerturbationRegion(start=0.0, length=1.0, intensity=0.10),),
        description="variants spread uniformly over the whole input (Fig. 5.a)",
    )


def _interleaved_low_pattern() -> PerturbationPattern:
    # Six low-intensity regions, each 10% of the input, evenly interleaved
    # with clean stretches.
    regions = tuple(
        PerturbationRegion(start=start, length=0.10, intensity=0.25)
        for start in (0.05, 0.21, 0.37, 0.53, 0.69, 0.85)
    )
    return PerturbationPattern(
        name="interleaved_low",
        regions=regions,
        description="low-intensity regions interleaved with clean stretches (Fig. 5.b)",
    )


def _few_high_pattern() -> PerturbationPattern:
    regions = tuple(
        PerturbationRegion(start=start, length=0.08, intensity=0.85)
        for start in (0.15, 0.55, 0.85)
    )
    return PerturbationPattern(
        name="few_high",
        regions=regions,
        description="a few well-separated high-intensity regions (Fig. 5.c)",
    )


def _many_high_pattern() -> PerturbationPattern:
    regions = tuple(
        PerturbationRegion(start=start, length=0.025, intensity=0.85)
        for start in (0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95)
    )
    return PerturbationPattern(
        name="many_high",
        regions=regions,
        description="many short high-intensity regions (Fig. 5.d)",
    )


#: The four patterns of Fig. 5, keyed by name.
STANDARD_PATTERNS: Dict[str, PerturbationPattern] = {
    pattern.name: pattern
    for pattern in (
        _uniform_pattern(),
        _interleaved_low_pattern(),
        _few_high_pattern(),
        _many_high_pattern(),
    )
}


def pattern_by_name(name: str) -> PerturbationPattern:
    """Look up one of the standard patterns by name."""
    try:
        return STANDARD_PATTERNS[name]
    except KeyError:
        raise KeyError(
            f"unknown perturbation pattern {name!r}; available: "
            f"{sorted(STANDARD_PATTERNS)}"
        ) from None


def perturbation_flags(
    pattern: PerturbationPattern,
    size: int,
    variant_rate: float,
    rng: random.Random,
) -> List[bool]:
    """Concrete per-position variant flags for an input of ``size`` tuples.

    The pattern's intensity profile says *where* variants may occur; the
    profile is re-scaled so that the expected number of flagged positions is
    ``variant_rate * size`` (the paper fixes this at 10 %), then sampled.

    Returns a list of booleans, one per input position.
    """
    if size <= 0:
        raise ValueError(f"input size must be positive, got {size}")
    if not 0.0 <= variant_rate <= 1.0:
        raise ValueError(f"variant rate must be in [0, 1], got {variant_rate}")
    if variant_rate == 0.0:
        return [False] * size

    profile = pattern.intensity_profile(size)
    profile_mass = sum(profile)
    if profile_mass == 0.0:
        # Degenerate pattern: fall back to uniform flags.
        profile = [1.0] * size
        profile_mass = float(size)
    target = variant_rate * size
    scale = target / profile_mass
    flags = [rng.random() < min(1.0, probability * scale) for probability in profile]
    return flags
