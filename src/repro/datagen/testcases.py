"""The eight test cases of the paper's evaluation (Sec. 4.1).

Each test case combines one of the four perturbation patterns of Fig. 5 with
one of two variant placements:

* ``child`` — variants only in the child (accidents) table;
* ``both``  — variants in both tables, injected independently.

The overall variant rate is fixed at 10 % per perturbed input, as in the
paper.  A generated test case carries the perturbed tables, the clean
ground-truth pairs (every accident paired with the municipality it
references — what a perfect linkage would return), and the variant flags so
tests can verify the generator itself.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.datagen.accidents import ACCIDENT_SCHEMA
from repro.datagen.municipalities import (
    DEFAULT_MUNICIPALITY_COUNT,
    MUNICIPALITY_SCHEMA,
    generate_location_strings,
)
from repro.datagen.patterns import (
    PerturbationPattern,
    STANDARD_PATTERNS,
    pattern_by_name,
    perturbation_flags,
)
from repro.datagen.variants import make_variant
from repro.engine.table import Table

#: Variant rate used throughout the paper's evaluation.
DEFAULT_VARIANT_RATE = 0.10

#: Default child-table size for the standard experiments.  The paper does
#: not state the accidents-table cardinality; we default to roughly twice
#: the parent size (a fan-out of about two accidents per municipality),
#: which matches the scenario of an accidents table collected nationwide
#: over time and keeps the parent-child expectation meaningful.  Every
#: generator accepts an explicit size for scaling up or down.
DEFAULT_ACCIDENT_COUNT = 16000


@dataclass(frozen=True)
class TestCaseSpec:
    """Identification and parameters of one evaluation test case.

    ``variants_in`` accepts ``"child"`` and ``"both"`` (the paper's eight
    standard cases) plus ``"parent"`` as an extension: variants only in the
    parent table, the configuration that exercises the ``lap/rex`` hybrid
    state of the adaptive machine.
    """

    #: Tell pytest this dataclass is not a test class despite its name.
    __test__ = False

    name: str
    pattern: str
    variants_in: str  # "child", "both" or "parent"
    parent_size: int = DEFAULT_MUNICIPALITY_COUNT
    child_size: int = DEFAULT_ACCIDENT_COUNT
    variant_rate: float = DEFAULT_VARIANT_RATE
    seed: int = 42

    def __post_init__(self) -> None:
        if self.variants_in not in ("child", "both", "parent"):
            raise ValueError(
                "variants_in must be 'child', 'both' or 'parent', "
                f"got {self.variants_in!r}"
            )
        if self.pattern not in STANDARD_PATTERNS:
            raise ValueError(
                f"unknown pattern {self.pattern!r}; available: "
                f"{sorted(STANDARD_PATTERNS)}"
            )
        if self.parent_size <= 0 or self.child_size <= 0:
            raise ValueError("table sizes must be positive")
        if not 0.0 <= self.variant_rate <= 1.0:
            raise ValueError(f"variant_rate must be in [0, 1], got {self.variant_rate}")

    def scaled(self, parent_size: int, child_size: int) -> "TestCaseSpec":
        """A copy of the spec with different table sizes (same seed/pattern)."""
        return TestCaseSpec(
            name=self.name,
            pattern=self.pattern,
            variants_in=self.variants_in,
            parent_size=parent_size,
            child_size=child_size,
            variant_rate=self.variant_rate,
            seed=self.seed,
        )


@dataclass
class GeneratedDataset:
    """One generated test case: perturbed tables plus ground truth."""

    spec: TestCaseSpec
    parent: Table
    child: Table
    #: (parent index, child index) pairs a perfect linkage would return.
    true_pairs: List[Tuple[int, int]]
    #: Per-child-row flag: was this row's location perturbed?
    child_variant_flags: List[bool]
    #: Per-parent-row flag: was this row's location perturbed?
    parent_variant_flags: List[bool]

    @property
    def expected_result_size(self) -> int:
        """The parent-child expectation: one match per child row."""
        return len(self.true_pairs)

    @property
    def child_variant_count(self) -> int:
        """Number of perturbed child rows."""
        return sum(self.child_variant_flags)

    @property
    def parent_variant_count(self) -> int:
        """Number of perturbed parent rows."""
        return sum(self.parent_variant_flags)

    def exactly_matchable_pairs(self) -> List[Tuple[int, int]]:
        """True pairs whose two location strings are still identical.

        This is the result an all-exact join can achieve at best, useful as
        an oracle in tests.
        """
        pairs = []
        for parent_index, child_index in self.true_pairs:
            if (
                self.parent[parent_index]["location"]
                == self.child[child_index]["location"]
            ):
                pairs.append((parent_index, child_index))
        return pairs


#: The eight standard test cases of Sec. 4, keyed by name.
STANDARD_TEST_CASES: Dict[str, TestCaseSpec] = {}


def _register_standard_cases() -> None:
    seed = 42
    for pattern_name in ("uniform", "interleaved_low", "few_high", "many_high"):
        for variants_in in ("child", "both"):
            name = f"{pattern_name}_{variants_in}"
            STANDARD_TEST_CASES[name] = TestCaseSpec(
                name=name,
                pattern=pattern_name,
                variants_in=variants_in,
                seed=seed,
            )
            seed += 1


_register_standard_cases()


def generate_test_case(
    spec: TestCaseSpec,
    parent_size: Optional[int] = None,
    child_size: Optional[int] = None,
) -> GeneratedDataset:
    """Generate the dataset for ``spec`` (optionally overriding table sizes).

    Generation is fully deterministic given the spec (and overrides): the
    same spec always produces the same tables, ground truth and flags.
    """
    if parent_size is not None or child_size is not None:
        spec = spec.scaled(
            parent_size or spec.parent_size, child_size or spec.child_size
        )
    rng = random.Random(spec.seed)
    pattern: PerturbationPattern = pattern_by_name(spec.pattern)

    clean_locations = generate_location_strings(spec.parent_size, seed=spec.seed)

    # Child rows reference parents uniformly at random; remember the parent
    # index of each child row as ground truth.
    referenced_parents = [
        rng.randrange(spec.parent_size) for _ in range(spec.child_size)
    ]
    true_pairs = [(parent, child) for child, parent in enumerate(referenced_parents)]

    if spec.variants_in in ("child", "both"):
        child_flags = perturbation_flags(
            pattern, spec.child_size, spec.variant_rate, rng
        )
    else:
        child_flags = [False] * spec.child_size
    if spec.variants_in in ("both", "parent"):
        parent_flags = perturbation_flags(
            pattern, spec.parent_size, spec.variant_rate, rng
        )
    else:
        parent_flags = [False] * spec.parent_size

    parent_table = Table(MUNICIPALITY_SCHEMA, name="municipalities")
    for index, location in enumerate(clean_locations):
        value = make_variant(location, rng) if parent_flags[index] else location
        parent_table.insert_values(index, value)

    child_table = Table(ACCIDENT_SCHEMA, name="accidents")
    severities = ("minor", "moderate", "severe", "fatal")
    for child_index, parent_index in enumerate(referenced_parents):
        location = clean_locations[parent_index]
        if child_flags[child_index]:
            location = make_variant(location, rng)
        month = rng.randint(1, 12)
        day = rng.randint(1, 28)
        child_table.insert_values(
            child_index,
            location,
            f"2008-{month:02d}-{day:02d}",
            rng.choice(severities),
            rng.randint(1, 4),
        )

    return GeneratedDataset(
        spec=spec,
        parent=parent_table,
        child=child_table,
        true_pairs=true_pairs,
        child_variant_flags=child_flags,
        parent_variant_flags=parent_flags,
    )


def generate_all_standard_cases(
    parent_size: Optional[int] = None, child_size: Optional[int] = None
) -> Dict[str, GeneratedDataset]:
    """Generate every standard test case (optionally at reduced scale)."""
    return {
        name: generate_test_case(spec, parent_size=parent_size, child_size=child_size)
        for name, spec in STANDARD_TEST_CASES.items()
    }
