"""Synthetic municipality-style parent table.

The paper's parent table contains "all 8082 municipalities in Italy", each
represented by one location string of the form::

    <REGION CODE> <PROVINCE CODE> <MUNICIPALITY NAME>

e.g. ``TAA BZ SANTA CRISTINA VALGARDENA``.  We synthesise strings of the
same shape deterministically: the 20 Italian region codes and a realistic
set of two-letter province codes are combined with pronounceable synthetic
municipality names built from Italian-sounding syllables and common
toponymic prefixes/suffixes.  All names are distinct, so the parent table is
a proper key table (each location string identifies one municipality).

The *content* of the names is irrelevant to the algorithms under test — only
the string lengths, the shared prefixes (which stress the q-gram index) and
the uniqueness of the values matter — which is why this substitution
preserves the behaviour of the paper's experiments (see DESIGN.md, Sec. 2).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.engine.table import Table
from repro.engine.tuples import Schema

#: Default parent-table size: the number of Italian municipalities used in the paper.
DEFAULT_MUNICIPALITY_COUNT = 8082

#: Region codes (abbreviations of the 20 Italian regions).
REGION_CODES: Sequence[str] = (
    "ABR", "BAS", "CAL", "CAM", "EMR", "FVG", "LAZ", "LIG", "LOM", "MAR",
    "MOL", "PIE", "PUG", "SAR", "SIC", "TOS", "TAA", "UMB", "VDA", "VEN",
)

#: Two-letter province codes (a representative subset per region).
PROVINCE_CODES: Sequence[str] = (
    "AQ", "PZ", "CZ", "NA", "BO", "TS", "RM", "GE", "MI", "AN",
    "CB", "TO", "BA", "CA", "PA", "FI", "BZ", "PG", "AO", "VE",
    "BG", "BS", "VR", "PD", "MO", "PR", "SA", "CE", "LE", "CT",
)

_NAME_PREFIXES: Sequence[str] = (
    "SAN", "SANTA", "SANTO", "CASTEL", "MONTE", "VILLA", "BORGO", "PIEVE",
    "ROCCA", "TORRE", "CIVITA", "COLLE", "POGGIO", "SERRA", "VALLE", "",
    "", "", "", "",
)

_NAME_SYLLABLES: Sequence[str] = (
    "BA", "BE", "BI", "BO", "BU", "CA", "CE", "CI", "CO", "CU",
    "DA", "DE", "DI", "DO", "FA", "FE", "FI", "FO", "GA", "GE",
    "GI", "GO", "LA", "LE", "LI", "LO", "LU", "MA", "ME", "MI",
    "MO", "NA", "NE", "NI", "NO", "PA", "PE", "PI", "PO", "RA",
    "RE", "RI", "RO", "RU", "SA", "SE", "SI", "SO", "TA", "TE",
    "TI", "TO", "VA", "VE", "VI", "VO", "ZA", "ZO",
)

_NAME_SUFFIXES: Sequence[str] = (
    "NO", "NA", "RE", "TO", "LI", "ZZO", "ZZA", "GLIA", "NZA", "RDO",
    "LLO", "LLA", "SIO", "TTI", "NTE", "GNO",
)

_NAME_QUALIFIERS: Sequence[str] = (
    "", "", "", "", "", "", "", "",
    " MARITTIMA", " TERME", " SUPERIORE", " INFERIORE", " VECCHIO", " NUOVO",
    " AL MARE", " IN COLLE", " VALGARDENA", " DEL MONTE", " SUL NAVIGLIO",
    " DI SOTTO", " DI SOPRA",
)

#: Schema of the generated parent table.
MUNICIPALITY_SCHEMA = Schema(["municipality_id", "location"], name="municipalities")


def _synthesise_name(rng: random.Random) -> str:
    """Build one Italian-sounding municipality name."""
    prefix = rng.choice(_NAME_PREFIXES)
    core = "".join(rng.choice(_NAME_SYLLABLES) for _ in range(rng.randint(2, 4)))
    suffix = rng.choice(_NAME_SUFFIXES)
    qualifier = rng.choice(_NAME_QUALIFIERS)
    name = f"{core}{suffix}{qualifier}"
    if prefix:
        name = f"{prefix} {name}"
    return name


def generate_location_strings(
    count: int = DEFAULT_MUNICIPALITY_COUNT, seed: int = 7
) -> List[str]:
    """Generate ``count`` distinct location strings, deterministically from ``seed``."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    rng = random.Random(seed)
    locations: List[str] = []
    seen = set()
    while len(locations) < count:
        region = rng.choice(REGION_CODES)
        province = rng.choice(PROVINCE_CODES)
        name = _synthesise_name(rng)
        location = f"{region} {province} {name}"
        if location in seen:
            continue
        seen.add(location)
        locations.append(location)
    return locations


def generate_municipalities(
    count: int = DEFAULT_MUNICIPALITY_COUNT,
    seed: int = 7,
    locations: Optional[Sequence[str]] = None,
) -> Table:
    """Generate the parent table of municipalities.

    Parameters
    ----------
    count:
        Number of municipalities (default 8082, as in the paper).
    seed:
        Seed for the deterministic synthesis.
    locations:
        Optionally, a pre-built list of location strings to wrap into a
        table (used by tests); ``count``/``seed`` are then ignored.

    Returns
    -------
    Table
        A table with schema ``(municipality_id, location)`` whose
        ``location`` values are all distinct.
    """
    values = list(locations) if locations is not None else generate_location_strings(
        count, seed
    )
    table = Table(MUNICIPALITY_SCHEMA, name="municipalities")
    for identifier, location in enumerate(values):
        table.insert_values(identifier, location)
    return table
