"""Synthetic workload generation (paper Sec. 4.1, Fig. 5).

The paper's evaluation joins a parent table of 8082 Italian municipalities
(a "street atlas" of locations, each identified by a single string such as
``TAA BZ SANTA CRISTINA VALGARDENA``) with a child table of car accidents
referencing those locations, after injecting *variants* — one-character
perturbations of the location string — at a fixed 10 % rate following one of
four perturbation patterns.

The original tables come from a private generator (Markl et al.); this
package synthesises equivalent data:

* :mod:`repro.datagen.municipalities` — a deterministic parent table of
  municipality-style location strings with the same ``REGION PROVINCE NAME``
  shape and the same default size (8082);
* :mod:`repro.datagen.accidents` — the child table of accident records,
  each referencing one parent location;
* :mod:`repro.datagen.variants` — edit-distance-1 typo operators;
* :mod:`repro.datagen.patterns` — the four perturbation patterns of Fig. 5
  (uniform, interleaved low-intensity, few high-intensity, many
  high-intensity regions);
* :mod:`repro.datagen.testcases` — the eight test cases of Sec. 4
  (four patterns × variants in the child only / in both tables).
"""

from repro.datagen.accidents import generate_accidents
from repro.datagen.municipalities import generate_municipalities
from repro.datagen.patterns import (
    PerturbationPattern,
    PerturbationRegion,
    STANDARD_PATTERNS,
    pattern_by_name,
    perturbation_flags,
)
from repro.datagen.testcases import (
    STANDARD_TEST_CASES,
    GeneratedDataset,
    TestCaseSpec,
    generate_test_case,
)
from repro.datagen.variants import make_variant

__all__ = [
    "generate_municipalities",
    "generate_accidents",
    "make_variant",
    "PerturbationPattern",
    "PerturbationRegion",
    "STANDARD_PATTERNS",
    "pattern_by_name",
    "perturbation_flags",
    "TestCaseSpec",
    "GeneratedDataset",
    "STANDARD_TEST_CASES",
    "generate_test_case",
]
