"""Variant (typo) injection.

The paper perturbs a location string by introducing "a small, one-character
variation", e.g. ``SANTA CRISTINA VALGARDENA`` → ``SANTA CRISTINx
VALGARDENA``: an edit distance of 1 is enough to defeat an exact match while
remaining easy to recover with a q-gram similarity threshold of 0.85.

Four single-character operators are provided (substitution, deletion,
insertion, adjacent transposition).  By default only *substitution* is used
— matching the paper's example — but the generator can draw from all four to
exercise the similarity function more broadly.
"""

from __future__ import annotations

import random
import string
from typing import Callable, Dict, Sequence

#: Characters used for substituted / inserted characters.  Lower-case letters
#: are deliberately included: they never appear in the clean (upper-case)
#: values, so a substitution is guaranteed to change the string.
_REPLACEMENT_ALPHABET = string.ascii_lowercase


def substitute_character(value: str, rng: random.Random) -> str:
    """Replace one character of ``value`` with a character not equal to it."""
    if not value:
        return value
    position = rng.randrange(len(value))
    original = value[position]
    replacement = original
    while replacement == original:
        replacement = rng.choice(_REPLACEMENT_ALPHABET)
    return value[:position] + replacement + value[position + 1 :]


def delete_character(value: str, rng: random.Random) -> str:
    """Delete one character of ``value`` (strings of length ≤ 1 are substituted instead)."""
    if len(value) <= 1:
        return substitute_character(value, rng)
    position = rng.randrange(len(value))
    return value[:position] + value[position + 1 :]


def insert_character(value: str, rng: random.Random) -> str:
    """Insert one character into ``value``."""
    position = rng.randrange(len(value) + 1)
    return value[:position] + rng.choice(_REPLACEMENT_ALPHABET) + value[position:]


def transpose_characters(value: str, rng: random.Random) -> str:
    """Swap two adjacent, different characters of ``value``.

    Falls back to substitution when no two adjacent characters differ.
    """
    candidates = [
        i for i in range(len(value) - 1) if value[i] != value[i + 1]
    ]
    if not candidates:
        return substitute_character(value, rng)
    position = rng.choice(candidates)
    return (
        value[:position]
        + value[position + 1]
        + value[position]
        + value[position + 2 :]
    )


VariantOperator = Callable[[str, random.Random], str]

#: All available single-character perturbation operators, by name.
VARIANT_OPERATORS: Dict[str, VariantOperator] = {
    "substitute": substitute_character,
    "delete": delete_character,
    "insert": insert_character,
    "transpose": transpose_characters,
}


def make_variant(
    value: str,
    rng: random.Random,
    operators: Sequence[str] = ("substitute",),
) -> str:
    """Return a one-edit variant of ``value`` that differs from it.

    Parameters
    ----------
    value:
        The clean string.
    rng:
        Source of randomness (kept external for reproducibility).
    operators:
        Names of the operators to draw from (see :data:`VARIANT_OPERATORS`).
    """
    if not value:
        return value
    for name in operators:
        if name not in VARIANT_OPERATORS:
            raise ValueError(
                f"unknown variant operator {name!r}; available: "
                f"{sorted(VARIANT_OPERATORS)}"
            )
    for _ in range(16):
        operator = VARIANT_OPERATORS[rng.choice(list(operators))]
        variant = operator(value, rng)
        if variant != value:
            return variant
    # Degenerate values (e.g. single repeated character) may defeat delete /
    # transpose; substitution always succeeds.
    return substitute_character(value, rng)
