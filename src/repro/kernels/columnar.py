"""The columnar verification kernels (numpy required).

Both kernels answer the same question as the pure-Python verification
loops of :meth:`repro.joins.base.SideState.probe_qgram` — "how many
distinct q-grams does each candidate share with the probe value?" — but
for the whole candidate batch at once:

* :class:`NumpyBitsetKernel` packs each stored value's gram bitset into a
  row of a 2-D ``uint64`` matrix; a probe gathers the candidate rows and
  takes one vectorised AND + popcount.
* :class:`NumpyArrayKernel` stores each value's sorted gram ids in one
  CSR-style flat buffer (offsets + lengths); a probe gathers the
  candidate segments and runs a batched membership test + segmented sum —
  the batch equivalent of the two-pointer sorted intersection.

The match decision (counter test, Jaccard similarity, optional strict
verification) is shared in :meth:`_ColumnarKernel.verify` and kept
bit-identical to the scalar paths: numpy's float64 division is the same
IEEE operation as Python's ``/``, comparisons use the same threshold, and
results are converted back to built-in ``int``/``float`` on return.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.kernels.candidates import gather_candidates as _gather_candidates
from repro.similarity.setsim import jaccard_from_shared

if hasattr(np, "bitwise_count"):  # numpy ≥ 2.0

    def _row_popcounts(blocks: np.ndarray) -> np.ndarray:
        """Per-row popcount of a 2-D ``uint64`` block matrix."""
        return np.bitwise_count(blocks).sum(axis=1, dtype=np.int64)

else:  # pragma: no cover - exercised only on numpy < 2.0
    _POPCOUNT8 = np.array(
        [bin(value).count("1") for value in range(256)], dtype=np.uint8
    )

    def _row_popcounts(blocks: np.ndarray) -> np.ndarray:
        """Per-row popcount via a byte lookup table (pre-2.0 numpy)."""
        as_bytes = np.ascontiguousarray(blocks).view(np.uint8)
        return _POPCOUNT8[as_bytes].sum(axis=1, dtype=np.int64)


class _ColumnarKernel:
    """Shared row bookkeeping and the batched match decision."""

    def __init__(self) -> None:
        self._counts = np.zeros(64, dtype=np.int64)
        self._rows = 0

    @property
    def size(self) -> int:
        """Number of stored values appended so far."""
        return self._rows

    def _note_count(self, gram_count: int) -> None:
        """Record a new row's distinct-gram count (call last in append)."""
        if self._rows == self._counts.size:
            grown = np.zeros(self._counts.size * 2, dtype=np.int64)
            grown[: self._rows] = self._counts[: self._rows]
            self._counts = grown
        self._counts[self._rows] = gram_count
        self._rows += 1

    def gather_candidates(
        self,
        buckets: List[object],
        gram_counts: object,
        min_grams: Optional[int] = None,
        max_grams: Optional[int] = None,
    ) -> Tuple[np.ndarray, int, int]:
        """Batched candidate generation (see :mod:`repro.kernels.candidates`)."""
        return _gather_candidates(buckets, gram_counts, min_grams, max_grams)

    def verify(
        self,
        candidates: np.ndarray,
        probe_key: np.ndarray,
        gram_count: int,
        required: int,
        similarity_threshold: float,
        verify_jaccard: bool,
    ) -> Tuple[List[int], List[float], int]:
        """Run the match decision over the whole candidate batch.

        Returns ``(ordinals, similarities, verified)`` where ``verified``
        counts the candidates whose shared-gram count reached ``required``
        (the Table 1 operation-4 increment), and the parallel lists hold
        the matching ordinals — in candidate (first-occurrence) order, so
        emission order equals the scalar paths' — with their Jaccard
        similarities as built-in floats.
        """
        shared = self._shared_counts(candidates, probe_key)
        passing = shared >= required
        verified = int(np.count_nonzero(passing))
        if not verified:
            return [], [], 0
        kept = candidates[passing]
        shared = shared[passing]
        stored_counts = self._counts[kept]
        # union ≥ 1 (candidates come from buckets, so they hold ≥ 1 gram),
        # which keeps jaccard_from_shared on its vectorised division path.
        similarities = jaccard_from_shared(shared, gram_count, stored_counts)
        if verify_jaccard:
            keep = similarities >= similarity_threshold
            kept = kept[keep]
            similarities = similarities[keep]
        return kept.tolist(), similarities.tolist(), verified

    def _shared_counts(
        self, candidates: np.ndarray, probe_key: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError


class NumpyBitsetKernel(_ColumnarKernel):
    """Gram bitsets as rows of a growing 2-D ``uint64`` matrix."""

    mode = "numpy-bitset"

    def __init__(self) -> None:
        super().__init__()
        self._words = 1
        self._matrix = np.zeros((64, 1), dtype=np.uint64)

    def append(self, gram_ids) -> None:
        """Store the next ordinal's gram bitset (rows append densely)."""
        bits = 0
        for gram_id in gram_ids:
            bits |= 1 << gram_id
        words = ((bits.bit_length() + 63) >> 6) or 1
        if words > self._words:
            widened = np.zeros((self._matrix.shape[0], words), dtype=np.uint64)
            widened[:, : self._words] = self._matrix
            self._matrix = widened
            self._words = words
        if self._rows == self._matrix.shape[0]:
            grown = np.zeros(
                (self._matrix.shape[0] * 2, self._words), dtype=np.uint64
            )
            grown[: self._rows] = self._matrix[: self._rows]
            self._matrix = grown
        self._matrix[self._rows] = np.frombuffer(
            bits.to_bytes(self._words * 8, "little"), dtype=np.uint64
        )
        self._note_count(len(gram_ids))

    def probe_key(self, gram_ids) -> np.ndarray:
        """The probe value's bitset as ``uint64`` words (plan-cacheable)."""
        bits = 0
        for gram_id in gram_ids:
            bits |= 1 << gram_id
        words = ((bits.bit_length() + 63) >> 6) or 1
        return np.frombuffer(bits.to_bytes(words * 8, "little"), dtype=np.uint64)

    def _shared_counts(
        self, candidates: np.ndarray, probe_key: np.ndarray
    ) -> np.ndarray:
        # Widths may differ (vocabulary grows between plan build and use);
        # beyond the common width at least one operand is all-zero, so
        # truncating to it is exact.
        width = min(self._words, probe_key.size)
        rows = self._matrix[candidates, :width]
        return _row_popcounts(rows & probe_key[:width])


class NumpyArrayKernel(_ColumnarKernel):
    """Sorted gram-id segments in one CSR-style flat buffer."""

    mode = "numpy-array"

    def __init__(self) -> None:
        super().__init__()
        self._flat = np.zeros(1024, dtype=np.int64)
        self._used = 0
        self._starts = np.zeros(64, dtype=np.int64)

    def append(self, gram_ids) -> None:
        """Store the next ordinal's sorted gram ids (rows append densely)."""
        ids = sorted(gram_ids)
        length = len(ids)
        while self._used + length > self._flat.size:
            grown = np.zeros(self._flat.size * 2, dtype=np.int64)
            grown[: self._used] = self._flat[: self._used]
            self._flat = grown
        if self._rows == self._starts.size:
            grown = np.zeros(self._starts.size * 2, dtype=np.int64)
            grown[: self._rows] = self._starts[: self._rows]
            self._starts = grown
        self._starts[self._rows] = self._used
        self._flat[self._used : self._used + length] = ids
        self._used += length
        self._note_count(length)

    def probe_key(self, gram_ids) -> np.ndarray:
        """The probe value's sorted gram ids (plan-cacheable)."""
        return np.array(sorted(gram_ids), dtype=np.int64)

    def _shared_counts(
        self, candidates: np.ndarray, probe_key: np.ndarray
    ) -> np.ndarray:
        lengths = self._counts[candidates]
        starts = self._starts[candidates]
        total = int(lengths.sum())
        if total == 0:  # pragma: no cover - candidates always hold ≥ 1 gram
            return np.zeros(candidates.size, dtype=np.int64)
        # Ragged gather: for candidate j, positions start[j] .. start[j] +
        # len[j] of the flat buffer.  Segment starts are strictly
        # increasing because every candidate's length is ≥ 1 (it came from
        # a bucket), which reduceat requires.
        segment_starts = np.cumsum(lengths) - lengths
        gather = np.repeat(starts - segment_starts, lengths) + np.arange(
            total, dtype=np.int64
        )
        hits = np.isin(self._flat[gather], probe_key)
        return np.add.reduceat(hits.astype(np.int64), segment_starts)
