"""Batched candidate generation over rare-gram buckets.

The probe's candidate set ``T(t)`` is the first-occurrence-ordered union
of the ``g − k + 1`` rarest grams' ordinal buckets, optionally restricted
by the Jaccard length filter.  The pure-Python loop in
:meth:`repro.joins.base.SideState.probe_qgram` walks every bucket entry
in the interpreter; this module does the same set construction with three
numpy primitives over zero-copy views of the ``array('i')`` buckets.

Equivalence contract (pinned by the kernel-equivalence tests):

* candidate order — ``np.unique(..., return_index=True)`` plus a stable
  argsort of the first-occurrence indices reproduces the dict
  insertion order of the Python loop exactly, so match emission order is
  bit-identical;
* ``scan_work`` — one unit per bucket entry scanned, i.e. the concatenated
  length, exactly as the loop counts;
* ``rejected`` — one unit per scanned entry whose ordinal fails the
  length bounds.  The Python loop re-tests a failing ordinal at every
  occurrence (it is never admitted, so it never short-circuits) while an
  admitted ordinal is bounds-tested only once — counting *entries of
  failing ordinals* therefore matches it exactly.

The views taken here (``np.frombuffer`` of the buckets and of the dense
gram-count array) live only for the duration of the call: ``array``
objects refuse to grow while a buffer view is exported, and the index
appends happen between probes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

#: dtype matching the C ``int`` of the ``array('i')`` buckets.
_BUCKET_DTYPE = np.intc

_EMPTY = np.empty(0, dtype=np.int64)


def gather_candidates(
    buckets: List[object],
    gram_counts: object,
    min_grams: Optional[int] = None,
    max_grams: Optional[int] = None,
) -> Tuple[np.ndarray, int, int]:
    """Build the candidate set from the rare grams' buckets.

    Parameters
    ----------
    buckets:
        The non-empty ``array('i')`` ordinal buckets of the probe's
        inserting prefix, in reverse-frequency order.
    gram_counts:
        The side's dense per-ordinal distinct-gram-count ``array('i')``.
    min_grams, max_grams:
        Inclusive length-filter bounds; ``None`` disables the filter.

    Returns ``(candidates, scan_work, rejected)``: the int64 candidate
    ordinals in first-occurrence order, the bucket entries scanned, and
    the entries rejected by the length filter (0 when disabled).
    """
    if not buckets:
        return _EMPTY, 0, 0
    rejected = 0
    if len(buckets) == 1:
        # One bucket holds each ordinal at most once (the index appends one
        # entry per (gram, ordinal)), already in first-occurrence order —
        # no dedup pass needed.
        cat = np.frombuffer(buckets[0], dtype=_BUCKET_DTYPE)
        scan_work = int(cat.size)
        if min_grams is not None:
            counts = np.frombuffer(gram_counts, dtype=_BUCKET_DTYPE)
            scanned_counts = counts[cat]
            in_bounds = (scanned_counts >= min_grams) & (
                scanned_counts <= max_grams
            )
            rejected = scan_work - int(np.count_nonzero(in_bounds))
            cat = cat[in_bounds]
        return cat.astype(np.int64), scan_work, rejected
    cat = np.concatenate(
        [np.frombuffer(bucket, dtype=_BUCKET_DTYPE) for bucket in buckets]
    )
    scan_work = int(cat.size)
    values, first_index, occurrences = np.unique(
        cat, return_index=True, return_counts=True
    )
    if min_grams is not None:
        counts = np.frombuffer(gram_counts, dtype=_BUCKET_DTYPE)
        value_counts = counts[values]
        in_bounds = (value_counts >= min_grams) & (value_counts <= max_grams)
        # Every occurrence of an out-of-bounds ordinal counts as rejected,
        # exactly as the Python loop re-tests each scanned entry.
        rejected = int(occurrences.sum() - occurrences[in_bounds].sum())
        values = values[in_bounds]
        first_index = first_index[in_bounds]
    candidates = values[np.argsort(first_index, kind="stable")].astype(np.int64)
    return candidates, scan_work, rejected
