"""Optional columnar (numpy-backed) verification kernels.

The probe hot path of :class:`repro.joins.base.SideState` keeps its index
in a columnar layout — interned gram ids, ``gram id → array('i')``
ordinal buckets, a dense per-ordinal gram-count array — that vectorises
directly.  This package holds the numpy kernels that exploit it:

* :class:`~repro.kernels.columnar.NumpyBitsetKernel` — per-ordinal gram
  bitsets packed into a 2-D ``uint64`` matrix; shared-gram counts come
  from one batched AND + popcount over all candidates at once (the
  vectorised twin of ``gram_verification="bitset"``);
* :class:`~repro.kernels.columnar.NumpyArrayKernel` — per-ordinal sorted
  gram-id arrays in one CSR-style flat buffer; shared-gram counts come
  from a batched membership test + segmented reduction (the vectorised
  twin of ``gram_verification="array"``);
* :func:`~repro.kernels.candidates.gather_candidates` — batched candidate
  generation over the rare-gram buckets (concatenate → first-occurrence
  dedup → length-filter mask), replacing the per-entry Python loop.

**Import gating contract**: this module imports without numpy installed —
the base install stays dependency-free (numpy ships via the ``[fast]``
extra).  :func:`resolve_gram_verification` maps the ``numpy-*`` modes to
their pure-Python twins when numpy is absent, so a
:class:`~repro.runtime.config.RunConfig` requesting a numpy kernel
degrades gracefully instead of failing; matches and counters are
bit-identical in every mode, so the fallback changes speed only.  The
numpy-importing submodules (:mod:`~repro.kernels.columnar`,
:mod:`~repro.kernels.candidates`) are only imported once a kernel is
actually created.
"""

from __future__ import annotations

from typing import Optional

try:
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised via resolve(available=False)
    _numpy = None

#: The ``gram_verification`` modes served by this package.
NUMPY_GRAM_VERIFICATION_MODES = ("numpy-bitset", "numpy-array")

#: Pure-Python twin of each numpy mode (the no-numpy fallback).
_FALLBACK_MODES = {"numpy-bitset": "bitset", "numpy-array": "array"}


def numpy_available() -> bool:
    """Whether numpy imported successfully (the ``[fast]`` extra)."""
    return _numpy is not None


def resolve_gram_verification(mode: str, available: Optional[bool] = None) -> str:
    """Map a requested ``gram_verification`` mode to the effective one.

    Pure-Python modes pass through untouched; the ``numpy-*`` modes fall
    back to their pure-Python twins (``bitset`` / ``array``) when numpy is
    not importable.  ``available`` overrides the detection (tests).
    """
    if available is None:
        available = _numpy is not None
    if not available:
        return _FALLBACK_MODES.get(mode, mode)
    return mode


def create_kernel(mode: str):
    """Instantiate the columnar kernel for ``mode``; ``None`` for others.

    Callers resolve the mode first (:func:`resolve_gram_verification`), so
    by the time a ``numpy-*`` mode reaches this factory numpy is known to
    be importable.
    """
    if mode not in NUMPY_GRAM_VERIFICATION_MODES:
        return None
    from repro.kernels.columnar import NumpyArrayKernel, NumpyBitsetKernel

    if mode == "numpy-bitset":
        return NumpyBitsetKernel()
    return NumpyArrayKernel()
