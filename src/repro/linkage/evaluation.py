"""Evaluation of linkage results against ground truth.

The generator of :mod:`repro.datagen` knows the true pairs (every accident
paired with the municipality it references); this module scores any set of
returned pairs against that truth with the standard record-linkage metrics:
precision (pairs returned that are true), recall / completeness (true pairs
that were returned), F1, and the raw counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set, Tuple

Pair = Tuple[int, int]


@dataclass(frozen=True)
class LinkageEvaluation:
    """Precision / recall / F-measure of one linkage result."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def returned_pairs(self) -> int:
        """Number of pairs the linkage returned."""
        return self.true_positives + self.false_positives

    @property
    def true_pairs(self) -> int:
        """Number of pairs in the ground truth."""
        return self.true_positives + self.false_negatives

    @property
    def precision(self) -> float:
        """Fraction of returned pairs that are true (1.0 when nothing returned)."""
        if self.returned_pairs == 0:
            return 1.0
        return self.true_positives / self.returned_pairs

    @property
    def recall(self) -> float:
        """Fraction of true pairs that were returned — the paper's *completeness*."""
        if self.true_pairs == 0:
            return 1.0
        return self.true_positives / self.true_pairs

    #: The paper's term for recall.
    completeness = recall

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        denominator = self.precision + self.recall
        if denominator == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / denominator

    def as_dict(self) -> dict:
        """Flat dictionary for reports."""
        return {
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "false_negatives": self.false_negatives,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }


def evaluate_pairs(
    returned: Iterable[Pair], truth: Iterable[Pair]
) -> LinkageEvaluation:
    """Score ``returned`` pairs against the ``truth`` pairs.

    Both collections are treated as sets of ``(left index, right index)``
    pairs; duplicates are ignored.
    """
    returned_set: Set[Pair] = set(returned)
    truth_set: Set[Pair] = set(truth)
    true_positives = len(returned_set & truth_set)
    return LinkageEvaluation(
        true_positives=true_positives,
        false_positives=len(returned_set) - true_positives,
        false_negatives=len(truth_set) - true_positives,
    )
