"""Record-linkage toolkit layer.

A thin layer above the join operators that speaks the vocabulary of the
record-linkage literature the paper builds on: match decision rules
(threshold classification with an optional "possible match" band), blocking
strategies for the offline baseline, evaluation of a linkage result against
ground truth, and a high-level :func:`~repro.linkage.api.link_tables` entry
point that picks between the exact, approximate, blocking and adaptive
strategies.
"""

from repro.linkage.blocking import (
    BlockingStrategy,
    FirstCharactersBlocking,
    QGramBlocking,
    SortedNeighbourhoodBlocking,
    candidate_pairs,
)
from repro.linkage.evaluation import LinkageEvaluation, evaluate_pairs
from repro.linkage.rules import (
    MatchDecision,
    MatchRule,
    ThresholdRule,
    TwoThresholdRule,
    classify_pair,
)
from repro.linkage.api import LinkageResult, link_tables

__all__ = [
    "MatchDecision",
    "MatchRule",
    "ThresholdRule",
    "TwoThresholdRule",
    "classify_pair",
    "BlockingStrategy",
    "FirstCharactersBlocking",
    "QGramBlocking",
    "SortedNeighbourhoodBlocking",
    "candidate_pairs",
    "LinkageEvaluation",
    "evaluate_pairs",
    "LinkageResult",
    "link_tables",
]
