"""High-level record-linkage API.

:func:`link_tables` is the one-call entry point a downstream user starts
with: give it two tables, the join attribute and a strategy name, and it
returns the matched pairs together with run statistics.  Strategies:

``"exact"``
    All-exact symmetric hash join (fast, misses variants).
``"approximate"``
    All-approximate symmetric set hash join (complete, expensive).
``"adaptive"``
    The paper's contribution: the MAR-controlled hybrid join.
``"blocking"``
    Conventional offline blocking + within-block similarity comparison.

Migration note
--------------
``link_tables`` is now a thin compatibility wrapper over the job layer:
it builds a :class:`repro.jobs.LinkageJob` and blocks on
``.build().run()``.  Same parameters, same :class:`LinkageResult` (whose
``records`` are now built lazily on first access), same statistics —
every existing call site keeps working.  Parameters a strategy never
consumed are still ignored (an out-of-range ``similarity_threshold``
with ``strategy="exact"``, a ``budget`` next to a full ``config``); a
nonsense value for a parameter the run *does* consume now raises a
clear ``ValueError`` from the builder instead of silently producing an
empty or meaningless result.  New code that wants more than a blocking
call should use the builder directly, which additionally offers::

    from repro.jobs import LinkageJob

    handle = (LinkageJob.between(left, right).on("location")
              .policy("deadline", seconds=2.0)
              .sharded(8, backend="async")
              .with_progress()
              .build())
    handle.stream_matches()        # lazy match iterator (async variant too)
    handle.progress()              # live steps/matches/shards snapshot
    handle.cancel()                # stop mid-run, keep the partial result

Example
-------
>>> from repro.datagen import generate_test_case, STANDARD_TEST_CASES
>>> dataset = generate_test_case(
...     STANDARD_TEST_CASES["few_high_child"], parent_size=300, child_size=200)
>>> result = link_tables(dataset.parent, dataset.child, "location",
...                      strategy="adaptive")
>>> result.pair_count > 0
True
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.thresholds import Thresholds
from repro.engine.table import Table
from repro.jobs import STRATEGIES, LinkageJob, LinkageResult
from repro.joins.base import JoinAttribute, JoinSide
from repro.runtime.config import RunConfig
from repro.runtime.failures import FailurePolicy
from repro.runtime.faults import FaultPlan

__all__ = ["STRATEGIES", "LinkageResult", "link_tables"]


def link_tables(
    left: Table,
    right: Table,
    attribute: Union[str, JoinAttribute],
    strategy: str = "adaptive",
    similarity_threshold: float = 0.85,
    thresholds: Optional[Thresholds] = None,
    parent_side: JoinSide = JoinSide.LEFT,
    policy: str = "mar",
    budget: Optional[float] = None,
    deadline: Optional[float] = None,
    config: Optional[RunConfig] = None,
    shards: int = 1,
    backend: str = "serial",
    partitioner: str = "hash",
    handoff: str = "auto",
    on_failure: Union[str, FailurePolicy, None] = None,
    retries: Optional[int] = None,
    shard_timeout: Optional[float] = None,
    faults: Optional[FaultPlan] = None,
) -> LinkageResult:
    """Link two tables on ``attribute`` with the chosen strategy.

    A compatibility wrapper over :class:`repro.jobs.LinkageJob` (see the
    module docstring's migration note); every parameter maps onto one
    builder call and all validation lives in the builder / RunConfig.
    ``similarity_threshold`` is ``θ_sim`` (prefer ``thresholds`` for the
    adaptive strategy); ``policy`` / ``budget`` / ``deadline`` /
    ``config`` configure the adaptive run; ``shards`` / ``backend`` /
    ``partitioner`` request sharded execution of the adaptive strategy
    (``backend``: serial / thread / process / async; ``partitioner``:
    hash preserves exact semantics, gram preserves full approximate
    recall via replication, gram-prefix the same at a lower replication
    factor — see ARCHITECTURE.md "Sharded execution").  ``handoff``
    selects the shard-input representation (``auto`` / ``pickle`` /
    ``shared-memory``; see ARCHITECTURE.md "Shard handoff") — a
    performance knob only, results are bit-identical either way.

    ``on_failure`` / ``retries`` / ``shard_timeout`` configure the
    failure policy of the sharded execution layer (``fail-fast`` —
    the default — ``retry``, ``degrade``; see ARCHITECTURE.md "Failure
    semantics").  A degraded run reports the dropped shards, an
    ``estimated_recall`` and per-side ``coverage`` in its statistics.
    ``faults`` injects a deterministic
    :class:`~repro.runtime.faults.FaultPlan` (testing harness).
    """
    job = (
        LinkageJob.between(left, right)
        .on(attribute)
        .strategy(strategy)
        .parent(parent_side)
    )
    # Parameters a strategy does not consume are left unset, exactly as
    # the old implementation ignored them: the exact strategy never reads
    # the threshold, and a full `config` is documented to override
    # thresholds/policy/budget/deadline outright.
    if thresholds is not None:
        job.thresholds(thresholds)
    elif strategy != "exact":
        job.threshold(similarity_threshold)
    if strategy == "adaptive":
        if config is not None:
            job.config(config)
        else:
            job.policy(policy, budget=budget, seconds=deadline)
    if shards != 1:
        job.sharded(
            shards, backend=backend, partitioner=partitioner, handoff=handoff
        )
    if on_failure is not None or retries is not None or shard_timeout is not None:
        if on_failure is None:
            # A bare `retries=` implies the retry policy; a bare
            # `shard_timeout=` keeps the fail-fast default (timeouts
            # apply to every policy).
            on_failure = "retry" if retries is not None else "fail-fast"
        job.on_failure(on_failure, retries=retries, shard_timeout=shard_timeout)
    if faults is not None:
        job.inject_faults(faults)
    return job.build().run()
