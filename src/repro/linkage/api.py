"""High-level record-linkage API.

:func:`link_tables` is the one-call entry point a downstream user starts
with: give it two tables, the join attribute and a strategy name, and it
returns the matched pairs together with run statistics.  Strategies:

``"exact"``
    All-exact symmetric hash join (fast, misses variants).
``"approximate"``
    All-approximate symmetric set hash join (complete, expensive).
``"adaptive"``
    The paper's contribution: the MAR-controlled hybrid join.
``"blocking"``
    Conventional offline blocking + within-block similarity comparison.

Example
-------
>>> from repro.datagen import generate_test_case, STANDARD_TEST_CASES
>>> dataset = generate_test_case(
...     STANDARD_TEST_CASES["few_high_child"], parent_size=300, child_size=200)
>>> result = link_tables(dataset.parent, dataset.child, "location",
...                      strategy="adaptive")
>>> result.pair_count > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.thresholds import Thresholds
from repro.engine.table import Table
from repro.joins.base import JoinAttribute, JoinSide
from repro.joins.baselines import BlockingLinkageJoin
from repro.joins.shjoin import SHJoin
from repro.joins.sshjoin import SSHJoin
from repro.runtime.config import RunConfig
from repro.runtime.parallel import run_sharded
from repro.runtime.session import JoinSession

#: The strategies accepted by :func:`link_tables`.
STRATEGIES = ("exact", "approximate", "adaptive", "blocking")


@dataclass
class LinkageResult:
    """Outcome of one :func:`link_tables` call."""

    strategy: str
    #: Matched ``(left index, right index)`` pairs.
    pairs: List[Tuple[int, int]]
    #: Joined output records (left values followed by right values).
    records: List
    #: Strategy-specific statistics (steps per state for the adaptive run,
    #: comparison counts for the baselines, …).
    statistics: Dict[str, object] = field(default_factory=dict)

    @property
    def pair_count(self) -> int:
        """Number of matched pairs."""
        return len(self.pairs)


def link_tables(
    left: Table,
    right: Table,
    attribute: Union[str, JoinAttribute],
    strategy: str = "adaptive",
    similarity_threshold: float = 0.85,
    thresholds: Optional[Thresholds] = None,
    parent_side: JoinSide = JoinSide.LEFT,
    policy: str = "mar",
    budget: Optional[float] = None,
    deadline: Optional[float] = None,
    config: Optional[RunConfig] = None,
    shards: int = 1,
    backend: str = "serial",
    partitioner: str = "hash",
) -> LinkageResult:
    """Link two tables on ``attribute`` with the chosen strategy.

    Parameters
    ----------
    left, right:
        The two tables.  For the adaptive strategy, the ``parent_side``
        input is treated as the parent/reference table of the parent-child
        expectation.
    attribute:
        Join attribute name (same on both sides) or a
        :class:`~repro.joins.base.JoinAttribute` naming one per side.
    strategy:
        One of :data:`STRATEGIES`.
    similarity_threshold:
        ``θ_sim`` for the approximate / blocking strategies (ignored by the
        exact strategy); for the adaptive strategy prefer passing a full
        ``thresholds`` object.
    thresholds:
        Full adaptive configuration; defaults to the paper's operating
        point with ``theta_sim`` set to ``similarity_threshold``.
    policy:
        Switch policy for the adaptive strategy (default ``"mar"``, the
        paper's control loop; see :func:`repro.runtime.available_policies`).
    budget:
        Optional relative cost budget in ``(0, 1]`` for the adaptive
        strategy: the fraction of the all-approximate/all-exact cost gap
        the run may spend before being pinned to the exact configuration.
    deadline:
        Optional wall-clock budget in seconds, consumed by the
        ``deadline`` switch policy.
    config:
        Full :class:`~repro.runtime.config.RunConfig` for the adaptive
        strategy; overrides ``thresholds`` / ``parent_side`` / ``policy`` /
        ``budget`` / ``deadline`` when provided.
    shards, backend, partitioner:
        Sharded execution of the adaptive strategy: with ``shards > 1``
        the inputs are partitioned (``partitioner``: ``hash`` /
        ``round-robin`` / ``range`` / ``gram``), one independent session
        runs per shard on ``backend`` (``serial`` / ``thread`` /
        ``process``) and the merged result is returned.  The ``hash``
        default preserves equi-match semantics exactly but can miss
        approximate matches whose variant spellings land in different
        shards; ``gram`` replicates each record to every shard owning
        one of its q-grams, preserving the *full* approximate match set
        at the cost of replicated work (duplicate discoveries are
        deduplicated at merge time; see ARCHITECTURE.md "Sharded
        execution" for the trade-off table).
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; available: {STRATEGIES}")
    if shards < 1:
        raise ValueError(f"shards must be at least 1, got {shards}")
    if shards > 1 and strategy != "adaptive":
        raise ValueError(
            f"sharded execution is only available for the adaptive strategy, "
            f"not {strategy!r}"
        )
    if isinstance(attribute, str):
        attribute = JoinAttribute(attribute, attribute)

    if strategy == "adaptive":
        run_config = config or RunConfig.from_thresholds(
            thresholds or Thresholds(theta_sim=similarity_threshold),
            parent_side=parent_side,
            policy=policy,
            budget_fraction=budget,
            deadline_seconds=deadline,
        )
        if shards > 1:
            sharded = run_sharded(
                left,
                right,
                attribute,
                run_config,
                shards=shards,
                partitioner=partitioner,
                backend=backend,
            )
            return LinkageResult(
                strategy=strategy,
                pairs=sharded.matched_pairs(),
                records=sharded.output_records(),
                statistics={
                    "trace": sharded.trace.summary(),
                    "result_size": sharded.result_size,
                    "raw_result_size": sharded.raw_result_size,
                    "duplicate_matches": sharded.duplicate_match_count,
                    "replication_factors": sharded.replication_factors(),
                    "policy": run_config.policy,
                    "shards": sharded.shard_count,
                    "backend": sharded.backend,
                    "partitioner": sharded.partitioner,
                    "final_states": {
                        shard: state.label
                        for shard, state in sharded.final_states.items()
                    },
                    "per_shard": sharded.per_shard_summary(),
                },
            )
        session = JoinSession(left, right, attribute, run_config)
        outcome = session.run()
        return LinkageResult(
            strategy=strategy,
            pairs=outcome.matched_pairs(),
            records=outcome.output_records(),
            statistics={
                "trace": outcome.trace.summary(),
                "final_state": outcome.final_state.label,
                "result_size": outcome.result_size,
                "policy": session.policy.name,
                "budget_exhausted": session.budget_exhausted,
            },
        )

    if strategy == "exact":
        operator = SHJoin(left, right, attribute)
        records = operator.run()
        pairs = sorted(operator.engine._emitted_pairs)
        statistics: Dict[str, object] = {
            "result_size": len(records),
            "operation_counters": operator.operation_counters().as_dict(),
        }
        return LinkageResult(strategy, pairs, records, statistics)

    if strategy == "approximate":
        operator = SSHJoin(
            left, right, attribute, similarity_threshold=similarity_threshold
        )
        records = operator.run()
        pairs = sorted(operator.engine._emitted_pairs)
        statistics = {
            "result_size": len(records),
            "operation_counters": operator.operation_counters().as_dict(),
        }
        return LinkageResult(strategy, pairs, records, statistics)

    # strategy == "blocking"
    blocking = BlockingLinkageJoin(
        left, right, attribute, threshold=similarity_threshold
    )
    records = blocking.run()
    pairs = _pairs_from_records(records, left, right, attribute)
    statistics = {"result_size": len(records), "comparisons": blocking.comparisons}
    return LinkageResult(strategy, pairs, records, statistics)


def _pairs_from_records(
    records, left: Table, right: Table, attribute: JoinAttribute
) -> List[Tuple[int, int]]:
    """Reconstruct (left index, right index) pairs from joined records.

    Blocking joins emit records without ordinal bookkeeping, so pairs are
    recovered by value lookup; when several rows share a value the first
    matching row is used, which is adequate for evaluation because rows with
    identical key values have identical linkage outcomes.
    """
    left_positions: Dict[object, List[int]] = {}
    for index, record in enumerate(left):
        left_positions.setdefault(record[attribute.left], []).append(index)
    right_positions: Dict[object, List[int]] = {}
    for index, record in enumerate(right):
        right_positions.setdefault(record[attribute.right], []).append(index)
    left_width = len(left.schema)
    pairs: List[Tuple[int, int]] = []
    for record in records:
        values = record.values
        left_value = values[left.schema.position(attribute.left)]
        right_value = values[left_width + right.schema.position(attribute.right)]
        pairs.append(
            (
                left_positions.get(left_value, [0])[0],
                right_positions.get(right_value, [0])[0],
            )
        )
    return pairs
