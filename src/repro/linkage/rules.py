"""Match decision rules.

Record-linkage systems classify a candidate record pair by applying a
decision rule to its similarity value(s): the classical rule the paper
quotes is "if ``sim(r1, r2) > θ`` then match".  Two rule shapes are
provided:

* :class:`ThresholdRule` — a single threshold separating matches from
  non-matches (what the paper's approximate operator embeds);
* :class:`TwoThresholdRule` — the Fellegi-Sunter-style upper/lower
  threshold pair with an intermediate "possible match" band for clerical
  review.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.similarity.registry import SimilarityFunction, get_similarity


class MatchDecision(enum.Enum):
    """Classification of a candidate pair."""

    MATCH = "match"
    POSSIBLE = "possible"
    NON_MATCH = "non_match"


class MatchRule:
    """Base class of decision rules mapping a similarity value to a decision."""

    def decide(self, similarity: float) -> MatchDecision:
        """Classify a pair given its similarity value."""
        raise NotImplementedError

    def is_match(self, similarity: float) -> bool:
        """Convenience: True iff the decision is ``MATCH``."""
        return self.decide(similarity) is MatchDecision.MATCH


@dataclass(frozen=True)
class ThresholdRule(MatchRule):
    """Single-threshold rule: match iff ``similarity >= threshold``."""

    threshold: float = 0.85

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {self.threshold}")

    def decide(self, similarity: float) -> MatchDecision:
        if similarity >= self.threshold:
            return MatchDecision.MATCH
        return MatchDecision.NON_MATCH


@dataclass(frozen=True)
class TwoThresholdRule(MatchRule):
    """Two-threshold rule with a "possible match" band.

    ``similarity >= upper`` → MATCH, ``similarity < lower`` → NON_MATCH,
    otherwise POSSIBLE.
    """

    lower: float = 0.70
    upper: float = 0.90

    def __post_init__(self) -> None:
        if not 0.0 <= self.lower <= self.upper <= 1.0:
            raise ValueError(
                f"thresholds must satisfy 0 <= lower <= upper <= 1, "
                f"got lower={self.lower}, upper={self.upper}"
            )

    def decide(self, similarity: float) -> MatchDecision:
        if similarity >= self.upper:
            return MatchDecision.MATCH
        if similarity < self.lower:
            return MatchDecision.NON_MATCH
        return MatchDecision.POSSIBLE


def classify_pair(
    left_value: str,
    right_value: str,
    rule: MatchRule,
    similarity: Union[str, SimilarityFunction] = "jaccard_qgram",
) -> MatchDecision:
    """Classify a single value pair with ``rule`` under ``similarity``."""
    function = get_similarity(similarity)
    return rule.decide(function(str(left_value), str(right_value)))
