"""Blocking strategies for offline record linkage.

Blocking reduces the quadratic pair space of record linkage by only
comparing records that share a coarse *blocking key*.  The paper mentions
blocking as the standard complexity-reduction technique that requires
up-front access to the tables — the very assumption the adaptive approach
drops — so these strategies appear here to power the offline baseline and
the linkage-layer API, not as part of the adaptive operator.

Three classical strategies are provided:

* :class:`FirstCharactersBlocking` — key = first *k* characters;
* :class:`QGramBlocking` — a record lands in one block per q-gram of its
  key value (overlapping blocks, higher recall);
* :class:`SortedNeighbourhoodBlocking` — records from both inputs are
  sorted together by the key value and paired within a sliding window.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

from repro.engine.table import Table
from repro.similarity.qgrams import qgram_set


class BlockingStrategy:
    """Base class: maps two tables onto a set of candidate index pairs."""

    def pairs(
        self, left: Table, right: Table, left_attr: str, right_attr: str
    ) -> Set[Tuple[int, int]]:
        """Return candidate ``(left index, right index)`` pairs."""
        raise NotImplementedError


class FirstCharactersBlocking(BlockingStrategy):
    """Block on the first ``prefix_length`` characters of the key value."""

    def __init__(self, prefix_length: int = 4) -> None:
        if prefix_length <= 0:
            raise ValueError(f"prefix_length must be positive, got {prefix_length}")
        self.prefix_length = prefix_length

    def _key(self, value: str) -> str:
        return str(value)[: self.prefix_length].upper()

    def pairs(
        self, left: Table, right: Table, left_attr: str, right_attr: str
    ) -> Set[Tuple[int, int]]:
        blocks: Dict[str, List[int]] = defaultdict(list)
        for index, record in enumerate(left):
            blocks[self._key(record[left_attr])].append(index)
        result: Set[Tuple[int, int]] = set()
        for right_index, record in enumerate(right):
            for left_index in blocks.get(self._key(record[right_attr]), ()):
                result.add((left_index, right_index))
        return result


class QGramBlocking(BlockingStrategy):
    """Block on shared q-grams (overlapping blocks).

    A pair is a candidate when the two key values share at least
    ``min_shared`` q-grams.  Higher recall than prefix blocking at higher
    candidate-set cost.
    """

    def __init__(self, q: int = 3, min_shared: int = 2) -> None:
        if q <= 0:
            raise ValueError(f"q must be positive, got {q}")
        if min_shared <= 0:
            raise ValueError(f"min_shared must be positive, got {min_shared}")
        self.q = q
        self.min_shared = min_shared

    def pairs(
        self, left: Table, right: Table, left_attr: str, right_attr: str
    ) -> Set[Tuple[int, int]]:
        gram_index: Dict[str, List[int]] = defaultdict(list)
        for index, record in enumerate(left):
            for gram in qgram_set(str(record[left_attr]), q=self.q):
                gram_index[gram].append(index)
        result: Set[Tuple[int, int]] = set()
        for right_index, record in enumerate(right):
            shared: Dict[int, int] = defaultdict(int)
            for gram in qgram_set(str(record[right_attr]), q=self.q):
                for left_index in gram_index.get(gram, ()):
                    shared[left_index] += 1
            for left_index, count in shared.items():
                if count >= self.min_shared:
                    result.add((left_index, right_index))
        return result


class SortedNeighbourhoodBlocking(BlockingStrategy):
    """Sorted-neighbourhood method with a sliding window.

    Records of both tables are merged, sorted by key value, and every pair
    of left/right records within ``window`` positions of each other becomes
    a candidate.
    """

    def __init__(self, window: int = 5) -> None:
        if window <= 1:
            raise ValueError(f"window must be larger than 1, got {window}")
        self.window = window

    def pairs(
        self, left: Table, right: Table, left_attr: str, right_attr: str
    ) -> Set[Tuple[int, int]]:
        entries: List[Tuple[str, str, int]] = []
        for index, record in enumerate(left):
            entries.append((str(record[left_attr]), "left", index))
        for index, record in enumerate(right):
            entries.append((str(record[right_attr]), "right", index))
        entries.sort(key=lambda entry: entry[0])
        result: Set[Tuple[int, int]] = set()
        for position, (_, side, index) in enumerate(entries):
            upper = min(len(entries), position + self.window)
            for other_position in range(position + 1, upper):
                _, other_side, other_index = entries[other_position]
                if side == other_side:
                    continue
                if side == "left":
                    result.add((index, other_index))
                else:
                    result.add((other_index, index))
        return result


def candidate_pairs(
    strategy: BlockingStrategy,
    left: Table,
    right: Table,
    attribute: str,
) -> Set[Tuple[int, int]]:
    """Convenience wrapper for strategies applied to a common attribute name."""
    return strategy.pairs(left, right, attribute, attribute)
