"""Command-line interface.

The sub-commands cover the workflows a downstream user needs without
writing Python:

``generate``
    Materialise one of the standard evaluation test cases (or a custom
    combination of pattern / variant placement / sizes) as two CSV files
    plus a ground-truth pair list.

``link``
    Link two CSV files on a join attribute with a chosen strategy (exact,
    approximate, blocking or adaptive) and write the matched pairs to CSV.
    The adaptive strategy accepts ``--policy`` (any registered switch
    policy: ``mar``, ``fixed``, ``budget-greedy``, ``deadline``, …),
    ``--budget`` (a relative cost cap), ``--deadline`` (a wall-clock cap)
    and sharded execution via ``--shards`` / ``--backend`` /
    ``--partitioner`` (``--backend async`` runs all shards cooperatively
    on one asyncio loop).  Shard failures are governed by
    ``--on-failure`` (``fail-fast`` aborts — the default; ``retry``
    re-runs failed shards with ``--retries`` re-attempts; ``degrade``
    drops irrecoverable shards and reports the loss) and
    ``--shard-timeout`` (a wall-clock bound per shard attempt).  A
    degraded run reports the dropped shards and an estimated recall on
    stderr and exits with code 3; a failed run exits with code 1.  Runs
    execute through the jobs layer
    (:mod:`repro.jobs`): ``--stream`` emits matches on stdout as NDJSON
    *while they are found* instead of waiting for the run, and
    ``--progress`` prints a live stderr ticker (steps / matches / shards
    / elapsed).

``experiment``
    Run the full gain/cost experiment (all three strategies) for a standard
    test case and print the Fig. 6 / Fig. 7 rows; optionally dump the
    machine-readable outcome to JSON.

``calibrate``
    Measure the cost-model weights of Sec. 4.3 on this machine.

``serve``
    Run the linkage HTTP server (:mod:`repro.server`): submit JSON job
    specs over ``POST /jobs``, watch them via ``GET /jobs/{id}``, stream
    NDJSON matches from ``GET /jobs/{id}/matches`` (byte-identical to
    ``repro link --stream``) and cancel with ``DELETE``.  ``--store``
    makes jobs survive restarts: a relaunched server lists prior jobs
    and automatically resumes interrupted ones.  SIGTERM/SIGINT shut it
    down cleanly (running jobs stop at the next batch boundary; their
    completed shards are already on disk).

Run ``python -m repro.cli --help`` (or any sub-command with ``--help``) for
the full option list.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
from typing import Optional, Sequence

from repro.bench.calibration import calibrate_weights
from repro.devtools.lint import DEFAULT_WAIVER_FILE
from repro.devtools.lint import run as run_lint
from repro.bench.export import outcome_to_dict
from repro.bench.harness import run_experiment
from repro.bench.reporting import format_mapping, format_table
from repro.core.thresholds import Thresholds
from repro.datagen.patterns import STANDARD_PATTERNS
from repro.datagen.testcases import (
    STANDARD_TEST_CASES,
    TestCaseSpec,
    generate_test_case,
)
from repro.engine.table import Table
from repro.jobs import JobHandle, LinkageJob, StreamedMatch
from repro.linkage.api import STRATEGIES
from repro.runtime.errors import ShardError
from repro.runtime.failures import available_failure_policies
from repro.runtime.faults import FaultPlan
from repro.runtime.handoff import HANDOFF_MODES
from repro.runtime.parallel import available_backends
from repro.runtime.handoff import live_block_count
from repro.runtime.policy import available_policies
from repro.runtime.sharding import available_partitioners
from repro.server import JobScheduler, JsonlJobStore, LinkageServer

#: Seconds between live ``--progress`` ticker lines on stderr.
_PROGRESS_TICK_SECONDS = 0.5


def _add_threshold_arguments(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by the commands that run the adaptive join."""
    parser.add_argument("--theta-sim", type=float, default=0.85,
                        help="similarity threshold of the approximate operator")
    parser.add_argument("--delta-adapt", type=int, default=100,
                        help="steps between control-loop activations")
    parser.add_argument("--window-size", type=int, default=100,
                        help="sliding-window size W")
    parser.add_argument("--theta-out", type=float, default=0.05,
                        help="outlier-detection threshold")
    parser.add_argument("--theta-curpert", type=float, default=2.0,
                        help="current-perturbation threshold")
    parser.add_argument("--theta-pastpert", type=float, default=5.0,
                        help="past-perturbation threshold")
    parser.add_argument("--policy", choices=available_policies(), default="mar",
                        help="switch policy driving the adaptive run "
                             "(mar = the paper's control loop)")
    parser.add_argument("--budget", type=float, default=None, metavar="FRACTION",
                        help="relative cost budget in (0, 1]: fraction of the "
                             "all-approximate/all-exact cost gap the adaptive "
                             "run may spend before being pinned to exact")
    parser.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                        help="wall-clock budget for the deadline policy: pin "
                             "to exact once the projected completion time "
                             "exceeds it")


def _add_sharding_arguments(parser: argparse.ArgumentParser) -> None:
    """Arguments for sharded execution of the adaptive strategy."""
    parser.add_argument("--shards", type=int, default=1,
                        help="split the adaptive run into N partitioned "
                             "sessions and merge their results (1 = unsharded)")
    parser.add_argument("--backend", choices=available_backends(),
                        default="serial",
                        help="where shard sessions run: serial (reference), "
                             "thread, process (multi-core), or async "
                             "(cooperative asyncio interleaving with live "
                             "events and prompt cancellation)")
    parser.add_argument("--partitioner", choices=available_partitioners(),
                        default="hash",
                        help="record-to-shard assignment; hash co-partitions "
                             "both sides by join-key value (exact semantics), "
                             "gram replicates records across gram-owning "
                             "shards for full approximate recall (duplicates "
                             "removed at merge), gram-prefix keeps that "
                             "recall at a lower replication factor via "
                             "frequency-ordered prefix signatures")
    parser.add_argument("--handoff", choices=HANDOFF_MODES, default="auto",
                        help="shard-input representation: pickle copies "
                             "records into every task, shared-memory encodes "
                             "each side once into columnar shared-memory "
                             "blocks and ships only descriptors to process "
                             "workers, auto (default) prefers shared-memory "
                             "and falls back to pickle; results are "
                             "bit-identical either way")


def _add_failure_arguments(parser: argparse.ArgumentParser) -> None:
    """Arguments governing shard failures (adaptive strategy only)."""
    parser.add_argument("--on-failure", choices=available_failure_policies(),
                        default="fail-fast",
                        help="what a shard failure does to the run: "
                             "fail-fast aborts on the first failure "
                             "(default), retry re-runs the failed shard, "
                             "degrade drops irrecoverable shards and "
                             "reports the loss (exit code 3)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="re-run a failed shard up to N times before "
                             "giving up (requires --on-failure retry or "
                             "degrade)")
    parser.add_argument("--shard-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock bound per shard attempt; an attempt "
                             "exceeding it counts as a failure and follows "
                             "--on-failure")
    # Undocumented testing hook: crash the given shard's first attempt
    # (deterministically), so the failure paths are drivable end-to-end
    # from the command line and the CI smoke.
    parser.add_argument("--inject-crash", type=int, default=None,
                        metavar="SHARD", help=argparse.SUPPRESS)


def _thresholds_from_args(args: argparse.Namespace) -> Thresholds:
    return Thresholds(
        theta_sim=args.theta_sim,
        delta_adapt=args.delta_adapt,
        window_size=args.window_size,
        theta_out=args.theta_out,
        theta_curpert=args.theta_curpert,
        theta_pastpert=args.theta_pastpert,
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive record linkage (EDBT 2009 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate a synthetic parent/child test case as CSV"
    )
    generate.add_argument("--test-case", choices=sorted(STANDARD_TEST_CASES),
                          help="one of the paper's eight standard test cases")
    generate.add_argument("--pattern", choices=sorted(STANDARD_PATTERNS),
                          default="few_high", help="perturbation pattern")
    generate.add_argument("--variants-in", choices=("child", "both", "parent"),
                          default="child", help="where variants are injected")
    generate.add_argument("--parent-size", type=int, default=1000)
    generate.add_argument("--child-size", type=int, default=2000)
    generate.add_argument("--variant-rate", type=float, default=0.10)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--parent-output", default="parent.csv")
    generate.add_argument("--child-output", default="child.csv")
    generate.add_argument("--truth-output", default="true_pairs.csv")

    link = subparsers.add_parser("link", help="link two CSV files")
    link.add_argument("left_csv", help="left (parent/reference) table")
    link.add_argument("right_csv", help="right (child) table")
    link.add_argument("--attribute", required=True, help="join attribute name")
    link.add_argument("--strategy", choices=STRATEGIES, default="adaptive")
    link.add_argument("--output", default="matches.csv",
                      help="where to write the matched pairs")
    link.add_argument("--stream", action="store_true",
                      help="emit matches on stdout as NDJSON while they are "
                           "found (adaptive strategy only); the CSV output "
                           "is still written at the end")
    link.add_argument("--progress", action="store_true",
                      help="print a live progress ticker (steps, matches, "
                           "shards, elapsed) to stderr during the run")
    _add_threshold_arguments(link)
    _add_sharding_arguments(link)
    _add_failure_arguments(link)

    experiment = subparsers.add_parser(
        "experiment", help="run the gain/cost experiment for a standard test case"
    )
    experiment.add_argument("--test-case", choices=sorted(STANDARD_TEST_CASES),
                            default="few_high_child")
    experiment.add_argument("--parent-size", type=int, default=1500)
    experiment.add_argument("--child-size", type=int, default=3000)
    experiment.add_argument("--json-output",
                            help="optional path for the machine-readable outcome")
    _add_threshold_arguments(experiment)
    _add_sharding_arguments(experiment)

    calibrate = subparsers.add_parser(
        "calibrate", help="measure the Sec. 4.3 cost-model weights on this machine"
    )
    calibrate.add_argument("--parent-size", type=int, default=600)
    calibrate.add_argument("--child-size", type=int, default=400)
    calibrate.add_argument("--max-steps", type=int, default=400)

    serve = subparsers.add_parser(
        "serve", help="run the linkage HTTP job server (see repro.server)"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: loopback only)")
    serve.add_argument("--port", type=int, default=8080,
                       help="port to bind (0 = pick an ephemeral port and "
                            "print it)")
    serve.add_argument("--workers", type=int, default=2,
                       help="shared worker budget: shard sessions running "
                            "concurrently across all jobs")
    serve.add_argument("--max-queued", type=int, default=16,
                       help="admission cap on open (non-terminal) jobs; "
                            "submissions past it get HTTP 429")
    serve.add_argument("--store", default=None, metavar="FILE",
                       help="append-only JSONL job store; jobs survive "
                            "restarts and interrupted ones resume "
                            "automatically (default: in-memory only)")
    # Undocumented testing hooks: slow every engine batch down and
    # shrink the batch so smoke tests can reliably catch a job mid-run
    # (cancel it, SIGTERM us) at a batch boundary.
    serve.add_argument("--shard-delay", type=float, default=0.0,
                       help=argparse.SUPPRESS)
    serve.add_argument("--shard-batch", type=int, default=None,
                       help=argparse.SUPPRESS)

    lint = subparsers.add_parser(
        "lint",
        help="check the repo's architectural invariants (AST-based, "
             "rules RL001–RL006; see ARCHITECTURE.md 'Enforced invariants')",
    )
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint "
                           "(e.g. src tests benchmarks examples)")
    lint.add_argument("--format", choices=("text", "github"), default="text",
                      help="diagnostic format (github = Actions inline "
                           "annotations)")
    lint.add_argument("--waivers", default=None, metavar="FILE",
                      help=f"waiver file (default: {DEFAULT_WAIVER_FILE} "
                           f"if present)")
    lint.add_argument("--no-waivers", action="store_true",
                      help="ignore any waiver file")
    lint.add_argument("--show-waived", action="store_true",
                      help="also print waived findings")
    lint.add_argument("--list-rules", action="store_true",
                      help="list the registered rules and exit")

    return parser


# -- sub-command implementations -------------------------------------------------


def _command_generate(args: argparse.Namespace) -> int:
    if args.test_case:
        spec = STANDARD_TEST_CASES[args.test_case].scaled(
            args.parent_size, args.child_size
        )
    else:
        spec = TestCaseSpec(
            name="custom",
            pattern=args.pattern,
            variants_in=args.variants_in,
            parent_size=args.parent_size,
            child_size=args.child_size,
            variant_rate=args.variant_rate,
            seed=args.seed,
        )
    dataset = generate_test_case(spec)
    dataset.parent.to_csv(args.parent_output)
    dataset.child.to_csv(args.child_output)
    with open(args.truth_output, "w", encoding="utf-8") as handle:
        handle.write("parent_index,child_index\n")
        for parent_index, child_index in dataset.true_pairs:
            handle.write(f"{parent_index},{child_index}\n")
    print(
        f"wrote {len(dataset.parent)} parent rows to {args.parent_output}, "
        f"{len(dataset.child)} child rows to {args.child_output} "
        f"({dataset.child_variant_count} child variants, "
        f"{dataset.parent_variant_count} parent variants), "
        f"{len(dataset.true_pairs)} true pairs to {args.truth_output}"
    )
    return 0


def _match_json(match: StreamedMatch) -> str:
    """One NDJSON line for a streamed match (the ``--stream`` format).

    Delegates to :meth:`StreamedMatch.to_json` — the one wire mapping the
    CLI and the HTTP server's match feed share byte-for-byte.
    """
    return json.dumps(match.to_json())


def _progress_ticker(handle: JobHandle):
    """Start the stderr progress ticker; returns the stop-and-join hook."""
    stop = threading.Event()

    def tick() -> None:
        while not stop.wait(_PROGRESS_TICK_SECONDS):
            print(f"progress: {handle.progress().describe()}", file=sys.stderr)

    thread = threading.Thread(target=tick, name="progress-ticker", daemon=True)
    thread.start()

    def join() -> None:
        stop.set()
        thread.join()
        # Always print the final reading, even for runs faster than one
        # tick, so --progress output is deterministic enough to test.
        print(f"progress: {handle.progress().describe()}", file=sys.stderr)

    return join


def _command_link(args: argparse.Namespace) -> int:
    if args.shards < 1:
        print(f"error: --shards must be at least 1, got {args.shards}",
              file=sys.stderr)
        return 2
    if args.shards > 1 and args.strategy != "adaptive":
        print("error: --shards is only available with --strategy adaptive",
              file=sys.stderr)
        return 2
    if args.stream and args.strategy != "adaptive":
        print("error: --stream is only available with --strategy adaptive "
              "(the baselines materialise their whole result)",
              file=sys.stderr)
        return 2
    if args.progress and args.strategy != "adaptive":
        print("error: --progress is only available with --strategy adaptive "
              "(the baseline operators publish no progress events)",
              file=sys.stderr)
        return 2
    failure_requested = (
        args.on_failure != "fail-fast"
        or args.retries is not None
        or args.shard_timeout is not None
    )
    if (failure_requested or args.inject_crash is not None) and (
        args.strategy != "adaptive"
    ):
        print("error: --on-failure/--retries/--shard-timeout govern the "
              "sharded execution layer and require --strategy adaptive",
              file=sys.stderr)
        return 2
    if args.retries is not None and args.on_failure == "fail-fast":
        print("error: --retries does not apply to --on-failure fail-fast; "
              "use --on-failure retry (or degrade) to re-run failed shards",
              file=sys.stderr)
        return 2
    if args.retries is not None and args.retries < 0:
        print(f"error: --retries must be >= 0, got {args.retries}",
              file=sys.stderr)
        return 2
    if args.stream and args.backend != "serial":
        print("error: --stream runs the deterministic serial-merge path and "
              "cannot honour --backend "
              f"{args.backend}; drop --stream to use that backend, or drop "
              "--backend to stream",
              file=sys.stderr)
        return 2
    left = Table.from_csv(args.left_csv, name="left")
    right = Table.from_csv(args.right_csv, name="right")
    job = (
        LinkageJob.between(left, right)
        .on(args.attribute)
        .strategy(args.strategy)
        .threshold(args.theta_sim)
        .thresholds(_thresholds_from_args(args))
    )
    if args.strategy == "adaptive":
        job.policy(args.policy, budget=args.budget, seconds=args.deadline)
    if args.shards != 1:
        job.sharded(args.shards, backend=args.backend,
                    partitioner=args.partitioner, handoff=args.handoff)
    if failure_requested:
        job.on_failure(args.on_failure, retries=args.retries,
                       shard_timeout=args.shard_timeout)
    if args.inject_crash is not None:
        job.inject_faults(FaultPlan.crash(args.inject_crash, attempts=(1,)))
    if args.progress:
        job.with_progress()
    handle = job.build()
    join_ticker = None
    if args.progress:
        join_ticker = _progress_ticker(handle)
    try:
        if args.stream:
            stream = handle.stream_matches()
            try:
                for match in stream:
                    print(_match_json(match))
            except BrokenPipeError:
                # The downstream consumer (e.g. `| head`) closed stdout:
                # that is a cancel — keep the partial result, exit clean.
                stream.close()
                # Point the stdout *fd* at devnull so the interpreter's
                # exit-time flush cannot trip over the broken pipe; the
                # sys.stdout object itself is left alone (in-process
                # callers and capture fixtures keep working).
                try:
                    devnull = os.open(os.devnull, os.O_WRONLY)
                    os.dup2(devnull, sys.stdout.fileno())
                    os.close(devnull)
                except (OSError, ValueError, AttributeError):
                    pass  # non-fd stdout (test capture): nothing to fix
            result = handle.result()
        else:
            result = handle.run()
    except ShardError as error:
        # fail-fast (or retry exhaustion) aborted the run: the structured
        # error carries the shard id, attempt count and cause.
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if join_ticker is not None:
            join_ticker()
    with open(args.output, "w", encoding="utf-8") as output:
        output.write("left_index,right_index\n")
        for left_index, right_index in result.pairs:
            output.write(f"{left_index},{right_index}\n")
    report = sys.stderr if args.stream else sys.stdout
    print(
        f"{args.strategy}: {result.pair_count} matched pairs written to "
        f"{args.output}",
        file=report,
    )
    if "trace" in result.statistics:
        print(format_mapping(result.statistics["trace"], title="adaptive trace"),
              file=report)
    if "per_shard" in result.statistics:
        print(format_table(result.statistics["per_shard"],
                           title="-- per-shard breakdown --"),
              file=report)
    if result.statistics.get("degraded"):
        # A degraded run never exits 0: the result is partial, and the
        # loss is spelled out — which shards were dropped, why, and what
        # that costs in recall.
        rows = result.statistics["failed_shards"]
        recall = result.statistics["estimated_recall"]
        print(f"warning: degraded run — {len(rows)} shard(s) dropped, "
              f"estimated recall {recall:.1%}",
              file=sys.stderr)
        for row in rows:
            reason = "timeout" if row["timed_out"] else row["error_type"]
            detail = str(row["error"])
            if detail.startswith(f"{row['error_type']}:"):
                detail = detail[len(row["error_type"]) + 1:].strip()
            print(f"  shard {row['shard']}: {reason} after "
                  f"{row['attempts']} attempt(s) — {detail}",
                  file=sys.stderr)
        return 3
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    spec = STANDARD_TEST_CASES[args.test_case]
    outcome = run_experiment(
        spec,
        parent_size=args.parent_size,
        child_size=args.child_size,
        thresholds=_thresholds_from_args(args),
        policy=args.policy,
        budget=args.budget,
        deadline=args.deadline,
        shards=args.shards,
        backend=args.backend,
        partitioner=args.partitioner,
        handoff=args.handoff,
    )
    print(format_table([outcome.fig6_row()], title="-- gain / cost (Fig. 6 row) --"))
    print()
    print(format_table([outcome.fig7_row()], title="-- state breakdown (Fig. 7 row) --"))
    print()
    print(format_mapping(
        {name: seconds for name, seconds in outcome.wall_clock.items()},
        title="-- wall-clock seconds --",
    ))
    if args.json_output:
        with open(args.json_output, "w", encoding="utf-8") as handle:
            json.dump(outcome_to_dict(outcome), handle, indent=2, sort_keys=True)
        print(f"\nmachine-readable outcome written to {args.json_output}")
    return 0


def _command_calibrate(args: argparse.Namespace) -> int:
    calibration = calibrate_weights(
        parent_size=args.parent_size,
        child_size=args.child_size,
        max_steps=args.max_steps,
    )
    print(format_table(calibration.as_rows(),
                       title="-- measured vs paper cost-model weights --"))
    print(f"\nunit (lex/rex) step time: {calibration.unit_step_seconds * 1e6:.1f} µs")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print(f"error: --workers must be at least 1, got {args.workers}",
              file=sys.stderr)
        return 2
    if args.max_queued < 1:
        print(f"error: --max-queued must be at least 1, got {args.max_queued}",
              file=sys.stderr)
        return 2
    store = JsonlJobStore(args.store) if args.store else None
    scheduler_options = {}
    if args.shard_batch is not None:
        scheduler_options["shard_batch"] = args.shard_batch
    scheduler = JobScheduler(
        max_workers=args.workers,
        max_queued=args.max_queued,
        store=store,
        shard_delay=args.shard_delay,
        **scheduler_options,
    )
    if args.store:
        resumed = scheduler.restore()
        restored = scheduler.job_ids()
        if restored:
            print(f"restored {len(restored)} job(s) from {args.store}"
                  + (f"; resuming {', '.join(resumed)}" if resumed else ""),
                  file=sys.stderr)
    server = LinkageServer(host=args.host, port=args.port, scheduler=scheduler)
    stop = threading.Event()

    def handle_signal(signum: int, frame: object) -> None:
        del frame
        print(f"received {signal.Signals(signum).name}, shutting down",
              file=sys.stderr, flush=True)
        stop.set()

    signal.signal(signal.SIGTERM, handle_signal)
    signal.signal(signal.SIGINT, handle_signal)
    server.start()
    # The parseable contract line: smoke tests and scripts read the port
    # off it (mandatory with --port 0).
    print(f"serving on {server.url}", flush=True)
    stop.wait()
    server.shutdown()
    # Shared-memory hygiene: every columnar handoff block must be gone.
    print(f"live shared-memory blocks: {live_block_count()}", flush=True)
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    return run_lint(
        args.paths,
        output_format=args.format,
        waiver_file=args.waivers,
        use_waivers=not args.no_waivers,
        list_rules=args.list_rules,
        show_waived=args.show_waived,
    )


_COMMANDS = {
    "generate": _command_generate,
    "link": _command_link,
    "experiment": _command_experiment,
    "calibrate": _command_calibrate,
    "serve": _command_serve,
    "lint": _command_lint,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
