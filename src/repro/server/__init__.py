"""Linkage-as-a-service: the HTTP job API over the jobs layer.

Everything below the routes already existed — :class:`~repro.jobs.LinkageJob`
builds specs, :class:`~repro.jobs.JobHandle` runs them, the runtime layer
shards and merges deterministically.  This package adds the service
skin, in three stdlib-only pieces:

* :mod:`repro.server.scheduler` — :class:`JobScheduler`: N concurrent
  jobs on one shared worker budget, weighted fair-share dispatch at
  shard granularity, per-shard match buffers for any number of streaming
  readers, restart-resume from a job store.
* :mod:`repro.server.store` — the :class:`JobStore` contract plus the
  in-memory and append-only JSONL backends.
* :mod:`repro.server.app` — :class:`LinkageServer`: the
  :mod:`http.server`-based front end (``POST /jobs``, ``GET /jobs/{id}``,
  chunked NDJSON ``/matches`` byte-identical to ``repro link --stream``,
  ``DELETE`` to cancel, ``/healthz``, ``/metrics``).

Embed it in-process::

    from repro.server import LinkageServer

    server = LinkageServer(port=0).start()   # ephemeral port
    print(server.url)                        # http://127.0.0.1:NNNNN
    ...
    server.shutdown()

or run it from the CLI: ``repro serve --port 8080 --store jobs.jsonl``.
"""

from repro.server.app import LinkageServer
from repro.server.scheduler import (
    JobScheduler,
    MatchesUnavailable,
    QueueFull,
    UnknownJob,
)
from repro.server.store import JobStore, JsonlJobStore, MemoryJobStore, StoredJob

__all__ = [
    "JobScheduler",
    "JobStore",
    "JsonlJobStore",
    "LinkageServer",
    "MatchesUnavailable",
    "MemoryJobStore",
    "QueueFull",
    "StoredJob",
    "UnknownJob",
]
