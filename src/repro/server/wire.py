"""The server's JSON wire formats, in one place.

Every byte the HTTP layer emits is produced here or delegated to a
format owned by a lower layer — :meth:`StreamedMatch.to_json` for match
lines (byte-identical to ``repro link --stream``),
:meth:`ProgressSnapshot.to_json` for progress, and
:meth:`ShardedJoinResult.describe_json` (via ``LinkageResult.statistics``)
for result statistics — so the CLI and the server can never drift apart.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.jobs.handle import StreamedMatch
from repro.runtime.collectors import ProgressSnapshot

__all__ = [
    "error_body",
    "job_status_body",
    "match_line",
    "render_metrics",
]


def match_line(match: StreamedMatch) -> bytes:
    """One NDJSON line (newline included) for a streamed match.

    ``json.dumps`` over :meth:`StreamedMatch.to_json` — exactly what the
    CLI ``--stream`` path prints, so the two feeds are byte-identical.
    """
    return (json.dumps(match.to_json()) + "\n").encode("utf-8")


def error_body(message: str) -> Dict[str, object]:
    """The uniform error payload (every non-2xx JSON body)."""
    return {"error": message}


def job_status_body(
    job_id: str,
    state: str,
    priority: int,
    payload: Dict[str, object],
    progress: Optional[ProgressSnapshot] = None,
    statistics: Optional[Dict[str, object]] = None,
    result_size: Optional[int] = None,
    error: Optional[str] = None,
) -> Dict[str, object]:
    """The ``GET /jobs/{id}`` (and ``POST /jobs`` echo) payload.

    ``state`` is the :class:`~repro.jobs.handle.JobHandle` state word
    prefixed with the scheduler's admission view (``queued`` until the
    first shard is dispatched).  ``spec`` echoes the descriptive subset
    of the canonical payload — enough for a client listing jobs to know
    what each one is, without the (potentially large) inline tables.
    """
    body: Dict[str, object] = {
        "id": job_id,
        "state": state,
        "priority": priority,
        "spec": {
            "strategy": payload.get("strategy"),
            "attribute": payload.get("attribute"),
            "shards": payload.get("shards"),
            "backend": payload.get("backend"),
            "partitioner": payload.get("partitioner"),
            "policy": payload.get("policy"),
        },
    }
    if progress is not None:
        body["progress"] = progress.to_json()
    if result_size is not None:
        body["result_size"] = result_size
    if statistics is not None:
        body["statistics"] = statistics
    if error is not None:
        body["error"] = error
    return body


def render_metrics(counters: Dict[str, object]) -> str:
    """``GET /metrics``: one ``name value`` line per counter, sorted."""
    return (
        "".join(f"{name} {counters[name]}\n" for name in sorted(counters))
    )
