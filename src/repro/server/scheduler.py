"""Multi-job fair-share scheduling over one shared worker budget.

The scheduler is what turns :class:`~repro.jobs.handle.JobHandle` — a
one-shot, in-process object — into a *service*: N concurrent jobs share
``max_workers`` worker threads at **shard** granularity, so a long job
cannot monopolise the budget while short ones queue behind it.

Admission and dispatch
----------------------

Admission is bounded by ``max_queued`` open (non-terminal) jobs — past
that, :meth:`submit` raises :class:`QueueFull` and the HTTP layer
answers 429.  Dispatch is weighted fair-share (stride scheduling): each
job carries a ``priority`` weight and a consumed-cost account, and every
time a worker frees up it picks the dispatchable job with the smallest
*virtual time* ``consumed_cost / priority``, breaking ties by higher
priority then admission order.  Cost is the shard plan's pairwise
comparison volume — shard ``k`` costs ``max(l_k · r_k, 1)``, the same
quantity :meth:`ShardedJoinResult.estimated_recall` accounts recall in —
charged when the shard is dispatched.  Under contention a weight-3 job
therefore receives ~3× the comparison volume a weight-1 job does, and
every admitted job keeps making progress (no starvation: a waiting job's
virtual time stands still while the running ones' grow).

Execution modes
---------------

Adaptive jobs without failure knobs are driven *shard-granular*: the
scheduler builds the job's :class:`~repro.runtime.sharding.ShardPlan`,
runs one :class:`~repro.runtime.session.JoinSession` per shard (each
dispatch is one whole shard, run batch-by-batch so cancellation lands
promptly), records every batch's matches into per-shard buffers for the
streaming readers, and funnels outcomes back through the handle's
external-driver surface (``begin_external`` / ``record_shard_outcome`` /
``finish_external``).  Three job shapes instead run as a single
scheduled unit (costed at their full volume): baseline strategies (their
operators are not incremental), jobs with a failure policy or fault plan
(retry/timeout/degrade semantics live in the
:class:`~repro.runtime.parallel.ParallelExecutor`, so the whole job runs
through :meth:`JobHandle.run`), and restart-resumes
(:meth:`JobHandle.resume` re-runs exactly the missing shards).

Match feeds
-----------

Readers (:meth:`stream_matches`) walk the per-shard buffers in shard-id
order, each with its *own*
:class:`~repro.runtime.sharding.FirstShardWins` dedup — the merge path's
rule, applied reader-side — and block on a condition variable until more
matches arrive.  Buffers hold the raw per-shard sequences, so any number
of readers, attaching at any time (including after completion, or after
a restart rebuilt the buffers from persisted outcomes), see the same
byte sequence ``repro link --stream`` would print for the same spec.

Restart
-------

:meth:`restore` replays a :class:`~repro.server.store.JobStore`:
terminal jobs come back listable with their matches re-streamable from
persisted outcomes; interrupted adaptive jobs are rehydrated through
:meth:`JobHandle.restore` and automatically re-enqueued as resume units.
Only complete shard outcomes are ever persisted, so a resumed run merges
bit-identically to an uninterrupted one.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.jobs.builder import JobSpec
from repro.jobs.handle import DEFAULT_STREAM_BATCH, JobHandle, StreamedMatch
from repro.jobs.serialization import build_job, normalize_payload
from repro.runtime.collectors import ProgressSnapshot
from repro.runtime.events import EventBus, ShardCompleted
from repro.runtime.sharding import FirstShardWins, ShardOutcome, ShardPlan
from repro.runtime.session import JoinSession
from repro.server.store import JobStore, MemoryJobStore
from repro.server.wire import job_status_body

__all__ = [
    "JobScheduler",
    "MatchesUnavailable",
    "QueueFull",
    "UnknownJob",
]


class QueueFull(RuntimeError):
    """Admission refused: ``max_queued`` jobs are already open (HTTP 429)."""


class UnknownJob(KeyError):
    """No job with that id (HTTP 404)."""


class MatchesUnavailable(RuntimeError):
    """The job produces no match feed (baseline strategy, or it failed)."""


#: Sentinel shard id for single-unit dispatches (whole-job runs).
_WHOLE_JOB = -1


@dataclass
class _Job:
    """One admitted job's scheduler-side state (all mutation under the lock)."""

    job_id: str
    seq: int
    handle: JobHandle
    payload: Dict[str, object]
    priority: int
    #: ``shard`` (scheduler-driven sessions) or ``whole`` (single unit).
    mode: str
    plan: Optional[ShardPlan] = None
    #: Pairwise-volume cost per dispatch unit (``whole`` jobs: one entry).
    costs: Dict[int, float] = field(default_factory=dict)
    consumed: float = 0.0
    pending: List[int] = field(default_factory=list)
    running: Set[int] = field(default_factory=set)
    dispatched: bool = False
    finalized: bool = False
    #: Raw (pre-dedup) per-shard match buffers for streaming readers.
    buffers: Dict[int, List[StreamedMatch]] = field(default_factory=dict)
    #: Shards whose buffers are complete (no more appends coming).
    buffer_done: Set[int] = field(default_factory=set)
    #: Shard ids already written to the store (restored or recorded live).
    persisted: Set[int] = field(default_factory=set)
    #: Whether buffers will ever exist (adaptive jobs only).
    streamable: bool = True
    error: Optional[str] = None
    resume: bool = False

    @property
    def virtual_time(self) -> float:
        return self.consumed / self.priority

    @property
    def open(self) -> bool:
        """Still counts against the admission queue depth."""
        return not self.finalized


class JobScheduler:
    """The fair-share scheduler (see the module docstring).

    Parameters
    ----------
    max_workers:
        The shared worker budget: how many shard sessions (or single-unit
        jobs) run concurrently, across *all* jobs.
    max_queued:
        Admission bound on open jobs; exceeding it raises
        :class:`QueueFull`.
    store:
        The persistence backend (defaults to :class:`MemoryJobStore`).
    autostart:
        Start the worker threads immediately.  Fairness tests pass
        ``False``, queue several jobs, then :meth:`start` — making the
        dispatch order deterministic and observable.
    shard_batch:
        Engine steps per batch in scheduler-driven shard sessions (the
        granularity at which matches surface and cancellation lands).
    shard_delay:
        Testing/CI hook: seconds to sleep after each engine batch of a
        scheduler-driven shard, so smoke tests can reliably catch jobs
        mid-run (cancel them, SIGTERM the server).  0 in production.
    on_shard_complete:
        Testing hook called (without the lock held) after each
        scheduler-driven shard completes, with ``(job_id, shard_id)``.
    """

    def __init__(
        self,
        max_workers: int = 2,
        max_queued: int = 16,
        store: Optional[JobStore] = None,
        autostart: bool = True,
        shard_batch: int = DEFAULT_STREAM_BATCH,
        shard_delay: float = 0.0,
        on_shard_complete: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be at least 1, got {max_workers}")
        if max_queued < 1:
            raise ValueError(f"max_queued must be at least 1, got {max_queued}")
        self.store = store if store is not None else MemoryJobStore()
        self.max_workers = max_workers
        self.max_queued = max_queued
        self._shard_batch = shard_batch
        self._shard_delay = shard_delay
        self._on_shard_complete = on_shard_complete
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs: Dict[str, _Job] = {}
        self._order: List[str] = []
        self._next_seq = 1
        self._stopping = False
        self._started = False
        self._workers: List[threading.Thread] = []
        self._counters: Dict[str, int] = {
            "jobs_submitted": 0,
            "jobs_finished": 0,
            "jobs_cancelled": 0,
            "jobs_failed": 0,
            "jobs_resumed": 0,
            "shards_completed": 0,
        }
        if autostart:
            self.start()

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> None:
        """Start the worker threads (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
            for index in range(self.max_workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"linkage-worker-{index}",
                    daemon=True,
                )
                self._workers.append(thread)
                thread.start()

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Stop dispatching, interrupt running jobs, join the workers.

        Running shard sessions observe their job's cancel token at the
        next batch boundary and stop *without* being recorded (only
        complete shards are persisted), so a disk-backed server resumes
        them whole after restart.  No terminal status is written for
        interrupted jobs — their absence is what marks them resumable.
        """
        with self._cond:
            self._stopping = True
            for job in self._jobs.values():
                if not job.finalized:
                    job.handle.cancel_token.set()
            self._cond.notify_all()
        for thread in self._workers:
            thread.join(timeout)
        self.store.close()

    # -- admission -------------------------------------------------------------------

    def submit(self, payload: Mapping) -> str:
        """Validate, admit and enqueue one job; returns its id.

        Raises :class:`~repro.jobs.serialization.PayloadError` on an
        invalid payload and :class:`QueueFull` past the depth cap.
        """
        canonical = normalize_payload(payload)
        handle = build_job(canonical)
        with self._cond:
            if self._stopping:
                raise QueueFull("the server is shutting down")
            depth = sum(1 for job in self._jobs.values() if job.open)
            if depth >= self.max_queued:
                raise QueueFull(
                    f"queue depth cap reached ({depth} open jobs, "
                    f"max_queued={self.max_queued}); retry after one "
                    f"completes"
                )
            job_id = f"job-{self._next_seq}"
            job = self._admit(job_id, handle, canonical)
            self._counters["jobs_submitted"] += 1
            # Persist the admission before any worker can possibly write
            # a shard record for it: replay drops shard lines that
            # precede their job line.
            self.store.add_job(job_id, dict(canonical))
            self._cond.notify_all()
        return job.job_id

    def _admit(
        self, job_id: str, handle: JobHandle, canonical: Dict[str, object]
    ) -> _Job:
        """Register a built handle under the lock and enqueue its work."""
        spec = handle.spec
        shard_driven = (
            spec.strategy == "adaptive"
            and spec.failure_policy is None
            and spec.fault_plan is None
        )
        job = _Job(
            job_id=job_id,
            seq=self._next_seq,
            handle=handle,
            payload=canonical,
            priority=int(canonical.get("priority", 1)),
            mode="shard" if shard_driven else "whole",
            streamable=spec.strategy == "adaptive",
        )
        self._next_seq += 1
        if job.mode == "shard":
            job.plan = self._build_plan(spec)
            sizes = job.plan.shard_sizes()
            for shard_id, (left_size, right_size) in enumerate(sizes):
                job.costs[shard_id] = float(max(left_size * right_size, 1))
                job.buffers[shard_id] = []
            job.pending = list(range(job.plan.shard_count))
        else:
            left = len(spec.left) if hasattr(spec.left, "__len__") else 1
            right = len(spec.right) if hasattr(spec.right, "__len__") else 1
            job.costs[_WHOLE_JOB] = float(max(left * right, 1))
            job.pending = [_WHOLE_JOB]
        self._jobs[job_id] = job
        self._order.append(job_id)
        return job

    @staticmethod
    def _build_plan(spec: JobSpec) -> ShardPlan:
        """The job's deterministic shard plan (same spec → same plan)."""
        return ShardPlan.build(
            spec.left,
            spec.right,
            spec.attribute,
            spec.shards,
            spec.partitioner,
            config=spec.run_config,
            handoff=spec.handoff,
        )

    # -- restart: replay the store ---------------------------------------------------

    def restore(self) -> List[str]:
        """Rehydrate the store's jobs; returns the ids re-enqueued to run.

        Jobs with a persisted terminal status come back listable exactly
        as they ended (adaptive ones with their match feed rebuilt from
        persisted outcomes) — a deliberately cancelled or failed job is
        *not* re-run.  Jobs with no terminal status were interrupted
        mid-run: adaptive ones are restored as cancelled-partial runs and
        re-enqueued as resume units (only the missing shards re-run);
        baseline ones re-run whole (their operators keep no partial
        state).  Job numbering continues after the highest restored id,
        so restored and new ids never collide.
        """
        resumed: List[str] = []
        for stored in self.store.load():
            handle = build_job(stored.payload)
            spec = handle.spec
            with self._cond:
                try:
                    seq = int(stored.job_id.rsplit("-", 1)[1])
                except (IndexError, ValueError):
                    seq = self._next_seq
                self._next_seq = max(self._next_seq, seq)
                job = self._admit(stored.job_id, handle, dict(stored.payload))
                job.pending.clear()
                job.persisted = set(stored.outcomes)
                if spec.strategy == "adaptive":
                    plan = job.plan or self._build_plan(spec)
                    job.plan = plan
                    outcomes = [
                        stored.outcomes[shard_id]
                        for shard_id in sorted(stored.outcomes)
                    ]
                    handle.restore(plan, outcomes)
                    self._rebuild_buffers(job)
                    if stored.status is None and not handle.finished:
                        # Interrupted mid-run: re-enqueue as one resume
                        # unit, costed at the missing shards' volume.
                        job.resume = True
                        job.mode = "whole"
                        sizes = plan.shard_sizes()
                        missing_cost = sum(
                            max(sizes[s][0] * sizes[s][1], 1)
                            for s in range(plan.shard_count)
                            if s not in stored.outcomes
                        )
                        job.costs = {_WHOLE_JOB: float(max(missing_cost, 1))}
                        job.pending = [_WHOLE_JOB]
                        resumed.append(job.job_id)
                        self._counters["jobs_resumed"] += 1
                    else:
                        job.finalized = True
                        if stored.status == "failed":
                            job.error = "failed before restart"
                elif stored.status is None:
                    # Interrupted baseline: re-run it whole on the fresh
                    # handle (pending from _admit is already correct).
                    job.pending = [_WHOLE_JOB]
                    resumed.append(job.job_id)
                    self._counters["jobs_resumed"] += 1
                else:
                    # Terminal baseline: listable, but its result was
                    # never persisted (baselines record no outcomes).
                    job.finalized = True
                    if stored.status != "finished":
                        job.error = f"{stored.status} before restart"
                self._cond.notify_all()
        return resumed

    def _rebuild_buffers(self, job: _Job) -> None:
        """Recreate the match feed from the handle's shard outcomes.

        Each outcome holds its shard's full raw match sequence in
        emission order, so replaying it through the origin maps yields
        the exact buffer a live run would have produced.  Only shards
        *with* outcomes are marked buffer-complete: a restored partial
        run's missing shards stay open so readers wait for the resume to
        fill them.
        """
        tag_shards = job.handle.spec.shards > 1
        for outcome in job.handle.shard_outcomes:
            shard_id = outcome.shard_id
            left_origins = outcome.left_origins
            right_origins = outcome.right_origins
            tag = shard_id if tag_shards else None
            job.buffers[shard_id] = [
                StreamedMatch(
                    left_origins[event.left.ordinal],
                    right_origins[event.right.ordinal],
                    event,
                    tag,
                )
                for event in outcome.result.matches
            ]
            job.buffer_done.add(shard_id)

    # -- queries ---------------------------------------------------------------------

    def _get(self, job_id: str) -> _Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJob(job_id)
        return job

    def job_ids(self) -> List[str]:
        """Admission-ordered ids of every known job."""
        with self._lock:
            return list(self._order)

    def describe(self, job_id: str) -> Dict[str, object]:
        """The job's status body (the ``GET /jobs/{id}`` payload)."""
        with self._lock:
            job = self._get(job_id)
            state = job.handle.state
            if (
                not job.finalized
                and state != "running"
                and (state == "pending" or job.pending or job.running)
            ):
                # Admitted but not dispatched yet — including a restored
                # partial run awaiting its resume unit.
                state = "queued"
            progress: Optional[ProgressSnapshot] = None
            collector = job.handle.progress_collector
            if collector is not None:
                progress = collector.snapshot()
            statistics: Optional[Dict[str, object]] = None
            result_size: Optional[int] = None
            if job.finalized and state in ("finished", "cancelled"):
                try:
                    result = job.handle.result()
                except RuntimeError:
                    # Restored terminal baseline: listable, result gone.
                    result = None
                if result is not None:
                    statistics = result.statistics
                    result_size = result.pair_count
            return job_status_body(
                job_id=job.job_id,
                state=state,
                priority=job.priority,
                payload=job.payload,
                progress=progress,
                statistics=statistics,
                result_size=result_size,
                error=job.error,
            )

    def counters(self) -> Dict[str, object]:
        """Live counters for ``GET /metrics``."""
        with self._lock:
            counters: Dict[str, object] = dict(self._counters)
            counters["jobs_open"] = sum(
                1 for job in self._jobs.values() if job.open
            )
            counters["workers"] = self.max_workers
            return counters

    # -- cancellation ----------------------------------------------------------------

    def cancel(self, job_id: str) -> str:
        """Request cancellation; returns the job's state afterwards.

        Running work stops at the next engine-batch boundary; a job that
        never started is finalised as ``cancelled`` immediately.
        Idempotent, and a no-op on terminal jobs.
        """
        finalize = False
        with self._cond:
            job = self._get(job_id)
            if not job.finalized:
                job.handle.cancel_token.set()
                job.pending.clear()
                if not job.running:
                    # Nothing is running and nothing will start: close it
                    # out here rather than waiting for a worker.
                    finalize = True
                self._cond.notify_all()
        if finalize:
            self._finalize(job)
        with self._lock:
            state = job.handle.state
        return "queued" if state == "pending" else state

    # -- the match feed --------------------------------------------------------------

    def stream_matches(
        self, job_id: str, poll_seconds: float = 0.05
    ) -> Iterator[StreamedMatch]:
        """Yield the job's deduplicated match stream, blocking for more.

        Walks the per-shard buffers in shard-id order with a private
        :class:`FirstShardWins`, exactly like the merge path — so the
        yielded sequence is the one ``repro link --stream`` prints, no
        matter how the shards were interleaved across workers, when the
        reader attached, or whether the buffers were rebuilt after a
        restart.  The iterator ends when every shard's buffer is closed.
        Whole-unit jobs (failure-policy runs, resumes) buffer nothing
        until they complete, so their readers block until then.
        """
        with self._cond:
            job = self._get(job_id)
            if not job.streamable:
                raise MatchesUnavailable(
                    f"{job_id} has no match feed: the "
                    f"{job.handle.spec.strategy!r} strategy materialises "
                    f"its result in one shot (and keeps no events a feed "
                    f"could replay) — use the status endpoint"
                )
            if job.plan is not None:
                shard_ids = list(range(job.plan.shard_count))
            else:
                # Whole-unit adaptive job admitted without a plan (fresh
                # failure-policy run): its buffers appear when it ends.
                while not job.finalized:
                    self._cond.wait(poll_seconds)
                shard_ids = sorted(job.buffers)
            if job.handle.state == "failed":
                raise MatchesUnavailable(
                    f"{job_id} failed: {job.error or 'the run raised'}"
                )
        owner = FirstShardWins()
        for shard_id in shard_ids:
            index = 0
            while True:
                with self._cond:
                    buffer = job.buffers.get(shard_id, ())
                    chunk = list(buffer[index:])
                    done = (
                        shard_id in job.buffer_done
                        or (job.finalized and not job.running)
                    )
                    if not chunk and not done:
                        self._cond.wait(poll_seconds)
                        continue
                index += len(chunk)
                for match in chunk:
                    if owner.owns(match.pair, shard_id):
                        yield match
                if done:
                    if not chunk:
                        break
                    # Drain once more in case appends raced the flag.
                    continue

    # -- dispatch --------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            task = self._next_task()
            if task is None:
                return
            job, unit = task
            if unit == _WHOLE_JOB:
                self._run_whole(job)
            else:
                self._run_shard(job, unit)

    def _next_task(self) -> Optional[Tuple[_Job, int]]:
        """Block until work exists (fair-share pick) or shutdown."""
        with self._cond:
            while True:
                if self._stopping:
                    return None
                best: Optional[_Job] = None
                for job_id in self._order:
                    job = self._jobs[job_id]
                    if not job.pending:
                        continue
                    if best is None or (
                        job.virtual_time,
                        -job.priority,
                        job.seq,
                    ) < (best.virtual_time, -best.priority, best.seq):
                        best = job
                if best is None:
                    self._cond.wait()
                    continue
                unit = best.pending.pop(0)
                best.consumed += best.costs.get(unit, 1.0)
                best.running.add(unit)
                if not best.dispatched:
                    best.dispatched = True
                    if best.mode == "shard":
                        best.handle.begin_external(best.plan)
                return best, unit

    def _run_shard(self, job: _Job, shard_id: int) -> None:
        """Execute one shard session, feeding the buffers batch by batch."""
        handle = job.handle
        spec = handle.spec
        plan = job.plan
        left_origins = plan.left_shards[shard_id].origins
        right_origins = plan.right_shards[shard_id].origins
        tag = shard_id if spec.shards > 1 else None
        outcome: Optional[ShardOutcome] = None
        try:
            left, right = plan.shard_streams(shard_id)
            bus = EventBus()
            collector = handle.progress_collector
            if collector is not None:
                collector.attach(bus)
            started = time.perf_counter()
            session = JoinSession(
                left, right, plan.attribute, spec.run_config, bus=bus
            )
            for batch in session.run_batches(
                max_batch=self._shard_batch, cancel=handle.cancel_token
            ):
                matches = [
                    StreamedMatch(
                        left_origins[event.left.ordinal],
                        right_origins[event.right.ordinal],
                        event,
                        tag,
                    )
                    for event in batch
                ]
                with self._cond:
                    job.buffers[shard_id].extend(matches)
                    self._cond.notify_all()
                if self._shard_delay:
                    time.sleep(self._shard_delay)
            result = session.result()
            if not result.never_ran:
                outcome = ShardOutcome(
                    shard_id=shard_id,
                    result=result,
                    left_origins=left_origins,
                    right_origins=right_origins,
                    wall_seconds=time.perf_counter() - started,
                )
                handle.record_shard_outcome(outcome)
                bus.publish(
                    ShardCompleted(shard_id, outcome.result, outcome.wall_seconds)
                )
                if not result.cancelled:
                    # Partial (cancelled) shards are never persisted: a
                    # restarted server re-runs them whole, which is what
                    # keeps resume bit-identical.
                    self.store.record_shard(job.job_id, outcome)
        except BaseException as error:  # noqa: BLE001 - a shard died; fail the job
            with self._cond:
                job.error = f"{type(error).__name__}: {error}"
                job.pending.clear()
                job.running.discard(shard_id)
                handle.cancel_token.set()
                close = not job.running and not job.finalized
                self._cond.notify_all()
            if close:
                self._fail(job)
            return
        finalize = False
        with self._cond:
            job.running.discard(shard_id)
            if outcome is not None and not outcome.result.cancelled:
                job.buffer_done.add(shard_id)
                job.persisted.add(shard_id)
                self._counters["shards_completed"] += 1
            if not job.pending and not job.running and not job.finalized:
                finalize = True
            self._cond.notify_all()
        if finalize:
            if job.error is not None:
                # A sibling shard raised while this one was draining.
                self._fail(job)
            else:
                self._finalize(job)
        if self._on_shard_complete is not None:
            self._on_shard_complete(job.job_id, shard_id)

    def _run_whole(self, job: _Job) -> None:
        """Execute a single-unit job (baseline / failure-managed / resume)."""
        handle = job.handle
        try:
            if job.resume:
                handle.resume()
            else:
                handle.run()
        except BaseException as error:  # noqa: BLE001 - surface via the status body
            with self._cond:
                job.error = f"{type(error).__name__}: {error}"
                job.running.discard(_WHOLE_JOB)
                self._cond.notify_all()
            self._fail(job)
            return
        # Persist the shards this run produced (a resume reuses restored
        # outcomes verbatim — those are already on disk).
        fresh = [
            outcome
            for outcome in handle.shard_outcomes
            if not outcome.result.cancelled
            and outcome.shard_id not in job.persisted
        ]
        for outcome in fresh:
            self.store.record_shard(job.job_id, outcome)
        with self._cond:
            job.running.discard(_WHOLE_JOB)
            for outcome in fresh:
                job.persisted.add(outcome.shard_id)
            if job.streamable:
                self._rebuild_buffers(job)
            self._counters["shards_completed"] += len(fresh)
            self._cond.notify_all()
        self._finalize(job)

    def _finalize(self, job: _Job) -> None:
        """Close the job out: merge (shard mode), set status, persist it."""
        handle = job.handle
        if job.mode == "shard":
            if handle.state == "pending":
                # Cancelled before the first dispatch: open and close an
                # empty external run so result()/state are consistent.
                handle.begin_external(job.plan)
            if handle.state == "running":
                handle.finish_external()
        elif handle.state == "pending":
            # Whole-unit job cancelled before dispatch: run() observes
            # the pre-set token immediately and returns the empty
            # cancelled result without executing anything.
            handle.run()
        state = handle.state
        with self._cond:
            self._close_job(job, state)
            for shard_id in list(job.buffers):
                job.buffer_done.add(shard_id)
            self._cond.notify_all()

    def _fail(self, job: _Job) -> None:
        """Close the job out as ``failed`` (its error is already recorded)."""
        handle = job.handle
        if handle.state in ("pending", "running"):
            handle.fail_external(RuntimeError(job.error or "job failed"))
        with self._cond:
            self._close_job(job, "failed")
            for shard_id in list(job.buffers):
                job.buffer_done.add(shard_id)
            self._cond.notify_all()

    def _close_job(self, job: _Job, state: str) -> None:
        """Mark terminal state + persist it (call with the lock held)."""
        if job.finalized:
            return
        job.finalized = True
        if state == "finished":
            self._counters["jobs_finished"] += 1
        elif state == "cancelled":
            self._counters["jobs_cancelled"] += 1
        elif state == "failed":
            self._counters["jobs_failed"] += 1
        if not self._stopping:
            self.store.set_status(job.job_id, state)
