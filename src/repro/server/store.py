"""Pluggable job persistence: the :class:`JobStore` contract.

The scheduler records three things per job — the canonical JSON payload
at admission, each completed (non-partial) shard outcome as it lands,
and the terminal status — and asks for all of it back at startup.  That
contract is deliberately small, so backends are trivial to add:

* :class:`MemoryJobStore` — the in-process default.  Nothing survives a
  restart (its :meth:`~MemoryJobStore.load` only ever feeds a scheduler
  sharing the same process), but it exercises the same code paths as a
  durable backend, so tests run against the real record/replay logic.
* :class:`JsonlJobStore` — an append-only JSON-lines file.  Every write
  is one appended line (``job`` / ``shard`` / ``status``), flushed
  immediately; :meth:`~JsonlJobStore.load` replays the log into per-job
  state.  Append-only means a crash mid-write loses at most the last
  line (tolerated on replay), never earlier records — the property the
  restart-resume guarantee stands on.

What restart-resume relies on, exactly:

* payloads are canonical (:func:`repro.jobs.serialization.normalize_payload`),
  so rebuilding the job rebuilds the *same* job;
* planning is deterministic, so the rebuilt job's shard plan equals the
  original and persisted shard ids line up;
* only complete shard outcomes are recorded (a shard interrupted by
  shutdown is simply absent and re-runs whole), so resumed runs merge
  bit-identically to uninterrupted ones.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.jobs.serialization import decode_shard_outcome, encode_shard_outcome
from repro.runtime.sharding import ShardOutcome

__all__ = ["JobStore", "JsonlJobStore", "MemoryJobStore", "StoredJob"]


@dataclass
class StoredJob:
    """Everything a store holds about one job (the :meth:`JobStore.load` row)."""

    job_id: str
    payload: Dict[str, object]
    #: Last recorded terminal status (``finished`` / ``cancelled`` /
    #: ``failed``) or ``None`` — the job was interrupted mid-run and a
    #: restarted server should resume it.
    status: Optional[str] = None
    #: Completed shard outcomes by original shard id.
    outcomes: Dict[int, ShardOutcome] = field(default_factory=dict)


class JobStore:
    """The persistence contract the scheduler writes through.

    Implementations must be safe to call from multiple scheduler worker
    threads; each method is one small atomic append-style operation.
    """

    def add_job(self, job_id: str, payload: Dict[str, object]) -> None:
        """Record a newly admitted job and its canonical payload."""
        raise NotImplementedError

    def record_shard(self, job_id: str, outcome: ShardOutcome) -> None:
        """Record one *complete* shard outcome (never partial ones)."""
        raise NotImplementedError

    def set_status(self, job_id: str, status: str) -> None:
        """Record a job's terminal status."""
        raise NotImplementedError

    def load(self) -> List[StoredJob]:
        """Replay the store into one row per known job, in admission order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources (idempotent)."""


class MemoryJobStore(JobStore):
    """The zero-persistence default backend (plain dicts under a lock)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: Dict[str, StoredJob] = {}

    def add_job(self, job_id: str, payload: Dict[str, object]) -> None:
        with self._lock:
            self._jobs[job_id] = StoredJob(job_id=job_id, payload=dict(payload))

    def record_shard(self, job_id: str, outcome: ShardOutcome) -> None:
        with self._lock:
            self._jobs[job_id].outcomes[outcome.shard_id] = outcome

    def set_status(self, job_id: str, status: str) -> None:
        with self._lock:
            self._jobs[job_id].status = status

    def load(self) -> List[StoredJob]:
        with self._lock:
            return list(self._jobs.values())

    def close(self) -> None:
        pass


class JsonlJobStore(JobStore):
    """Append-only JSON-lines disk backend (the restart-survivable one).

    Line types, one JSON object per line::

        {"type": "job",    "job": "job-1", "payload": {…}}
        {"type": "shard",  "job": "job-1", "shard": 0, "outcome": "<base64>"}
        {"type": "status", "job": "job-1", "status": "finished"}

    Shard outcomes ride the :mod:`repro.jobs.serialization` pickle+base64
    codec.  The file is opened in append mode and every write is flushed
    and fsync'd, so a SIGTERM'd server's completed shards are on disk
    before the process dies.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._file = open(path, "a", encoding="utf-8")

    def _append(self, record: Dict[str, object]) -> None:
        line = json.dumps(record)
        with self._lock:
            self._file.write(line + "\n")
            self._file.flush()
            os.fsync(self._file.fileno())

    def add_job(self, job_id: str, payload: Dict[str, object]) -> None:
        self._append({"type": "job", "job": job_id, "payload": payload})

    def record_shard(self, job_id: str, outcome: ShardOutcome) -> None:
        self._append(
            {
                "type": "shard",
                "job": job_id,
                "shard": outcome.shard_id,
                "outcome": encode_shard_outcome(outcome),
            }
        )

    def set_status(self, job_id: str, status: str) -> None:
        self._append({"type": "status", "job": job_id, "status": status})

    def load(self) -> List[StoredJob]:
        jobs: Dict[str, StoredJob] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        # A crash mid-append can truncate the last line;
                        # everything before it is intact — skip and go on.
                        continue
                    kind = record.get("type")
                    job_id = record.get("job")
                    if kind == "job":
                        jobs[job_id] = StoredJob(
                            job_id=job_id, payload=record["payload"]
                        )
                    elif kind == "shard" and job_id in jobs:
                        outcome = decode_shard_outcome(record["outcome"])
                        jobs[job_id].outcomes[outcome.shard_id] = outcome
                    elif kind == "status" and job_id in jobs:
                        jobs[job_id].status = record["status"]
        except FileNotFoundError:
            return []
        return list(jobs.values())

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()
