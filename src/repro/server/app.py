"""The HTTP face of linkage-as-a-service (stdlib only, zero deps).

A thin translation layer: every route parses bytes, calls one
:class:`~repro.server.scheduler.JobScheduler` method and serialises the
answer through :mod:`repro.server.wire` — no linkage logic lives here.

====================  ======================================================
Route                 Meaning
====================  ======================================================
``POST /jobs``        Submit a JSON job payload → 201 + status body
                      (400 invalid payload, 429 queue full)
``GET /jobs``         List every known job's status body
``GET /jobs/{id}``    One job's status body (404 unknown)
``GET /jobs/{id}/matches``  The job's NDJSON match feed, chunked as
                      matches are found — byte-identical to
                      ``repro link --stream`` (409 if the job has no feed)
``DELETE /jobs/{id}`` Cancel → 202 + status body
``GET /healthz``      Liveness probe
``GET /metrics``      Plain-text counters, one ``name value`` per line
====================  ======================================================

Built on :class:`http.server.ThreadingHTTPServer`: one thread per
connection, which is exactly right here because the expensive work runs
on the scheduler's workers — request threads only parse, enqueue and
stream buffers.  ``/matches`` responses use HTTP/1.1 chunked transfer
encoding written by hand (one chunk per engine batch), so clients see
matches long before the job finishes without the server ever buffering
the whole feed.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.jobs.serialization import PayloadError
from repro.server.scheduler import (
    JobScheduler,
    MatchesUnavailable,
    QueueFull,
    UnknownJob,
)
from repro.server.wire import error_body, match_line, render_metrics

__all__ = ["LinkageRequestHandler", "LinkageServer"]

#: Largest accepted request body (a submitted job spec), in bytes.
MAX_BODY_BYTES = 32 * 1024 * 1024


class LinkageRequestHandler(BaseHTTPRequestHandler):
    """Route HTTP requests to the server's scheduler (see module docstring)."""

    #: Chunked transfer encoding requires 1.1 (and keeps keep-alive).
    protocol_version = "HTTP/1.1"
    server_version = "repro-linkage"

    # The scheduler rides on the server object (set by LinkageServer).
    @property
    def scheduler(self) -> JobScheduler:
        return self.server.scheduler  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- response plumbing -----------------------------------------------------------

    def _send_json(self, status: int, body: object) -> None:
        data = (json.dumps(body) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_text(self, status: int, text: str) -> None:
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, error_body(message))

    def _read_body(self) -> Optional[bytes]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._send_error_json(400, "a JSON request body is required")
            return None
        if length > MAX_BODY_BYTES:
            self._send_error_json(
                413, f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
            return None
        return self.rfile.read(length)

    def _route(self) -> Tuple[str, ...]:
        path = self.path.split("?", 1)[0]
        return tuple(part for part in path.split("/") if part)

    # -- verbs -----------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server's naming
        parts = self._route()
        try:
            if parts == ("healthz",):
                self._send_json(200, {"status": "ok"})
            elif parts == ("metrics",):
                self._send_text(200, render_metrics(self.scheduler.counters()))
            elif parts == ("jobs",):
                bodies = [
                    self.scheduler.describe(job_id)
                    for job_id in self.scheduler.job_ids()
                ]
                self._send_json(200, {"jobs": bodies})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._send_json(200, self.scheduler.describe(parts[1]))
            elif len(parts) == 3 and parts[:1] == ("jobs",) and parts[2] == "matches":
                self._stream_matches(parts[1])
            else:
                self._send_error_json(404, f"no such route: GET {self.path}")
        except UnknownJob:
            self._send_error_json(404, f"no such job: {parts[1]}")
        except MatchesUnavailable as error:
            self._send_error_json(409, str(error))

    def do_POST(self) -> None:  # noqa: N802
        if self._route() != ("jobs",):
            self._send_error_json(404, f"no such route: POST {self.path}")
            return
        body = self._read_body()
        if body is None:
            return
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            self._send_error_json(400, f"invalid JSON body: {error}")
            return
        try:
            job_id = self.scheduler.submit(payload)
        except PayloadError as error:
            self._send_error_json(400, str(error))
            return
        except QueueFull as error:
            self._send_error_json(429, str(error))
            return
        self._send_json(201, self.scheduler.describe(job_id))

    def do_DELETE(self) -> None:  # noqa: N802
        parts = self._route()
        if len(parts) != 2 or parts[0] != "jobs":
            self._send_error_json(404, f"no such route: DELETE {self.path}")
            return
        try:
            self.scheduler.cancel(parts[1])
        except UnknownJob:
            self._send_error_json(404, f"no such job: {parts[1]}")
            return
        self._send_json(202, self.scheduler.describe(parts[1]))

    # -- the streaming endpoint ------------------------------------------------------

    def _stream_matches(self, job_id: str) -> None:
        """Chunk the job's NDJSON feed out as the scheduler produces it."""
        stream = self.scheduler.stream_matches(job_id)
        # Pull the first match *before* committing the 200: the
        # generator validates lazily, so an unknown or unstreamable job
        # raises here and still gets its clean JSON error status.
        first = next(stream, None)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            if first is not None:
                self._write_chunk(match_line(first))
            for match in stream:
                self._write_chunk(match_line(match))
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-stream; the job keeps running (a
            # feed is an observer, not the run itself).
            stream.close()

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()


class LinkageServer:
    """The embeddable server: a scheduler wired to a threading HTTP server.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`) —
    what the tests and the CI smoke use.  :meth:`serve_forever` blocks;
    :meth:`start` runs it on a daemon thread instead; :meth:`shutdown`
    stops the HTTP loop first (no new work can arrive), then the
    scheduler (running jobs observe their cancel tokens), then the store.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        scheduler: Optional[JobScheduler] = None,
        verbose: bool = False,
        **scheduler_options: object,
    ) -> None:
        self.scheduler = (
            scheduler if scheduler is not None else JobScheduler(**scheduler_options)
        )
        self._httpd = ThreadingHTTPServer((host, port), LinkageRequestHandler)
        self._httpd.daemon_threads = True
        self._httpd.scheduler = self.scheduler  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (the resolved one when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (blocks the calling thread)."""
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "LinkageServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="linkage-http", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop accepting requests, then stop the scheduler and store."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.scheduler.shutdown(timeout=10.0)
