"""JSON job specs and persistence codecs for the jobs layer.

The HTTP server (:mod:`repro.server`) receives job descriptions as JSON
and persists shard outcomes across process restarts; both halves live
here, next to the builder they feed, so the payload schema and the
:class:`~repro.jobs.builder.LinkageJob` surface cannot drift apart:

* :func:`normalize_payload` — validate a raw JSON mapping and return the
  canonical payload (defaults filled in, unknown keys rejected).  The
  canonical form is what a job store persists, so a restarted server
  rebuilds *exactly* the job that was submitted.
* :func:`build_job` — compile a canonical payload into a runnable
  :class:`~repro.jobs.handle.JobHandle` through the fluent builder (every
  builder validation applies; nothing is re-implemented here).
* :func:`encode_shard_outcome` / :func:`decode_shard_outcome` — the
  pickle+base64 codec for persisted :class:`~repro.runtime.sharding.ShardOutcome`
  records (shard results already cross the process-backend boundary by
  pickle, so the representation is proven; base64 keeps it line-oriented
  for the append-only JSONL store).

Payload schema (all keys optional unless noted)::

    {
      "left_csv": "parent.csv",          # or "left": inline table (below)
      "right_csv": "child.csv",          # or "right": inline table
      "attribute": "location",           # REQUIRED; or {"left":…, "right":…}
      "strategy": "adaptive",
      "threshold": 0.85,
      "thresholds": {"theta_sim": …, "window_size": …, "delta_adapt": …,
                     "theta_out": …, "theta_curpert": …, "theta_pastpert": …},
      "policy": {"name": "mar", "budget": null, "seconds": null},
      "shards": 1, "backend": "serial", "partitioner": "hash",
      "handoff": "auto", "max_workers": null,
      "on_failure": {"policy": "fail-fast", "retries": null,
                     "shard_timeout": null},
      "progress": true,                  # adaptive only (builder-enforced)
      "priority": 1                      # fair-share weight (server-level)
    }

Inline tables are ``{"columns": ["name", …], "rows": [[…], …]}`` — the
shape a client builds from memory without touching the server's disk.
``priority`` is consumed by the server's scheduler, not the builder: a
higher weight receives a proportionally larger share of the worker
budget under contention.
"""

from __future__ import annotations

import base64
import pickle
from typing import Any, Dict, Mapping

from repro.core.thresholds import Thresholds
from repro.engine.table import Table
from repro.engine.tuples import Schema
from repro.jobs.builder import STRATEGIES, LinkageJob
from repro.jobs.handle import JobHandle
from repro.runtime.sharding import ShardOutcome

__all__ = [
    "PayloadError",
    "normalize_payload",
    "build_job",
    "encode_shard_outcome",
    "decode_shard_outcome",
]


class PayloadError(ValueError):
    """A job payload that cannot be turned into a runnable job.

    Raised with a message suitable for returning verbatim in an HTTP 400
    body; builder-level validation errors (unknown strategy, bad
    threshold, …) are re-raised as this type too, so the server has one
    exception to map.
    """


#: Every key a payload may carry, with its default.  ``None`` defaults
#: mean "builder decides"; the normalizer fills the rest so persisted
#: payloads are self-contained.
_PAYLOAD_DEFAULTS: Dict[str, Any] = {
    "left_csv": None,
    "right_csv": None,
    "left": None,
    "right": None,
    "attribute": None,
    "strategy": "adaptive",
    "threshold": 0.85,
    "thresholds": None,
    "policy": None,
    "shards": 1,
    "backend": "serial",
    "partitioner": "hash",
    "handoff": "auto",
    "max_workers": None,
    "on_failure": None,
    "progress": None,
    "priority": 1,
}

_THRESHOLD_KEYS = (
    "theta_sim",
    "window_size",
    "delta_adapt",
    "theta_out",
    "theta_curpert",
    "theta_pastpert",
)

_POLICY_KEYS = ("name", "budget", "seconds")

_ON_FAILURE_KEYS = (
    "policy",
    "retries",
    "backoff_seconds",
    "backoff_multiplier",
    "shard_timeout",
)


def _require_mapping(value: Any, what: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise PayloadError(f"{what} must be a JSON object, got {value!r}")
    return value


def _check_keys(mapping: Mapping, allowed: tuple, what: str) -> None:
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise PayloadError(
            f"unknown {what} key(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(allowed)}"
        )


def _normalize_side(payload: Mapping, side: str) -> Dict[str, Any]:
    """One input side: exactly one of ``<side>_csv`` or inline ``<side>``."""
    csv_path = payload.get(f"{side}_csv")
    inline = payload.get(side)
    if (csv_path is None) == (inline is None):
        raise PayloadError(
            f"exactly one of '{side}_csv' (a server-side CSV path) or "
            f"'{side}' (an inline table) is required"
        )
    if csv_path is not None:
        if not isinstance(csv_path, str) or not csv_path:
            raise PayloadError(
                f"'{side}_csv' must be a non-empty path string, got {csv_path!r}"
            )
        return {f"{side}_csv": csv_path, side: None}
    table = _require_mapping(inline, f"'{side}'")
    _check_keys(table, ("columns", "rows"), f"'{side}' inline-table")
    columns = table.get("columns")
    rows = table.get("rows")
    if not isinstance(columns, (list, tuple)) or not columns or not all(
        isinstance(column, str) and column for column in columns
    ):
        raise PayloadError(
            f"'{side}.columns' must be a non-empty list of attribute names"
        )
    if not isinstance(rows, (list, tuple)):
        raise PayloadError(f"'{side}.rows' must be a list of rows")
    width = len(columns)
    for index, row in enumerate(rows):
        if not isinstance(row, (list, tuple)) or len(row) != width:
            raise PayloadError(
                f"'{side}.rows[{index}]' must be a list of {width} values "
                f"(one per column)"
            )
    return {
        f"{side}_csv": None,
        side: {"columns": list(columns), "rows": [list(row) for row in rows]},
    }


def normalize_payload(payload: Mapping) -> Dict[str, Any]:
    """Validate a raw JSON job payload and return its canonical form.

    Shape-level validation only (types, key sets, input-side exclusivity,
    the priority range); the *semantic* validation — strategy, policy,
    backend and partitioner names, threshold ranges, adaptive-only
    combinations — is the builder's, applied by :func:`build_job`.  The
    returned mapping is JSON-serialisable and self-contained: persist it,
    reload it, :func:`build_job` it, and the same job comes back.
    """
    payload = _require_mapping(payload, "the job payload")
    _check_keys(payload, tuple(_PAYLOAD_DEFAULTS), "payload")
    canonical = dict(_PAYLOAD_DEFAULTS)
    canonical.update(_normalize_side(payload, "left"))
    canonical.update(_normalize_side(payload, "right"))

    attribute = payload.get("attribute")
    if isinstance(attribute, Mapping):
        _check_keys(attribute, ("left", "right"), "'attribute'")
        left_name = attribute.get("left")
        right_name = attribute.get("right")
        if not (isinstance(left_name, str) and left_name):
            raise PayloadError("'attribute.left' must be a non-empty name")
        if not (isinstance(right_name, str) and right_name):
            raise PayloadError("'attribute.right' must be a non-empty name")
        canonical["attribute"] = {"left": left_name, "right": right_name}
    elif isinstance(attribute, str) and attribute:
        canonical["attribute"] = attribute
    else:
        raise PayloadError(
            "'attribute' is required: a join-attribute name or "
            "{'left': …, 'right': …}"
        )

    strategy = payload.get("strategy", "adaptive")
    if strategy not in STRATEGIES:
        raise PayloadError(
            f"unknown strategy {strategy!r}; available: {STRATEGIES}"
        )
    canonical["strategy"] = strategy

    for key, kind in (
        ("threshold", (int, float)),
        ("shards", int),
        ("max_workers", int),
        ("priority", int),
    ):
        if key in payload and payload[key] is not None:
            value = payload[key]
            if not isinstance(value, kind) or isinstance(value, bool):
                raise PayloadError(f"'{key}' must be a number, got {value!r}")
            canonical[key] = value
    if canonical["priority"] < 1:
        raise PayloadError(
            f"'priority' must be a positive integer (the fair-share "
            f"weight), got {canonical['priority']}"
        )

    for key in ("backend", "partitioner", "handoff"):
        if key in payload and payload[key] is not None:
            value = payload[key]
            if not isinstance(value, str):
                raise PayloadError(f"'{key}' must be a string, got {value!r}")
            canonical[key] = value

    if payload.get("thresholds") is not None:
        thresholds = _require_mapping(payload["thresholds"], "'thresholds'")
        _check_keys(thresholds, _THRESHOLD_KEYS, "'thresholds'")
        canonical["thresholds"] = dict(thresholds)

    if payload.get("policy") is not None:
        policy = payload["policy"]
        if isinstance(policy, str):
            policy = {"name": policy}
        policy = _require_mapping(policy, "'policy'")
        _check_keys(policy, _POLICY_KEYS, "'policy'")
        if not (isinstance(policy.get("name"), str) and policy.get("name")):
            raise PayloadError("'policy.name' must be a policy name")
        canonical["policy"] = {key: policy.get(key) for key in _POLICY_KEYS}

    if payload.get("on_failure") is not None:
        on_failure = payload["on_failure"]
        if isinstance(on_failure, str):
            on_failure = {"policy": on_failure}
        on_failure = _require_mapping(on_failure, "'on_failure'")
        _check_keys(on_failure, _ON_FAILURE_KEYS, "'on_failure'")
        if not (
            isinstance(on_failure.get("policy"), str) and on_failure.get("policy")
        ):
            raise PayloadError("'on_failure.policy' must be a policy name")
        canonical["on_failure"] = {
            key: on_failure.get(key) for key in _ON_FAILURE_KEYS
        }

    progress = payload.get("progress")
    if progress is None:
        # The status endpoint reads the progress feed, so it defaults on
        # wherever the builder allows it (adaptive only).
        progress = strategy == "adaptive"
    if not isinstance(progress, bool):
        raise PayloadError(f"'progress' must be a boolean, got {progress!r}")
    canonical["progress"] = progress
    return canonical


def _load_side(canonical: Mapping, side: str) -> Table:
    csv_path = canonical.get(f"{side}_csv")
    if csv_path is not None:
        try:
            return Table.from_csv(csv_path, name=side)
        except OSError as error:
            raise PayloadError(
                f"cannot read '{side}_csv' ({csv_path}): {error}"
            ) from error
    inline = canonical[side]
    try:
        return Table.from_rows(
            Schema(inline["columns"], name=side), inline["rows"], name=side
        )
    except (TypeError, ValueError) as error:
        raise PayloadError(f"invalid inline table '{side}': {error}") from error


def build_job(payload: Mapping) -> JobHandle:
    """Compile a job payload into a runnable :class:`JobHandle`.

    Accepts a raw payload (normalised here) or an already-canonical one —
    normalisation is idempotent.  Every error, the builder's included,
    surfaces as :class:`PayloadError`.
    """
    canonical = normalize_payload(payload)
    left = _load_side(canonical, "left")
    right = _load_side(canonical, "right")
    job = LinkageJob.between(left, right)
    try:
        attribute = canonical["attribute"]
        if isinstance(attribute, dict):
            job.on(attribute["left"], attribute["right"])
        else:
            job.on(attribute)
        job.strategy(canonical["strategy"])
        job.threshold(canonical["threshold"])
        if canonical["thresholds"] is not None:
            job.thresholds(Thresholds(**canonical["thresholds"]))
        if canonical["policy"] is not None:
            job.policy(
                canonical["policy"]["name"],
                budget=canonical["policy"]["budget"],
                seconds=canonical["policy"]["seconds"],
            )
        if (
            canonical["shards"] != 1
            or canonical["backend"] != "serial"
            or canonical["partitioner"] != "hash"
            or canonical["handoff"] != "auto"
            or canonical["max_workers"] is not None
        ):
            job.sharded(
                canonical["shards"],
                backend=canonical["backend"],
                partitioner=canonical["partitioner"],
                max_workers=canonical["max_workers"],
                handoff=canonical["handoff"],
            )
        if canonical["on_failure"] is not None:
            on_failure = canonical["on_failure"]
            job.on_failure(
                on_failure["policy"],
                retries=on_failure["retries"],
                backoff_seconds=on_failure["backoff_seconds"],
                backoff_multiplier=on_failure["backoff_multiplier"],
                shard_timeout=on_failure["shard_timeout"],
            )
        if canonical["progress"]:
            job.with_progress()
        return job.build()
    except PayloadError:
        raise
    except (TypeError, ValueError) as error:
        raise PayloadError(str(error)) from error


def encode_shard_outcome(outcome: ShardOutcome) -> str:
    """One ASCII line for a shard outcome (pickle + base64).

    The pickle representation is the same one shard results already use
    to cross the process-backend boundary (guarded by the RL005 pickle
    audit); base64 makes it safe inside a JSON string on one line.
    """
    return base64.b64encode(
        pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_shard_outcome(encoded: str) -> ShardOutcome:
    """Inverse of :func:`encode_shard_outcome`."""
    outcome = pickle.loads(base64.b64decode(encoded.encode("ascii")))
    if not isinstance(outcome, ShardOutcome):
        raise PayloadError(
            f"decoded object is not a ShardOutcome: {type(outcome).__name__}"
        )
    return outcome
