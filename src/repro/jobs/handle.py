"""Job execution: the handle a built :class:`LinkageJob` returns.

A :class:`JobHandle` is one-shot and job-shaped: submit
(:meth:`~JobHandle.run`, :meth:`~JobHandle.stream_matches` or
:meth:`~JobHandle.stream_matches_async`), observe
(:meth:`~JobHandle.progress`), interrupt (:meth:`~JobHandle.cancel`) and
collect (:meth:`~JobHandle.result`).  The blocking :meth:`run` executes
on the configured backend (``serial`` / ``thread`` / ``process`` /
``async``); the streaming surfaces drive the deterministic serial-merge
path incrementally so matches surface as they are found instead of after
the run — exactly the interruptible behaviour the adaptive (MAR) loop
was built for and the old materialise-everything ``link_tables`` call
hid.

Matches are streamed as :class:`StreamedMatch` items: the global
``(left_index, right_index)`` pair identity (already translated from
shard-local ordinals in sharded runs, cross-shard duplicates removed
first-shard-wins) plus the underlying
:class:`~repro.joins.base.MatchEvent` with its similarity, mode and step.

The baseline strategies (exact / approximate / blocking) run their
dedicated operators — the code that used to live inline in
``link_tables`` — and only support the blocking :meth:`run`.
"""

from __future__ import annotations

import asyncio
import threading
import time
import warnings
from dataclasses import dataclass, replace
from typing import AsyncIterator, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.engine.table import Table
from repro.engine.tuples import Record
from repro.joins.base import JoinAttribute, MatchEvent
from repro.joins.baselines import BlockingLinkageJoin
from repro.joins.shjoin import SHJoin
from repro.joins.sshjoin import SSHJoin
from repro.jobs.builder import JobSpec
from repro.jobs.result import LinkageResult
from repro.runtime.collectors import ProgressCollector, ProgressSnapshot
from repro.runtime.config import input_size
from repro.runtime.events import EventBus, ShardCompleted
from repro.runtime.faults import FaultPlan
from repro.runtime.parallel import AggregatedEventBus, ParallelExecutor
from repro.runtime.session import AdaptiveJoinResult, JoinSession
from repro.runtime.sharding import (
    FirstShardWins,
    ShardedJoinResult,
    ShardOutcome,
    ShardPlan,
    partitioner_replicates,
)

#: Default engine steps per streamed batch: small enough that matches and
#: cancellation surface promptly, large enough to amortise the generator
#: round-trip over the fast-path probe loop.
DEFAULT_STREAM_BATCH = 256


@dataclass(frozen=True, slots=True)
class StreamedMatch:
    """One match, as yielded by the streaming surfaces.

    ``left_index`` / ``right_index`` are *global* input positions
    (shard-local ordinals are translated through the plan's origin maps),
    so streamed identities agree with ``LinkageResult.pairs`` and with
    unsharded runs.  ``event`` carries the full match detail.
    """

    left_index: int
    right_index: int
    event: MatchEvent
    #: Shard that discovered the match (``None`` in unsharded runs).
    shard_id: Optional[int] = None

    @property
    def pair(self) -> Tuple[int, int]:
        """The global ``(left index, right index)`` identity."""
        return (self.left_index, self.right_index)

    def to_json(self) -> Dict[str, object]:
        """The match as the NDJSON wire mapping (one stable format).

        Exactly the object the CLI ``--stream`` path has always printed —
        key order included, so ``json.dumps`` output is byte-identical —
        and the one the HTTP server's match feed emits.  ``shard`` only
        appears on matches from sharded runs (``shard_id is not None``).
        """
        payload: Dict[str, object] = {
            "left_index": self.left_index,
            "right_index": self.right_index,
            "similarity": round(self.event.similarity, 4),
            "mode": self.event.mode.value,
            "step": self.event.step,
        }
        if self.shard_id is not None:
            payload["shard"] = self.shard_id
        return payload


class JobHandle:
    """One submitted linkage job (see the module docstring).

    States: ``pending`` → ``running`` → ``finished`` | ``cancelled`` |
    ``failed`` (the run raised; the exception propagated to the caller).
    Exactly one of the run/stream surfaces may be started, once;
    :meth:`result` returns the (possibly partial) outcome afterwards.
    :meth:`resume` is the one exception to one-shot-ness: after a
    cancelled, failed or degraded run it re-runs only the shards the
    previous run did not complete and merges them with the shards it
    did, producing the same result a failure-free run would have.
    :meth:`cancel` may be called from any thread at any time — before the
    run starts (nothing will execute) or mid-run (the run stops at the
    next engine-batch or shard boundary and the partial result is kept,
    flagged ``cancelled``).  Closing a match stream early cancels the job
    the same way.
    """

    def __init__(self, spec: JobSpec) -> None:
        self.spec = spec
        self._cancel = threading.Event()
        self._state = "pending"
        self._result: Optional[LinkageResult] = None
        #: The shard plan of the last sharded run (kept for resume: its
        #: ShardInput buffers are materialised, hence replayable).
        self._plan: Optional[ShardPlan] = None
        #: The last sharded merge (kept so resume knows which shards
        #: completed and can reuse their outcomes verbatim).
        self._sharded: Optional[ShardedJoinResult] = None
        #: Open externally-driven run's outcomes (see begin_external).
        self._external_outcomes: Optional[List[ShardOutcome]] = None
        self._progress: Optional[ProgressCollector] = None
        if spec.progress_enabled:
            left_size = input_size(spec.left)
            right_size = input_size(spec.right)
            # Under a replicating partitioner (gram) the true step count
            # is the replicated record volume, unknown before the plan is
            # built: leave the total unset so `fraction` falls back to
            # shards-done rather than reporting 100% mid-run.
            replicated = spec.shards > 1 and partitioner_replicates(
                spec.partitioner
            )
            self._progress = ProgressCollector(
                total_steps=(
                    left_size + right_size
                    if left_size is not None
                    and right_size is not None
                    and not replicated
                    else None
                ),
                total_shards=spec.shards if spec.shards > 1 else None,
            )

    # -- introspection ---------------------------------------------------------------

    @property
    def state(self) -> str:
        """``pending`` / ``running`` / ``finished`` / ``cancelled`` / ``failed``."""
        return self._state

    @property
    def finished(self) -> bool:
        """Whether the job ran to natural completion."""
        return self._state == "finished"

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._cancel.is_set()

    def progress(self) -> ProgressSnapshot:
        """Live progress (steps, matches, shards done, elapsed).

        Requires the job to have been built ``.with_progress()`` — the
        per-step feed is opt-in so pure-throughput runs never pay for it.
        """
        if self._progress is None:
            raise RuntimeError(
                "progress tracking is off for this job: build it with "
                "LinkageJob...with_progress().build() to enable the feed"
            )
        return self._progress.snapshot()

    def cancel(self) -> None:
        """Request a mid-run stop (idempotent, callable from any thread).

        The run stops at the next quiescent boundary — between engine
        batches on the serial/async paths and streaming surfaces, between
        shards everywhere — and :meth:`result` returns the partial
        outcome with ``cancelled=True``.
        """
        self._cancel.set()

    def result(self) -> LinkageResult:
        """The job's outcome (partial when cancelled).

        Only available once a run/stream surface has completed; polling
        it on a pending or still-running job is an error.
        """
        if self._result is None:
            if self._state == "failed":
                raise RuntimeError(
                    "job failed: the run raised (the exception propagated "
                    "to the caller) and no result is available — handles "
                    "are one-shot, build the job again to retry"
                )
            raise RuntimeError(
                f"job is {self._state}: run it (run() / stream_matches()) "
                "to completion or cancellation before asking for result()"
            )
        return self._result

    # -- execution: blocking ---------------------------------------------------------

    def run(self) -> LinkageResult:
        """Execute the job to completion (or cancellation) and return.

        Adaptive jobs run through :class:`JoinSession` — sharded ones on
        the configured :class:`~repro.runtime.parallel.ParallelExecutor`
        backend — with the handle's cancel token threaded into every
        loop; baseline strategies run their dedicated operators.
        """
        self._start()
        spec = self.spec
        try:
            if spec.strategy != "adaptive":
                outcome = self._run_baseline()
            elif (
                spec.shards > 1
                or spec.failure_policy is not None
                or spec.fault_plan is not None
            ):
                # Failure policies and fault plans live in the sharded
                # execution layer; a nominally unsharded job that uses
                # them runs as a one-shard plan (same result, identical
                # merge semantics) so retry/timeout/degrade apply.
                outcome = self._run_sharded()
            else:
                outcome = self._run_session()
        except BaseException:
            self._state = "failed"
            raise
        return self._finish(outcome)

    def _run_session(self) -> LinkageResult:
        spec = self.spec
        bus = EventBus()
        if self._progress is not None:
            self._progress.attach(bus)
        session = JoinSession(
            spec.left, spec.right, spec.attribute, spec.run_config, bus=bus
        )
        outcome = session.run(cancel=self._cancel)
        return self._session_result(session, outcome)

    def _session_result(
        self, session: JoinSession, outcome: AdaptiveJoinResult, streamed: bool = False
    ) -> LinkageResult:
        """The one place an unsharded session outcome becomes a result.

        Shared by the blocking and streaming paths so their statistics
        can never drift apart (the streamed ≡ blocking contract).
        """
        statistics = {
            "trace": outcome.trace.summary(),
            "final_state": outcome.final_state.label,
            "result_size": outcome.result_size,
            "policy": session.policy.name,
            "budget_exhausted": session.budget_exhausted,
        }
        if streamed:
            statistics["streamed"] = True
        return LinkageResult.lazy(
            strategy=self.spec.strategy,
            pairs=outcome.matched_pairs(),
            records_factory=outcome.output_records,
            statistics=statistics,
            cancelled=outcome.cancelled,
        )

    def _run_sharded(self) -> LinkageResult:
        spec = self.spec
        plan = ShardPlan.build(
            spec.left,
            spec.right,
            spec.attribute,
            spec.shards,
            spec.partitioner,
            config=spec.run_config,
            handoff=spec.handoff,
        )
        self._plan = plan
        sharded = self._execute_plan(plan, spec.fault_plan)
        self._sharded = sharded
        return self._sharded_result(sharded)

    def _make_bus(self) -> Optional[AggregatedEventBus]:
        if self._progress is None:
            return None
        bus = AggregatedEventBus()
        self._progress.attach(bus)
        return bus

    def _execute_plan(
        self, plan: ShardPlan, faults: Optional[FaultPlan]
    ) -> ShardedJoinResult:
        spec = self.spec
        executor = ParallelExecutor(
            backend=spec.backend,
            max_workers=spec.max_workers,
            failure_policy=spec.failure_policy,
            faults=faults,
        )
        return executor.run(
            plan, spec.run_config, bus=self._make_bus(), cancel=self._cancel
        )

    def _sharded_result(self, sharded: ShardedJoinResult) -> LinkageResult:
        spec = self.spec
        if not sharded.shards:
            # Cancelled before any shard ran: an empty partial result.
            return LinkageResult.eager(
                spec.strategy,
                [],
                [],
                statistics=self._sharded_statistics(sharded),
                cancelled=True,
            )
        return LinkageResult.lazy(
            strategy=spec.strategy,
            pairs=sharded.matched_pairs(),
            records_factory=sharded.output_records,
            statistics=self._sharded_statistics(sharded),
            cancelled=sharded.cancelled,
        )

    def _sharded_statistics(self, sharded: ShardedJoinResult) -> Dict[str, object]:
        # The mapping itself is the shared wire format, owned by the
        # result type (the server returns it verbatim); only the policy
        # name comes from the spec, which the merged result never sees.
        return sharded.describe_json(policy=self.spec.run_config.policy)

    # -- execution: resume -----------------------------------------------------------

    def resume(self, faults: Optional[FaultPlan] = None) -> LinkageResult:
        """Re-run only what the previous run left unfinished and merge.

        Callable after a run ended in any way — ``finished`` (a no-op
        unless the run was degraded), ``cancelled`` or ``failed``.  For
        runs that went through the sharded layer the plan's materialised
        shard buffers are replayed: shards that completed are reused
        verbatim, shards that were cancelled mid-run, dropped by a
        degrade policy, aborted by fail-fast or never started are re-run
        on the configured backend, and the merged result is bit-identical
        to a failure-free run.  The spec's fault plan is *not* replayed
        (resuming into the same injected crash would be pointless); pass
        ``faults`` to inject a fresh plan into the resumed attempt —
        its shard ids refer to the *original* plan's numbering, and
        specs aimed at shards that are not being re-run are ignored.

        Unsharded runs (no shards, no failure policy) have no shard
        buffers; they can only be resumed over :class:`Table` inputs,
        which are replayable, and re-run from the start.
        """
        if self.spec.strategy != "adaptive":
            raise ValueError(
                "resume() requires the adaptive strategy; the baselines "
                f"materialise in one shot — this job runs "
                f"{self.spec.strategy!r}, build it again instead"
            )
        if self._state not in ("finished", "cancelled", "failed"):
            raise RuntimeError(
                f"cannot resume a {self._state} job: resume picks up "
                "after a finished, cancelled or failed run"
            )
        if self._plan is not None:
            return self._resume_sharded(faults)
        return self._resume_unsharded(faults)

    def _resume_sharded(self, faults: Optional[FaultPlan]) -> LinkageResult:
        plan = self._plan
        previous = self._sharded.shards if self._sharded is not None else ()
        # A shard outcome flagged cancelled is partial — re-run it whole;
        # shards dropped by degrade or aborted by fail-fast simply have
        # no outcome.  Everything else is complete and reused verbatim.
        complete = tuple(o for o in previous if not o.result.cancelled)
        done = {outcome.shard_id for outcome in complete}
        missing = [s for s in range(plan.shard_count) if s not in done]
        if not missing:
            return self._result
        if faults is not None:
            # The caller thinks in original shard ids; the subset plan
            # renumbers its shards 0..m-1.  Remap (and drop specs for
            # shards that are not being re-run).
            position = {original: i for i, original in enumerate(missing)}
            faults = FaultPlan(
                tuple(
                    replace(spec, shard_id=position[spec.shard_id])
                    for spec in faults.faults
                    if spec.shard_id in position
                )
            )
        self._restart()
        try:
            sub_result = self._execute_plan(plan.subset(missing), faults)
        except BaseException:
            self._state = "failed"
            raise
        # The subset plan renumbers its shards 0..m-1; map outcomes and
        # failure records back to the original shard ids before merging.
        outcomes = complete + tuple(
            replace(outcome, shard_id=missing[outcome.shard_id])
            for outcome in sub_result.shards
        )
        failed = tuple(
            replace(failure, shard_id=missing[failure.shard_id])
            for failure in sub_result.failed_shards
        )
        sharded = ShardedJoinResult(
            shards=outcomes,
            backend=self.spec.backend,
            partitioner=self.spec.partitioner,
            left_input_size=plan.left_input_size,
            right_input_size=plan.right_input_size,
            cancelled=sub_result.cancelled,
            failed_shards=failed,
            handoff=plan.handoff,
        )
        self._sharded = sharded
        result = self._sharded_result(sharded)
        result.statistics["resumed"] = True
        return self._finish(result)

    def _resume_unsharded(self, faults: Optional[FaultPlan]) -> LinkageResult:
        spec = self.spec
        if faults is not None:
            raise ValueError(
                "fault injection rides the sharded execution layer; an "
                "unsharded resume cannot take a FaultPlan"
            )
        if self._state == "finished":
            return self._result
        if not isinstance(spec.left, Table) or not isinstance(spec.right, Table):
            raise RuntimeError(
                "cannot resume an unsharded run over record streams: the "
                "previous attempt consumed them — use Table inputs "
                "(replayable) or sharded execution, whose plan keeps "
                "replayable shard buffers"
            )
        self._restart()
        try:
            result = self._run_session()
        except BaseException:
            self._state = "failed"
            raise
        result.statistics["resumed"] = True
        return self._finish(result)

    def _restart(self) -> None:
        """Re-arm the handle for a resume: fresh cancel token, running state."""
        self._cancel = threading.Event()
        self._result = None
        self._state = "running"
        if self._progress is not None:
            self._progress.restart_clock()

    # -- execution: external drivers (the server's scheduler) ------------------------
    #
    # The HTTP server's scheduler interleaves the shards of *many* jobs
    # on one shared worker budget, so it cannot hand a whole job to
    # run()/stream_matches() — it drives shard sessions itself and
    # funnels lifecycle, progress and results back through the handle so
    # state/progress()/result() behave exactly as for in-handle runs.

    @property
    def progress_collector(self) -> Optional[ProgressCollector]:
        """The handle's progress collector (``None`` unless ``with_progress``).

        External drivers attach it to the buses of the shard sessions
        they run, the way the in-handle paths do.
        """
        return self._progress

    @property
    def cancel_token(self) -> threading.Event:
        """The cancel token (thread it into externally-run shard loops)."""
        return self._cancel

    @property
    def shard_outcomes(self) -> Tuple[ShardOutcome, ...]:
        """Per-shard outcomes of the last sharded run (empty before one).

        What a job store persists and a match feed can be rebuilt from:
        each outcome carries its shard's full match events plus the
        origin maps that globalise them.
        """
        return self._sharded.shards if self._sharded is not None else ()

    def begin_external(self, plan: ShardPlan) -> None:
        """Claim the one-shot slot for an out-of-handle shard driver.

        ``plan`` must be built from this handle's spec (the driver builds
        it to schedule against; the handle keeps it for resume).  The
        driver then runs shard sessions in any interleaving it likes,
        records each completed shard with :meth:`record_shard_outcome`,
        and closes the run with :meth:`finish_external`.
        """
        self._start()
        self._plan = plan
        self._external_outcomes = []

    def record_shard_outcome(self, outcome: ShardOutcome) -> None:
        """Record one externally-executed shard's complete outcome."""
        if self._external_outcomes is None:
            raise RuntimeError(
                "no external run is open: call begin_external(plan) first"
            )
        self._external_outcomes.append(outcome)

    def finish_external(self) -> LinkageResult:
        """Merge the recorded outcomes and close the externally-driven run.

        Same merge semantics as the streaming path (shard-id-order dedup,
        ``backend="serial"`` — the external driver ran sessions one batch
        at a time, whatever thread they were on); honours the cancel
        token, so a cancelled job closes as a partial result.
        """
        plan = self._plan
        outcomes = self._external_outcomes
        if plan is None or outcomes is None:
            raise RuntimeError(
                "no external run is open: call begin_external(plan) first"
            )
        self._external_outcomes = None
        sharded = ShardedJoinResult(
            shards=tuple(outcomes),
            backend="serial",
            partitioner=self.spec.partitioner,
            left_input_size=plan.left_input_size,
            right_input_size=plan.right_input_size,
            cancelled=self._cancel.is_set(),
            handoff=plan.handoff,
        )
        self._sharded = sharded
        result = self._sharded_result(sharded)
        result.statistics["streamed"] = True
        return self._finish(result)

    def fail_external(self, error: BaseException) -> None:
        """Close an externally-driven run as ``failed``.

        The counterpart of the in-handle paths' ``except`` clauses: the
        driver's shard session raised, the exception went to the driver
        (not through the handle), and the handle must report ``failed``
        with no result — same contract as a :meth:`run` that raised.
        """
        del error  # the driver reports it; the handle only keeps the state
        self._external_outcomes = None
        self._state = "failed"

    def restore(self, plan: ShardPlan, outcomes: Iterable[ShardOutcome]) -> None:
        """Rehydrate a pending handle from persisted shard outcomes.

        The restart path of a disk-backed job store: the server rebuilds
        the spec, rebuilds ``plan`` from it (planning is deterministic —
        same spec and inputs, same plan), loads the shard outcomes the
        previous process persisted, and restores the handle as if that
        run had been cancelled right after its last completed shard.
        :meth:`resume` then re-runs exactly the missing shards and merges
        bit-identically to an uninterrupted run.  A handle restored with
        *all* shards present closes as ``finished`` instead.
        """
        if self._state != "pending":
            raise RuntimeError(
                f"cannot restore a {self._state} handle: restore() "
                "rehydrates a freshly built one"
            )
        complete = tuple(o for o in outcomes if not o.result.cancelled)
        self._plan = plan
        self._state = "running"
        sharded = ShardedJoinResult(
            shards=complete,
            backend=self.spec.backend,
            partitioner=self.spec.partitioner,
            left_input_size=plan.left_input_size,
            right_input_size=plan.right_input_size,
            cancelled=len(complete) < plan.shard_count,
            handoff=plan.handoff,
        )
        self._sharded = sharded
        self._finish(self._sharded_result(sharded))

    # -- execution: streaming --------------------------------------------------------

    def stream_matches(
        self, batch_size: int = DEFAULT_STREAM_BATCH
    ) -> Iterator[StreamedMatch]:
        """Lazily yield matches as the run discovers them (adaptive only).

        Drives the session(s) ``batch_size`` engine steps at a time and
        yields each batch's matches immediately, so the first match
        surfaces long before the inputs are drained.  Sharded jobs
        stream the deterministic serial-merge path — shards in id order,
        shard-local ordinals translated to global pairs, cross-shard
        duplicates dropped first-shard-wins — regardless of the
        configured backend (which only the blocking :meth:`run` uses).
        Policy activations land at exactly the same steps as a blocking
        run.

        Cancellation (:meth:`cancel`, or closing this iterator early)
        stops the run at the next batch boundary; :meth:`result` then
        holds everything the run produced up to that point — a superset
        of what was streamed when the iterator was closed mid-batch —
        flagged ``cancelled``.

        The handle claims its one-shot slot at *call* time, so either
        consume the returned iterator or ``close()`` it; an abandoned,
        never-started iterator leaves the job in ``running`` with no
        result.  A sharded job configured with a parallel backend gets a
        ``UserWarning`` here — streaming trades that parallelism for the
        deterministic incremental feed (use :meth:`run` to keep it).
        """
        self._require_adaptive("stream_matches()")
        self._warn_stream_backend("stream_matches()")
        self._start()
        if self.spec.shards > 1:
            return self._stream_sharded(batch_size)
        return self._stream_unsharded(batch_size)

    def stream_matches_async(
        self, batch_size: int = DEFAULT_STREAM_BATCH
    ) -> AsyncIterator[StreamedMatch]:
        """:meth:`stream_matches` as an async iterator.

        Yields the event loop between engine batches (``await``-friendly
        backpressure), so a consumer can interleave the join with other
        asyncio work — serve requests, tick dashboards, enforce its own
        deadline and :meth:`cancel` — on one thread.  Same match stream,
        order and cancellation semantics as the sync surface.

        Validation and the one-shot state transition happen here, at
        call time (like the sync surface), not at the first ``__anext__``
        — and the same caveats apply: consume or ``aclose()`` the
        iterator, and a parallel backend warns (streaming is the serial
        path).
        """
        self._require_adaptive("stream_matches_async()")
        self._warn_stream_backend("stream_matches_async()")
        self._start()
        stream = (
            self._stream_sharded(batch_size)
            if self.spec.shards > 1
            else self._stream_unsharded(batch_size)
        )

        async def drive() -> AsyncIterator[StreamedMatch]:
            try:
                for match in stream:
                    yield match
                    await asyncio.sleep(0)
            finally:
                stream.close()

        return drive()

    def _require_adaptive(self, what: str) -> None:
        if self.spec.strategy != "adaptive":
            raise ValueError(
                f"{what} requires the adaptive strategy (the baselines "
                f"materialise their whole result); this job runs "
                f"{self.spec.strategy!r} — use run() instead"
            )

    def _warn_stream_backend(self, what: str) -> None:
        """Streaming trades the configured parallel backend for the
        deterministic serial-merge feed — say so instead of silently
        dropping the parallelism the caller asked for."""
        if self.spec.shards > 1 and self.spec.backend != "serial":
            warnings.warn(
                f"{what} runs the deterministic serial-merge path; the "
                f"configured {self.spec.backend!r} backend only applies "
                f"to run()",
                UserWarning,
                stacklevel=3,
            )

    def _stream_unsharded(self, batch_size: int) -> Iterator[StreamedMatch]:
        spec = self.spec
        bus = EventBus()
        if self._progress is not None:
            self._progress.attach(bus)
        session = JoinSession(
            spec.left, spec.right, spec.attribute, spec.run_config, bus=bus
        )

        def finalize() -> None:
            # Everything derives from the session outcome, so pairs,
            # records and result_size stay mutually consistent even when
            # the stream is closed mid-batch (the outcome may then hold a
            # few matches the consumer never pulled — same convention as
            # the sharded streaming path).
            self._finish(
                self._session_result(session, session.result(), streamed=True)
            )

        try:
            for batch in session.run_batches(
                max_batch=batch_size, cancel=self._cancel
            ):
                for event in batch:
                    pair = event.pair_key()
                    yield StreamedMatch(pair[0], pair[1], event)
        except GeneratorExit:
            # The consumer closed the stream early: that is a cancel —
            # unless the session had already drained both inputs (the
            # close landed on the final batch's last yield), in which
            # case the run genuinely completed.
            if not session.finished:
                self._cancel.set()
                session.mark_cancelled()
            finalize()
            raise
        except BaseException:
            self._state = "failed"
            raise
        else:
            finalize()

    def _stream_sharded(self, batch_size: int) -> Iterator[StreamedMatch]:
        spec = self.spec
        plan = ShardPlan.build(
            spec.left,
            spec.right,
            spec.attribute,
            spec.shards,
            spec.partitioner,
            config=spec.run_config,
            handoff=spec.handoff,
        )
        self._plan = plan
        owner = FirstShardWins()
        outcomes: List[ShardOutcome] = []
        session: Optional[JoinSession] = None
        shard_started = 0.0
        shard_id = -1

        def close_shard() -> Optional[ShardOutcome]:
            """Record the current shard's (possibly partial) outcome.

            A shard that observed the cancel token before its first step
            was skipped, not run — dropped, like the backends drop them.
            """
            nonlocal session
            if session is None:
                return None
            result = session.result()
            session = None
            if result.never_ran:
                return None
            outcome = ShardOutcome(
                shard_id=shard_id,
                result=result,
                left_origins=plan.left_shards[shard_id].origins,
                right_origins=plan.right_shards[shard_id].origins,
                wall_seconds=time.perf_counter() - shard_started,
            )
            outcomes.append(outcome)
            return outcome

        def finalize() -> None:
            sharded = ShardedJoinResult(
                shards=tuple(outcomes),
                backend="serial",  # the streaming path is the serial merge
                partitioner=spec.partitioner,
                left_input_size=plan.left_input_size,
                right_input_size=plan.right_input_size,
                cancelled=self._cancel.is_set(),
                handoff=plan.handoff,
            )
            self._sharded = sharded
            result = self._sharded_result(sharded)
            result.statistics["streamed"] = True
            self._finish(result)

        try:
            for shard_id in range(plan.shard_count):
                if self._cancel.is_set():
                    break
                shard_started = time.perf_counter()
                left, right = plan.shard_streams(shard_id)
                bus = EventBus()
                if self._progress is not None:
                    self._progress.attach(bus)
                session = JoinSession(
                    left, right, plan.attribute, spec.run_config, bus=bus
                )
                left_origins = plan.left_shards[shard_id].origins
                right_origins = plan.right_shards[shard_id].origins
                for batch in session.run_batches(
                    max_batch=batch_size, cancel=self._cancel
                ):
                    for event in batch:
                        pair = (
                            left_origins[event.left.ordinal],
                            right_origins[event.right.ordinal],
                        )
                        # The merge path's dedup rule, decided the moment
                        # the match is discovered.
                        if owner.owns(pair, shard_id):
                            yield StreamedMatch(pair[0], pair[1], event, shard_id)
                outcome = close_shard()
                if outcome is not None:
                    bus.publish(
                        ShardCompleted(
                            shard_id, outcome.result, outcome.wall_seconds
                        )
                    )
        except GeneratorExit:
            # The consumer closed the stream early: a cancel, unless the
            # close landed on the very last shard's final yield with its
            # session already drained — then the run is complete.
            run_complete = (
                session is not None
                and session.finished
                and shard_id == plan.shard_count - 1
            )
            if not run_complete:
                self._cancel.set()
            if session is not None:
                if not session.finished:
                    session.mark_cancelled()
                outcome = close_shard()
                if outcome is not None:
                    bus.publish(
                        ShardCompleted(
                            shard_id, outcome.result, outcome.wall_seconds
                        )
                    )
            finalize()
            raise
        except BaseException:
            self._state = "failed"
            raise
        else:
            finalize()

    # -- the baseline strategies (moved verbatim from the old link_tables) ------------

    def _run_baseline(self) -> LinkageResult:
        spec = self.spec
        if self._cancel.is_set():
            return LinkageResult.eager(
                spec.strategy, [], [], statistics={}, cancelled=True
            )
        if spec.strategy == "exact":
            operator = SHJoin(spec.left, spec.right, spec.attribute)
        elif spec.strategy == "approximate":
            operator = SSHJoin(
                spec.left,
                spec.right,
                spec.attribute,
                similarity_threshold=spec.similarity_threshold,
            )
        else:  # blocking
            blocking = BlockingLinkageJoin(
                spec.left,
                spec.right,
                spec.attribute,
                threshold=spec.similarity_threshold,
            )
            records = blocking.run()
            pairs = _pairs_from_records(
                records, spec.left, spec.right, spec.attribute
            )
            return LinkageResult.eager(
                spec.strategy,
                pairs,
                records,
                statistics={
                    "result_size": len(records),
                    "comparisons": blocking.comparisons,
                },
            )
        records = operator.run()
        pairs = sorted(operator.engine._emitted_pairs)
        return LinkageResult.eager(
            spec.strategy,
            pairs,
            records,
            statistics={
                "result_size": len(records),
                "operation_counters": operator.operation_counters().as_dict(),
            },
        )

    # -- lifecycle -------------------------------------------------------------------

    def _start(self) -> None:
        if self._state != "pending":
            raise RuntimeError(
                f"job already {self._state}: a handle is one-shot — build "
                "the job again for another run"
            )
        self._state = "running"
        if self._progress is not None:
            # Elapsed time measures the run, not the build()-to-run gap.
            self._progress.restart_clock()

    def _finish(self, result: LinkageResult) -> LinkageResult:
        self._result = result
        self._state = "cancelled" if result.cancelled else "finished"
        return result


def _pairs_from_records(
    records: Iterable[Record],
    left: Table,
    right: Table,
    attribute: JoinAttribute,
) -> List[Tuple[int, int]]:
    """Reconstruct (left index, right index) pairs from joined records.

    Blocking joins emit records without ordinal bookkeeping, so pairs are
    recovered by value lookup; when several rows share a value the first
    matching row is used, which is adequate for evaluation because rows with
    identical key values have identical linkage outcomes.
    """
    left_positions: Dict[object, List[int]] = {}
    for index, record in enumerate(left):
        left_positions.setdefault(record[attribute.left], []).append(index)
    right_positions: Dict[object, List[int]] = {}
    for index, record in enumerate(right):
        right_positions.setdefault(record[attribute.right], []).append(index)
    left_width = len(left.schema)
    pairs: List[Tuple[int, int]] = []
    for record in records:
        values = record.values
        left_value = values[left.schema.position(attribute.left)]
        right_value = values[left_width + right.schema.position(attribute.right)]
        pairs.append(
            (
                left_positions.get(left_value, [0])[0],
                right_positions.get(right_value, [0])[0],
            )
        )
    return pairs
