"""The fluent, validating :class:`LinkageJob` builder.

One job describes one linkage run — inputs, join attribute, strategy and
every execution knob — and compiles, at :meth:`LinkageJob.build` time,
into the runtime layer's frozen :class:`~repro.runtime.config.RunConfig`
plus a :class:`~repro.jobs.handle.JobHandle` that executes it (blocking,
streaming or async) and can be observed and cancelled mid-run::

    from repro.jobs import LinkageJob

    handle = (
        LinkageJob.between(atlas, accidents)
        .on("location")
        .strategy("adaptive")
        .policy("deadline", seconds=2.0)
        .sharded(8, backend="async")
        .with_progress()
        .build()
    )
    for match in handle.stream_matches():
        ...                      # matches arrive as they are found
    handle.progress()            # live shards/steps/matches snapshot

Each fluent method validates its arguments immediately (unknown strategy
/ policy / backend / partitioner names, out-of-range thresholds and
shard counts fail at the call site, not deep inside a run), and
:meth:`build` cross-checks the combination — the same rules
:func:`repro.linkage.api.link_tables` used to enforce inline, now stated
once.  A builder can be reused: every :meth:`build` returns an
independent handle over a frozen snapshot of the current settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.thresholds import Thresholds
from repro.engine.streams import InputLike
from repro.joins.base import JoinAttribute, JoinSide
from repro.runtime.config import RunConfig
from repro.runtime.failures import (
    FailurePolicy,
    available_failure_policies,
    create_failure_policy,
)
from repro.runtime.faults import FaultPlan
from repro.runtime.handoff import HANDOFF_MODES
from repro.runtime.parallel import available_backends
from repro.runtime.policy import available_policies
from repro.runtime.sharding import available_partitioners

#: The strategies a linkage job can run (kept in the historical order of
#: :mod:`repro.linkage.api`, which re-exports this tuple).
STRATEGIES = ("exact", "approximate", "adaptive", "blocking")

#: Knobs that only the adaptive strategy consumes; naming one of these
#: explicitly while targeting a baseline strategy is an error, not a
#: silent no-op.  ``progress`` is here because the progress feed rides
#: the session event bus — baseline operators publish nothing, so a
#: baseline "progress" would sit frozen at zero.  ``on_failure`` and
#: ``faults`` ride the sharded execution layer, which only adaptive
#: runs use.
_ADAPTIVE_ONLY = (
    "policy",
    "budget",
    "deadline",
    "config",
    "progress",
    "on_failure",
    "faults",
)


@dataclass(frozen=True)
class JobSpec:
    """The frozen, fully validated description one :class:`JobHandle` runs.

    Produced by :meth:`LinkageJob.build`; ``run_config`` is the compiled
    runtime configuration (``None`` for the baseline strategies, which
    run their dedicated operators instead of a session).
    """

    left: InputLike
    right: InputLike
    attribute: JoinAttribute
    strategy: str
    similarity_threshold: float
    run_config: Optional[RunConfig]
    shards: int
    backend: str
    partitioner: str
    max_workers: Optional[int]
    #: Shard-handoff mode (``auto`` / ``pickle`` / ``shared-memory``),
    #: forwarded to :meth:`~repro.runtime.sharding.ShardPlan.build`.
    handoff: str
    progress_enabled: bool
    failure_policy: Optional[FailurePolicy] = None
    fault_plan: Optional[FaultPlan] = None


class LinkageJob:
    """Fluent builder for linkage jobs (see the module docstring).

    Start with :meth:`between`, chain configuration calls, finish with
    :meth:`build`.  Defaults mirror ``link_tables``: adaptive strategy,
    the paper's operating point, ``θ_sim = 0.85``, unsharded serial
    execution, left input as the parent side.
    """

    def __init__(self, left: InputLike, right: InputLike) -> None:
        if left is None or right is None:
            raise ValueError("a linkage job needs two inputs, got None")
        self._left = left
        self._right = right
        self._attribute: Optional[JoinAttribute] = None
        self._strategy = "adaptive"
        self._similarity_threshold = 0.85
        self._thresholds: Optional[Thresholds] = None
        self._parent_side = JoinSide.LEFT
        self._policy = "mar"
        self._budget: Optional[float] = None
        self._deadline: Optional[float] = None
        self._config: Optional[RunConfig] = None
        self._shards = 1
        self._backend = "serial"
        self._partitioner = "hash"
        self._handoff = "auto"
        self._max_workers: Optional[int] = None
        self._progress = False
        self._failure_policy: Optional[FailurePolicy] = None
        self._faults: Optional[FaultPlan] = None
        #: Adaptive-only knobs the caller named explicitly (so build()
        #: can reject e.g. .strategy("exact").policy("deadline") while
        #: still letting the defaults ride along silently).
        self._explicit: set = set()

    @classmethod
    def between(cls, left: InputLike, right: InputLike) -> "LinkageJob":
        """Start a job over two inputs (tables or record streams)."""
        return cls(left, right)

    # -- the fluent surface ----------------------------------------------------------

    def on(
        self,
        attribute: Union[str, JoinAttribute],
        right_attribute: Optional[str] = None,
    ) -> "LinkageJob":
        """Set the join attribute: one shared name, two per-side names,
        or a ready :class:`~repro.joins.base.JoinAttribute`."""
        if isinstance(attribute, JoinAttribute):
            if right_attribute is not None:
                raise ValueError(
                    "pass either a JoinAttribute or two names, not both"
                )
            self._attribute = attribute
        elif isinstance(attribute, str) and attribute:
            self._attribute = JoinAttribute(
                attribute, right_attribute or attribute
            )
        else:
            raise ValueError(
                f"attribute must be a non-empty name or a JoinAttribute, "
                f"got {attribute!r}"
            )
        return self

    def strategy(self, name: str) -> "LinkageJob":
        """Choose the linkage strategy (one of :data:`STRATEGIES`)."""
        if name not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {name!r}; available: {STRATEGIES}"
            )
        self._strategy = name
        return self

    def threshold(self, theta_sim: float) -> "LinkageJob":
        """Set ``θ_sim``, the similarity threshold (in ``(0, 1]``)."""
        if not 0.0 < theta_sim <= 1.0:
            raise ValueError(
                f"similarity threshold must be in (0, 1], got {theta_sim}"
            )
        self._similarity_threshold = theta_sim
        return self

    def thresholds(self, thresholds: Thresholds) -> "LinkageJob":
        """Set the full adaptive operating point (overrides
        :meth:`threshold` for the adaptive strategy)."""
        if not isinstance(thresholds, Thresholds):
            raise ValueError(
                f"thresholds must be a Thresholds instance, got {thresholds!r}"
            )
        self._thresholds = thresholds
        return self

    def parent(self, side: Union[str, JoinSide]) -> "LinkageJob":
        """Choose which input plays the parent/reference role."""
        self._parent_side = side if isinstance(side, JoinSide) else JoinSide(side)
        return self

    def policy(
        self,
        name: str,
        *,
        budget: Optional[float] = None,
        seconds: Optional[float] = None,
    ) -> "LinkageJob":
        """Choose the switch policy driving the adaptive run.

        ``budget`` is the relative cost budget in ``(0, 1]`` (consumed by
        ``mar`` / ``budget-greedy``); ``seconds`` is the wall-clock
        budget of the ``deadline`` policy.
        """
        if name not in available_policies():
            raise ValueError(
                f"unknown switch policy {name!r}; registered: "
                f"{available_policies()}"
            )
        self._policy = name
        self._explicit.add("policy")
        if budget is not None:
            self.budget(budget)
        if seconds is not None:
            self.deadline(seconds)
        return self

    def budget(self, fraction: float) -> "LinkageJob":
        """Set the relative cost budget (``RunConfig.budget_fraction``)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(
                f"budget_fraction must be in (0, 1], got {fraction}"
            )
        self._budget = fraction
        self._explicit.add("budget")
        return self

    def deadline(self, seconds: float) -> "LinkageJob":
        """Set the wall-clock budget and select the ``deadline`` policy's
        knob (``RunConfig.deadline_seconds``)."""
        if seconds <= 0:
            raise ValueError(f"deadline_seconds must be positive, got {seconds}")
        self._deadline = seconds
        self._explicit.add("deadline")
        return self

    def config(self, run_config: RunConfig) -> "LinkageJob":
        """Provide a complete :class:`RunConfig`, overriding every other
        adaptive knob (thresholds, parent side, policy, budget, deadline)."""
        if not isinstance(run_config, RunConfig):
            raise ValueError(
                f"config must be a RunConfig instance, got {run_config!r}"
            )
        self._config = run_config
        self._explicit.add("config")
        return self

    def sharded(
        self,
        shards: int,
        backend: Optional[str] = None,
        partitioner: Optional[str] = None,
        max_workers: Optional[int] = None,
        handoff: Optional[str] = None,
    ) -> "LinkageJob":
        """Split the run into ``shards`` partitioned sessions on ``backend``.

        ``backend`` is any registered execution backend (``serial`` /
        ``thread`` / ``process`` / ``async``), ``partitioner`` any
        registered partitioner (``hash`` / ``round-robin`` / ``range`` /
        ``gram`` / ``gram-prefix``), ``handoff`` the shard-input
        representation (``auto`` — the default — / ``pickle`` /
        ``shared-memory``; see :mod:`repro.runtime.handoff`).
        ``shards=1`` restores unsharded execution.  Omitted keywords keep
        their current setting (initially ``serial`` / ``hash`` / ``auto``
        / no worker cap), like every other fluent setter — a later
        ``.sharded(4)`` re-scales without resetting the backend or
        partitioner.
        """
        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        if backend is not None and backend not in available_backends():
            raise ValueError(
                f"unknown execution backend {backend!r}; registered: "
                f"{available_backends()}"
            )
        if partitioner is not None and partitioner not in available_partitioners():
            raise ValueError(
                f"unknown partitioner {partitioner!r}; registered: "
                f"{available_partitioners()}"
            )
        if handoff is not None and handoff not in HANDOFF_MODES:
            raise ValueError(
                f"unknown handoff mode {handoff!r}; expected one of "
                f"{HANDOFF_MODES}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError(
                f"max_workers must be at least 1, got {max_workers}"
            )
        self._shards = shards
        if backend is not None:
            self._backend = backend
        if partitioner is not None:
            self._partitioner = partitioner
        if handoff is not None:
            self._handoff = handoff
        if max_workers is not None:
            self._max_workers = max_workers
        return self

    def on_failure(
        self,
        policy: Union[str, FailurePolicy] = "fail-fast",
        *,
        retries: Optional[int] = None,
        backoff_seconds: Optional[float] = None,
        backoff_multiplier: Optional[float] = None,
        shard_timeout: Optional[float] = None,
    ) -> "LinkageJob":
        """Choose how shard failures are handled (see
        :mod:`repro.runtime.failures`).

        ``policy`` is a registered policy name (one of
        :func:`~repro.runtime.failures.available_failure_policies`) or a
        ready :class:`~repro.runtime.failures.FailurePolicy` instance.
        ``retries`` is the number of *re-runs* after the first failure
        (``retries=2`` allows three attempts total); ``backoff_seconds``
        / ``backoff_multiplier`` shape the exponential delay between
        attempts; ``shard_timeout`` bounds each attempt's wall clock.
        ``fail-fast`` takes only ``shard_timeout`` — naming a retry knob
        with it is an error, not a silent no-op.
        """
        if isinstance(policy, FailurePolicy):
            if any(
                knob is not None
                for knob in (
                    retries,
                    backoff_seconds,
                    backoff_multiplier,
                    shard_timeout,
                )
            ):
                raise ValueError(
                    "pass either a FailurePolicy instance or policy "
                    "options, not both"
                )
            self._failure_policy = policy
            self._explicit.add("on_failure")
            return self
        if policy not in available_failure_policies():
            raise ValueError(
                f"unknown failure policy {policy!r}; registered: "
                f"{available_failure_policies()}"
            )
        options: dict = {}
        if retries is not None:
            if retries < 0:
                raise ValueError(f"retries must be >= 0, got {retries}")
            options["max_attempts"] = retries + 1
        if backoff_seconds is not None:
            options["backoff_seconds"] = backoff_seconds
        if backoff_multiplier is not None:
            options["backoff_multiplier"] = backoff_multiplier
        if shard_timeout is not None:
            options["shard_timeout_seconds"] = shard_timeout
        if policy == "fail-fast":
            rejected = [
                name
                for name, value in (
                    ("retries", retries),
                    ("backoff_seconds", backoff_seconds),
                    ("backoff_multiplier", backoff_multiplier),
                )
                if value is not None
            ]
            if rejected:
                raise ValueError(
                    f"{', '.join(rejected)} do not apply to the "
                    f"'fail-fast' policy; use on_failure('retry', ...) "
                    f"to re-run failed shards"
                )
        self._failure_policy = create_failure_policy(policy, **options)
        self._explicit.add("on_failure")
        return self

    def inject_faults(self, plan: FaultPlan) -> "LinkageJob":
        """Inject a deterministic :class:`~repro.runtime.faults.FaultPlan`
        into the run (testing/benchmark harness; no-op in production use).
        """
        if not isinstance(plan, FaultPlan):
            raise ValueError(
                f"inject_faults takes a FaultPlan, got {plan!r}"
            )
        self._faults = plan if plan else None
        if self._faults is not None:
            self._explicit.add("faults")
        return self

    def with_progress(self, enabled: bool = True) -> "LinkageJob":
        """Attach a :class:`~repro.runtime.collectors.ProgressCollector`
        to the run so ``JobHandle.progress()`` reports live counts.

        Off by default: the per-step feed costs one bus handler per
        engine step, which pure-throughput callers should not pay.
        Adaptive-only — the feed rides the session event bus, which the
        baseline operators never publish onto.
        """
        self._progress = bool(enabled)
        if enabled:
            self._explicit.add("progress")
        else:
            self._explicit.discard("progress")
        return self

    # -- compilation -----------------------------------------------------------------

    def compile(self) -> Optional[RunConfig]:
        """The frozen :class:`RunConfig` this job runs under.

        ``None`` for the baseline strategies (exact / approximate /
        blocking), which execute their dedicated operators rather than a
        runtime session.  An explicitly provided :meth:`config` wins
        outright, mirroring ``link_tables``.
        """
        if self._strategy != "adaptive":
            return None
        if self._config is not None:
            return self._config
        return RunConfig.from_thresholds(
            self._thresholds
            or Thresholds(theta_sim=self._similarity_threshold),
            parent_side=self._parent_side,
            policy=self._policy,
            budget_fraction=self._budget,
            deadline_seconds=self._deadline,
        )

    def build(self) -> "JobHandle":
        """Validate the combination and return a fresh, runnable handle."""
        from repro.jobs.handle import JobHandle

        if self._attribute is None:
            raise ValueError(
                "no join attribute set: call .on(<attribute name>) before "
                ".build()"
            )
        if self._strategy != "adaptive":
            if self._shards > 1:
                raise ValueError(
                    f"sharded execution is only available for the adaptive "
                    f"strategy, not {self._strategy!r}"
                )
            explicit = [k for k in _ADAPTIVE_ONLY if k in self._explicit]
            if explicit:
                raise ValueError(
                    f"{', '.join(explicit)} only appl"
                    f"{'y' if len(explicit) > 1 else 'ies'} to the adaptive "
                    f"strategy, not {self._strategy!r}"
                )
        return JobHandle(
            JobSpec(
                left=self._left,
                right=self._right,
                attribute=self._attribute,
                strategy=self._strategy,
                similarity_threshold=self._similarity_threshold,
                run_config=self.compile(),
                shards=self._shards,
                backend=self._backend,
                partitioner=self._partitioner,
                max_workers=self._max_workers,
                handoff=self._handoff,
                progress_enabled=self._progress,
                failure_policy=self._failure_policy,
                fault_plan=self._faults,
            )
        )
