"""The job-oriented public API.

The paper's contribution is *adaptive, time-aware* join processing, and
this layer gives it a matching public surface: instead of one blocking,
materialise-everything call, a linkage run is a **job** — declared with
the fluent, validating :class:`LinkageJob` builder, compiled into the
runtime layer's frozen :class:`~repro.runtime.config.RunConfig`, and
executed through a :class:`JobHandle` that can block
(:meth:`~repro.jobs.handle.JobHandle.run`), stream matches lazily as
they are found (:meth:`~repro.jobs.handle.JobHandle.stream_matches`,
sync or async), report live progress
(:meth:`~repro.jobs.handle.JobHandle.progress`, fed by
``StepResult``/``ShardCompleted`` bus events through a
:class:`~repro.runtime.collectors.ProgressCollector`) and be cancelled
mid-run with partial results
(:meth:`~repro.jobs.handle.JobHandle.cancel`)::

    from repro.jobs import LinkageJob

    handle = (
        LinkageJob.between(parent, child)
        .on("location")
        .strategy("adaptive")
        .policy("deadline", seconds=2.0)
        .sharded(8, backend="async")
        .build()
    )
    for match in handle.stream_matches():
        print(match.pair, match.event.similarity)

The legacy :func:`repro.linkage.api.link_tables` survives as a thin
wrapper over this builder, so existing call sites keep working
unchanged.  See ARCHITECTURE.md ("Jobs layer") for the full picture.

:mod:`repro.jobs.serialization` adds the network-facing half: JSON job
payloads (validated through the same builder) and the pickle+base64
codec the HTTP server's disk store uses to persist shard outcomes
across restarts.
"""

from repro.jobs.builder import STRATEGIES, JobSpec, LinkageJob
from repro.jobs.handle import DEFAULT_STREAM_BATCH, JobHandle, StreamedMatch
from repro.jobs.result import LinkageResult
from repro.jobs.serialization import (
    PayloadError,
    build_job,
    decode_shard_outcome,
    encode_shard_outcome,
    normalize_payload,
)

__all__ = [
    "DEFAULT_STREAM_BATCH",
    "JobHandle",
    "JobSpec",
    "LinkageJob",
    "LinkageResult",
    "PayloadError",
    "STRATEGIES",
    "StreamedMatch",
    "build_job",
    "decode_shard_outcome",
    "encode_shard_outcome",
    "normalize_payload",
]
