"""The result type every linkage entry point returns.

:class:`LinkageResult` used to live in :mod:`repro.linkage.api`; it moved
here when the jobs layer became the execution surface so that both the
legacy :func:`~repro.linkage.api.link_tables` wrapper and the
:class:`~repro.jobs.handle.JobHandle` paths can produce it without an
import cycle (``repro.linkage`` re-exports it unchanged).

The joined output ``records`` are **lazy**: most consumers only read
``pairs`` / ``pair_count`` (completeness checks, evaluations against
ground truth), and materialising one joined record per matched pair was
pure waste for them.  ``records`` is now computed on first access and
cached; strategies whose operators materialise records anyway (the
blocking baseline) pass them eagerly and nothing changes.
"""

from __future__ import annotations

from dataclasses import KW_ONLY, dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

#: Lazily invoked producer of the joined output records.
RecordsFactory = Callable[[], List]


@dataclass
class LinkageResult:
    """Outcome of one linkage run (``link_tables`` or a ``LinkageJob``).

    Everything after ``pairs`` is keyword-only: the old dataclass took
    ``records`` as its third positional field, and a stale positional
    construction must fail loudly (``TypeError``) rather than silently
    land records in ``statistics``.  Build instances through
    :meth:`eager` / :meth:`lazy`.
    """

    strategy: str
    #: Matched ``(left index, right index)`` pairs.
    pairs: List[Tuple[int, int]]
    _: KW_ONLY
    #: Strategy-specific statistics (steps per state for the adaptive run,
    #: comparison counts for the baselines, …).
    statistics: Dict[str, object] = field(default_factory=dict)
    #: Whether the run was stopped by :meth:`repro.jobs.JobHandle.cancel`
    #: before completion (``pairs``/``records`` then hold the partial
    #: result produced up to the cancellation point).
    cancelled: bool = False
    #: Cache and factory are representation details: two results with the
    #: same strategy/pairs/statistics compare equal whether or not their
    #: records have been materialised yet.
    _records: Optional[List] = field(default=None, repr=False, compare=False)
    _records_factory: Optional[RecordsFactory] = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def eager(
        cls,
        strategy: str,
        pairs: List[Tuple[int, int]],
        records: List,
        statistics: Optional[Dict[str, object]] = None,
        cancelled: bool = False,
    ) -> "LinkageResult":
        """A result whose joined records are already materialised."""
        return cls(
            strategy=strategy,
            pairs=pairs,
            statistics=statistics or {},
            cancelled=cancelled,
            _records=records,
        )

    @classmethod
    def lazy(
        cls,
        strategy: str,
        pairs: List[Tuple[int, int]],
        records_factory: RecordsFactory,
        statistics: Optional[Dict[str, object]] = None,
        cancelled: bool = False,
    ) -> "LinkageResult":
        """A result that materialises its joined records on first access."""
        return cls(
            strategy=strategy,
            pairs=pairs,
            statistics=statistics or {},
            cancelled=cancelled,
            _records_factory=records_factory,
        )

    @property
    def records(self) -> List:
        """Joined output records (left values followed by right values).

        Built on first access from the match events and cached; consumers
        that never touch this property never pay for record construction.
        """
        if self._records is None:
            factory = self._records_factory
            self._records = factory() if factory is not None else []
            # Release the factory: its closure pins the whole session /
            # sharded result graph (match events, origin maps), which has
            # no business outliving the materialised records.
            self._records_factory = None
        return self._records

    @property
    def records_materialized(self) -> bool:
        """Whether :attr:`records` has been built yet (regression hook)."""
        return self._records is not None

    @property
    def pair_count(self) -> int:
        """Number of matched pairs."""
        return len(self.pairs)
