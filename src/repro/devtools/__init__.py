"""Developer tooling for the reproduction repo itself.

This package is *not* part of the paper reproduction: it holds the
project-specific static-analysis pass (:mod:`repro.devtools.lint`, the
``repro lint`` sub-command) and the process-boundary class registry
(:mod:`repro.devtools.pickle_boundary`) it checks against.

Layering contract: ``devtools`` sits at the very bottom of the layer
order — it may import nothing from the rest of ``repro`` — so the
checker can lint every layer without itself being tangled into the
import graph it polices.
"""
