"""``repro lint`` — the repo's prose contracts as AST-enforced rules.

Eight PRs of guarantees (determinism oracles, import-gated numpy
kernels, shared-memory lifecycle brackets, pickle-safe process
boundaries) lived only in ARCHITECTURE.md prose and in tests that catch
breakage *after* it ships.  This module turns them into a
project-specific static-analysis pass: each contract is a registered
rule with a stable ``RLxxx`` code, checked purely at the AST level (no
imports of the linted code), with file/line diagnostics, inline
suppressions and a committed waiver file.

Rules
-----
RL001 *determinism*
    No wall-clock or ambient-randomness **calls** (``time.time`` /
    ``time.monotonic`` / ``datetime.now`` / module-level ``random.*`` /
    unseeded ``random.Random()``) in the deterministic layers
    (``engine``, ``joins``, ``runtime``, ``kernels``, ``core``).
    Injectable clocks (a ``clock=time.perf_counter`` *default*, never a
    hard-wired call driving control flow), ``random.Random(seed)`` and
    ``time.perf_counter()`` wall-time *measurement* stay legal;
    ``datagen`` / ``bench`` are out of scope.
RL002 *layering*
    Imports must flow down the layer order ``engine/similarity/stats ←
    datagen/kernels ← joins ← core ← runtime ← jobs ← linkage ←
    server/bench ← cli`` (an arrow means "may be imported by"); upward
    imports are only legal inside ``if TYPE_CHECKING:`` blocks.
RL003 *numpy gate*
    ``import numpy`` only inside :mod:`repro.kernels` — the one
    import-gated optional-dependency boundary (PR 7).
RL004 *resource lifecycle*
    Every ``SharedMemory(create=True)`` and every zero-argument
    ``.attach()`` handle acquisition must be dominated by a
    ``try``/``finally`` (or an ``except`` cleanup that re-raises, or a
    ``with`` block) reaching ``close()`` / ``unlink()`` on the acquired
    name, in the same statement block (PR 8's segment-lifecycle
    bracket).  Returning the fresh handle transfers ownership to the
    caller, whose own binding is then checked.
RL005 *pickle boundary*
    Classes in :data:`repro.devtools.pickle_boundary.PICKLE_BOUNDARY`
    cross the process boundary by pickle: they may not be defined
    inside a function (local classes do not pickle) and may not carry
    lambda fields or defaults (class-level assignments and ``__init__``
    parameter defaults are checked).
RL006 *frozen mutation*
    ``object.__setattr__`` — the frozen-dataclass escape hatch — is
    legal only inside ``__post_init__`` / ``__setstate__``.

Suppressions
------------
Three escape hatches, from narrowest to widest:

* inline: a ``# repro-lint: disable=RL004`` comment (comma-separated
  codes, or ``disable=all``) on the flagged line;
* waiver file: ``<path glob> <CODE> <reason…>`` lines in
  ``.repro-lint.waivers`` at the invocation root (``--waivers`` points
  elsewhere, ``--no-waivers`` ignores it) — waived findings are
  reported in the summary but do not fail the run;
* fixtures: ``tests/devtools/fixtures`` is excluded from directory
  walks (explicitly listed files are always linted), so the linter's
  own bad-example corpus cannot fail the self-check.

A ``# repro-lint: module=<dotted.name>`` comment in the first ten lines
overrides the module identity derived from the file path — how the
fixture corpus poses as in-layer modules.

Usage: ``repro lint src tests benchmarks examples`` or
``python -m repro.devtools.lint <paths…> [--format text|github]``.
Exit codes: 0 clean, 1 findings, 2 usage errors.
"""

from __future__ import annotations

import argparse
import ast
import fnmatch
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.devtools.pickle_boundary import registry_by_module

__all__ = [
    "Diagnostic",
    "Rule",
    "RULES",
    "Waiver",
    "check_file",
    "iter_python_files",
    "lint_paths",
    "load_waivers",
    "main",
]


# -- layer order (RL002) ---------------------------------------------------------

#: Rank of each first-level package under ``repro``; a module may import
#: only packages of rank ≤ its own.  ``devtools`` is rank 0 by contract
#: (it polices the graph, so it must not participate in it); the root
#: package (``repro/__init__``) and ``__main__`` are the public surface
#: re-exporting everything and are exempt.
LAYER_RANKS: Dict[str, int] = {
    "devtools": 0,
    "engine": 0,
    "similarity": 0,
    "stats": 0,
    "datagen": 1,
    "kernels": 1,
    "joins": 2,
    "core": 3,
    "runtime": 4,
    "jobs": 5,
    "linkage": 6,
    "server": 7,
    "bench": 7,
    "cli": 8,
}

#: Layers in which RL001 bans ambient clocks/randomness.
DETERMINISTIC_LAYERS: Tuple[str, ...] = (
    "repro.engine",
    "repro.joins",
    "repro.runtime",
    "repro.kernels",
    "repro.core",
)

#: Fully qualified call targets RL001 rejects outright.  Note that
#: ``time.perf_counter`` / ``time.sleep`` are absent on purpose: the
#: runtime uses them for wall-time *measurement* and injectable-default
#: plumbing, never to steer join decisions.
BANNED_CLOCK_CALLS: Tuple[str, ...] = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
)

#: Directory suffixes pruned from directory walks (explicit file
#: arguments bypass this): the linter's own bad-example corpus.
DEFAULT_EXCLUDES: Tuple[str, ...] = ("tests/devtools/fixtures",)

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")
_MODULE_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*module=([A-Za-z0-9_.]+)")


# -- data model ------------------------------------------------------------------


@dataclass(frozen=True)
class Diagnostic:
    """One finding: where, which rule, and what the contract says."""

    path: str
    line: int
    col: int
    code: str
    message: str
    waived: bool = False

    def as_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_github(self) -> str:
        """A GitHub Actions workflow command (inline PR annotation)."""
        return (
            f"::error file={self.path},line={self.line},col={self.col},"
            f"title={self.code}::{self.message}"
        )


@dataclass(frozen=True)
class Rule:
    """One registered invariant check."""

    code: str
    summary: str
    check: Callable[["FileContext"], Iterator[Diagnostic]]


RULES: List[Rule] = []


def _register(code: str, summary: str) -> Callable[
    [Callable[["FileContext"], Iterator[Diagnostic]]],
    Callable[["FileContext"], Iterator[Diagnostic]],
]:
    def decorator(
        check: Callable[["FileContext"], Iterator[Diagnostic]]
    ) -> Callable[["FileContext"], Iterator[Diagnostic]]:
        RULES.append(Rule(code, summary, check))
        return check

    return decorator


@dataclass
class FileContext:
    """Everything the rules need about one parsed file."""

    path: Path
    display: str
    module: Optional[str]
    tree: ast.Module
    lines: List[str]
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)
    type_checking: Set[ast.AST] = field(default_factory=set)
    imports: Dict[str, str] = field(default_factory=dict)
    suppressed: Dict[int, Set[str]] = field(default_factory=dict)

    def diagnostic(self, node: ast.AST, code: str, message: str) -> Diagnostic:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Diagnostic(self.display, line, col, code, message)

    def is_suppressed(self, diag: Diagnostic) -> bool:
        codes = self.suppressed.get(diag.line)
        return bool(codes) and ("all" in codes or diag.code in codes)


# -- file context construction ---------------------------------------------------


def _derive_module(path: Path) -> Optional[str]:
    """Dotted module name for files under a ``repro`` package root."""
    parts = list(path.parts)
    for index, part in enumerate(parts):
        if part == "repro" and index > 0 and parts[index - 1] == "src":
            dotted = parts[index:]
            break
    else:
        return None
    if dotted[-1].endswith(".py"):
        dotted[-1] = dotted[-1][: -len(".py")]
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


def _collect_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    suppressed: Dict[int, Set[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            codes = {code.strip() for code in match.group(1).split(",")}
            suppressed[number] = {c.lower() if c.lower() == "all" else c
                                  for c in codes if c}
    return suppressed


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    return (
        isinstance(test, ast.Attribute)
        and test.attr == "TYPE_CHECKING"
        and isinstance(test.value, ast.Name)
        and test.value.id == "typing"
    )


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    """Local name → fully qualified origin, for top-of-chain resolution."""
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def build_context(
    path: Path, source: str, display: Optional[str] = None
) -> FileContext:
    """Parse ``source`` and assemble the shared per-file rule context."""
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    module = _derive_module(path)
    for text in lines[:10]:
        pragma = _MODULE_PRAGMA_RE.search(text)
        if pragma:
            module = pragma.group(1)
            break
    ctx = FileContext(
        path=path,
        display=display or _display_path(path),
        module=module,
        tree=tree,
        lines=lines,
        imports=_collect_imports(tree),
        suppressed=_collect_suppressions(lines),
    )
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            ctx.parents[child] = node
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            for stmt in node.body:
                ctx.type_checking.add(stmt)
                for descendant in ast.walk(stmt):
                    ctx.type_checking.add(descendant)
    return ctx


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


# -- shared AST helpers ----------------------------------------------------------


def _qualified_name(ctx: FileContext, node: ast.expr) -> Optional[str]:
    """Dotted origin of a ``Name``/``Attribute`` chain, via the import table."""
    chain: List[str] = []
    cursor: ast.expr = node
    while isinstance(cursor, ast.Attribute):
        chain.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    head = ctx.imports.get(cursor.id)
    if head is None:
        return None
    chain.append(head)
    return ".".join(reversed(chain))


def _enclosing_statement(ctx: FileContext, node: ast.AST) -> Optional[ast.stmt]:
    cursor: Optional[ast.AST] = node
    while cursor is not None and not isinstance(cursor, ast.stmt):
        cursor = ctx.parents.get(cursor)
    return cursor


def _containing_block(
    ctx: FileContext, stmt: ast.stmt
) -> Optional[List[ast.stmt]]:
    parent = ctx.parents.get(stmt)
    if parent is None:
        return None
    for _field, value in ast.iter_fields(parent):
        if isinstance(value, list) and stmt in value:
            return value
    return None


def _enclosing_function(
    ctx: FileContext, node: ast.AST
) -> Optional[ast.AST]:
    cursor = ctx.parents.get(node)
    while cursor is not None:
        if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return cursor
        cursor = ctx.parents.get(cursor)
    return None


# -- RL001: determinism ----------------------------------------------------------


def _in_deterministic_layer(module: Optional[str]) -> bool:
    return module is not None and any(
        module == layer or module.startswith(layer + ".")
        for layer in DETERMINISTIC_LAYERS
    )


@_register(
    "RL001",
    "no ambient clocks or unseeded randomness in the deterministic layers",
)
def _rule_determinism(ctx: FileContext) -> Iterator[Diagnostic]:
    if not _in_deterministic_layer(ctx.module):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        qualname = _qualified_name(ctx, node.func)
        if qualname is None:
            continue
        if qualname in BANNED_CLOCK_CALLS:
            yield ctx.diagnostic(
                node,
                "RL001",
                f"call to {qualname}() in deterministic layer "
                f"'{ctx.module}': inject a clock instead (accept a "
                f"clock callable, default time.perf_counter, and call "
                f"the injected one)",
            )
        elif qualname.startswith("random."):
            target = qualname.split(".", 1)[1]
            if target == "Random":
                if node.args or node.keywords:
                    continue  # random.Random(seed) — seeded, deterministic
                message = (
                    "unseeded random.Random() in deterministic layer "
                    f"'{ctx.module}': pass an explicit seed"
                )
            elif target == "SystemRandom":
                message = (
                    "random.SystemRandom is nondeterministic by design; "
                    "use random.Random(seed)"
                )
            elif "." in target:
                continue  # rng.random() on a local instance, not the module
            else:
                message = (
                    f"module-level random.{target}() uses the shared "
                    f"unseeded generator in deterministic layer "
                    f"'{ctx.module}': use a random.Random(seed) instance"
                )
            yield ctx.diagnostic(node, "RL001", message)


# -- RL002: layering -------------------------------------------------------------


def _layer_of(module: Optional[str]) -> Optional[Tuple[str, int]]:
    if not module or not module.startswith("repro."):
        return None
    first = module.split(".")[1]
    rank = LAYER_RANKS.get(first)
    if rank is None:
        return None
    return first, rank


def _imported_repro_modules(node: ast.stmt) -> Iterator[str]:
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name == "repro" or alias.name.startswith("repro."):
                yield alias.name
    elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
        if node.module == "repro":
            # `from repro import runtime` names the subpackage directly.
            for alias in node.names:
                yield f"repro.{alias.name}"
        elif node.module.startswith("repro."):
            yield node.module


@_register(
    "RL002",
    "imports must flow down the layer order (engine → … → cli); "
    "upward only under TYPE_CHECKING",
)
def _rule_layering(ctx: FileContext) -> Iterator[Diagnostic]:
    own = _layer_of(ctx.module)
    if own is None:
        return
    own_name, own_rank = own
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if node in ctx.type_checking:
            continue
        for target in _imported_repro_modules(node):
            layer = _layer_of(target)
            if layer is None:
                continue
            target_name, target_rank = layer
            if target_name == own_name or target_rank <= own_rank:
                continue
            yield ctx.diagnostic(
                node,
                "RL002",
                f"layering violation: {ctx.module} (layer '{own_name}') "
                f"imports {target} (layer '{target_name}', "
                f"{target_rank - own_rank} level(s) up); imports must "
                f"flow engine → joins → core → runtime → jobs → linkage "
                f"→ server/bench → cli — gate type-only imports behind "
                f"TYPE_CHECKING or move the shared code down a layer",
            )


# -- RL003: numpy gate -----------------------------------------------------------


@_register("RL003", "numpy imports only inside repro.kernels")
def _rule_numpy_gate(ctx: FileContext) -> Iterator[Diagnostic]:
    module = ctx.module
    if module is None or not module.startswith("repro."):
        return
    if module == "repro.kernels" or module.startswith("repro.kernels."):
        return
    for node in ast.walk(ctx.tree):
        if node in ctx.type_checking:
            continue
        targets: List[str] = []
        if isinstance(node, ast.Import):
            targets = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            targets = [node.module]
        for target in targets:
            if target == "numpy" or target.startswith("numpy."):
                yield ctx.diagnostic(
                    node,
                    "RL003",
                    f"numpy imported in {module}: repro.kernels is the "
                    f"only import-gated numpy boundary (the base install "
                    f"is dependency-free); route columnar work through "
                    f"repro.kernels",
                )


# -- RL004: resource lifecycle ---------------------------------------------------


def _is_shared_memory_create(node: ast.Call) -> bool:
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name != "SharedMemory":
        return False
    return any(
        kw.arg == "create"
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is True
        for kw in node.keywords
    )


def _is_bare_attach(node: ast.Call) -> bool:
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "attach"
        and not node.args
        and not node.keywords
    )


def _closes_name(try_node: ast.Try, name: str) -> bool:
    """Whether a ``finally`` or ``except`` arm calls ``name.close/unlink``."""
    bodies: List[ast.stmt] = list(try_node.finalbody)
    for handler in try_node.handlers:
        bodies.extend(handler.body)
    for stmt in bodies:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("close", "unlink", "release")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                return True
    return False


def _assigned_name(stmt: ast.stmt) -> Optional[str]:
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            return target.id
    elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        return stmt.target.id
    return None


def _lifecycle_protected(ctx: FileContext, call: ast.Call) -> bool:
    # `with SharedMemory(...)` / `with x.attach() as ...` — a context
    # manager brackets the lifetime by construction.
    cursor: Optional[ast.AST] = call
    while cursor is not None:
        parent = ctx.parents.get(cursor)
        if isinstance(parent, ast.withitem) and parent.context_expr is cursor:
            return True
        if isinstance(parent, ast.stmt):
            break
        cursor = parent
    stmt = _enclosing_statement(ctx, call)
    if stmt is None:
        return False
    if isinstance(stmt, ast.Return):
        return True  # ownership transferred to the caller's binding
    name = _assigned_name(stmt)
    if name is None:
        return False  # handle discarded or bound to a complex target
    # (a) a later statement in the same block brackets it:
    #     x = SharedMemory(create=True); try: … finally: x.close()
    block = _containing_block(ctx, stmt)
    if block is not None:
        for follower in block[block.index(stmt) + 1:]:
            if isinstance(follower, ast.Try) and _closes_name(follower, name):
                return True
    # (b) the assignment already sits inside a try whose finally/except
    #     arms reach close()/unlink() on the name.
    cursor = stmt
    while cursor is not None:
        parent = ctx.parents.get(cursor)
        if isinstance(parent, ast.Try) and cursor in parent.body:
            if _closes_name(parent, name):
                return True
        cursor = parent
    return False


@_register(
    "RL004",
    "SharedMemory(create=True) / .attach() must be bracketed by "
    "try/finally (or with) reaching close()/unlink()",
)
def _rule_resource_lifecycle(ctx: FileContext) -> Iterator[Diagnostic]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if _is_shared_memory_create(node):
            what = "SharedMemory(create=True)"
        elif _is_bare_attach(node):
            what = ".attach()"
        else:
            continue
        if not _lifecycle_protected(ctx, node):
            yield ctx.diagnostic(
                node,
                "RL004",
                f"{what} acquires a shared-memory handle without a "
                f"dominating try/finally (or with) that reaches "
                f"close()/unlink(): a failure between acquisition and "
                f"cleanup leaks the segment (see ARCHITECTURE.md "
                f"'Shard handoff')",
            )


# -- RL005: pickle boundary ------------------------------------------------------


def _lambda_findings(
    ctx: FileContext, value: ast.expr, class_name: str, where: str
) -> Iterator[Diagnostic]:
    for node in ast.walk(value):
        if isinstance(node, ast.Lambda):
            yield ctx.diagnostic(
                node,
                "RL005",
                f"{class_name} crosses the process boundary by pickle "
                f"but carries a lambda {where}: lambdas do not pickle — "
                f"use a module-level function",
            )


@_register(
    "RL005",
    "process-boundary classes may not carry lambda/closure/local-class "
    "fields or defaults",
)
def _rule_pickle_boundary(ctx: FileContext) -> Iterator[Diagnostic]:
    if ctx.module is None:
        return
    registered = registry_by_module().get(ctx.module)
    if not registered:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef) or node.name not in registered:
            continue
        if _enclosing_function(ctx, node) is not None:
            yield ctx.diagnostic(
                node,
                "RL005",
                f"{node.name} is registered as a process-boundary class "
                f"but is defined inside a function: local classes do "
                f"not pickle — define it at module level",
            )
        for stmt in node.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)) and stmt.value:
                yield from _lambda_findings(
                    ctx, stmt.value, node.name, "field default"
                )
            elif isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
                defaults = list(stmt.args.defaults) + [
                    d for d in stmt.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    yield from _lambda_findings(
                        ctx, default, node.name, "__init__ default"
                    )


# -- RL006: frozen mutation ------------------------------------------------------


@_register(
    "RL006",
    "object.__setattr__ only inside __post_init__/__setstate__",
)
def _rule_frozen_mutation(ctx: FileContext) -> Iterator[Diagnostic]:
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "__setattr__"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "object"
        ):
            continue
        function = _enclosing_function(ctx, node)
        name = getattr(function, "name", None)
        if name in ("__post_init__", "__setstate__"):
            continue
        yield ctx.diagnostic(
            node,
            "RL006",
            "object.__setattr__ outside __post_init__/__setstate__: "
            "mutating a frozen dataclass elsewhere breaks the "
            "immutability contract its consumers (hashing, sharing "
            "across threads, pickling) rely on",
        )


# -- waivers ---------------------------------------------------------------------


@dataclass(frozen=True)
class Waiver:
    """One committed exemption: a path glob, a rule code, and its why."""

    pattern: str
    code: str
    reason: str

    def covers(self, diag: Diagnostic) -> bool:
        return self.code in ("*", diag.code) and fnmatch.fnmatch(
            diag.path, self.pattern
        )


DEFAULT_WAIVER_FILE = ".repro-lint.waivers"


def load_waivers(path: Path) -> List[Waiver]:
    """Parse a waiver file: ``<path glob> <CODE> <reason…>`` per line."""
    waivers: List[Waiver] = []
    for number, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 2)
        if len(parts) < 3:
            raise ValueError(
                f"{path}:{number}: waiver lines need "
                f"'<path glob> <CODE> <reason…>', got {line!r}"
            )
        waivers.append(Waiver(parts[0], parts[1], parts[2]))
    return waivers


# -- driver ----------------------------------------------------------------------


def _excluded(path: Path) -> bool:
    posix = path.as_posix()
    return any(
        f"/{suffix}/" in f"/{posix}/" for suffix in DEFAULT_EXCLUDES
    ) or "__pycache__" in path.parts


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories; walks prune DEFAULT_EXCLUDES, explicit
    file arguments bypass them."""
    for path in paths:
        if path.is_dir():
            for found in sorted(path.rglob("*.py")):
                if not _excluded(found):
                    yield found
        else:
            yield path


def check_file(path: Path, source: Optional[str] = None) -> List[Diagnostic]:
    """All non-suppressed diagnostics for one file."""
    if source is None:
        source = path.read_text(encoding="utf-8")
    try:
        ctx = build_context(path, source)
    except SyntaxError as error:
        return [
            Diagnostic(
                _display_path(path),
                error.lineno or 1,
                (error.offset or 0) + 1,
                "RL000",
                f"syntax error: {error.msg}",
            )
        ]
    findings: List[Diagnostic] = []
    for rule in RULES:
        for diag in rule.check(ctx):
            if not ctx.is_suppressed(diag):
                findings.append(diag)
    findings.sort(key=lambda d: (d.path, d.line, d.col, d.code))
    return findings


def lint_paths(
    paths: Sequence[Path], waivers: Sequence[Waiver] = ()
) -> Tuple[List[Diagnostic], List[Diagnostic]]:
    """Lint everything under ``paths``; returns (active, waived)."""
    active: List[Diagnostic] = []
    waived: List[Diagnostic] = []
    for path in iter_python_files(paths):
        for diag in check_file(path):
            matching = next((w for w in waivers if w.covers(diag)), None)
            if matching is not None:
                waived.append(
                    Diagnostic(
                        diag.path, diag.line, diag.col, diag.code,
                        f"{diag.message} [waived: {matching.reason}]",
                        waived=True,
                    )
                )
            else:
                active.append(diag)
    return active, waived


def run(
    paths: Sequence[str],
    output_format: str = "text",
    waiver_file: Optional[str] = None,
    use_waivers: bool = True,
    list_rules: bool = False,
    show_waived: bool = False,
    stdout=None,
    stderr=None,
) -> int:
    """The ``repro lint`` entry point shared by the CLI and ``__main__``."""
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    if list_rules:
        for rule in RULES:
            print(f"{rule.code}  {rule.summary}", file=out)
        return 0
    if not paths:
        print("repro lint: no paths given", file=err)
        return 2
    targets = [Path(p) for p in paths]
    missing = [p for p in targets if not p.exists()]
    if missing:
        print(
            f"repro lint: no such path: {', '.join(map(str, missing))}",
            file=err,
        )
        return 2
    waivers: List[Waiver] = []
    if use_waivers:
        candidate = Path(waiver_file) if waiver_file else Path(DEFAULT_WAIVER_FILE)
        if candidate.exists():
            try:
                waivers = load_waivers(candidate)
            except ValueError as error:
                print(f"repro lint: {error}", file=err)
                return 2
        elif waiver_file:
            print(f"repro lint: waiver file not found: {waiver_file}", file=err)
            return 2
    active, waived = lint_paths(targets, waivers)
    emit = Diagnostic.as_github if output_format == "github" else Diagnostic.as_text
    for diag in active:
        print(emit(diag), file=out)
    if show_waived:
        for diag in waived:
            print(f"[waived] {diag.as_text()}", file=out)
    print(
        f"repro lint: {len(active)} finding(s), {len(waived)} waived",
        file=err,
    )
    return 1 if active else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based checker for the repo's architectural invariants",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "github"), default="text",
        help="diagnostic format (github = Actions inline annotations)",
    )
    parser.add_argument(
        "--waivers", default=None, metavar="FILE",
        help=f"waiver file (default: {DEFAULT_WAIVER_FILE} if present)",
    )
    parser.add_argument(
        "--no-waivers", action="store_true",
        help="ignore any waiver file",
    )
    parser.add_argument(
        "--show-waived", action="store_true",
        help="also print waived findings",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return run(
        args.paths,
        output_format=args.format,
        waiver_file=args.waivers,
        use_waivers=not args.no_waivers,
        list_rules=args.list_rules,
        show_waived=args.show_waived,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
