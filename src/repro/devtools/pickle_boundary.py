"""The process-boundary class registry (rule RL005 + the pickle audit).

Every class listed here crosses the process-backend worker boundary by
``pickle`` — as a task payload, a shared-memory handle, a configuration,
or an error travelling back from a worker.  Two guards keep the registry
honest:

* :mod:`repro.devtools.lint` rule **RL005** statically forbids the
  listed classes from carrying unpicklable baggage (lambda fields or
  defaults, local-class definitions);
* ``tests/runtime/test_pickle_boundary.py`` round-trips a live instance
  of every entry through ``pickle`` (and, for the classes that actually
  cross a worker boundary today, through a spawned subprocess), so the
  registry and reality cannot drift apart — adding a boundary class
  without registering it here fails the audit's coverage check, and
  registering one that stops pickling fails the round-trip.

The registry is pure data (module path, class name); nothing in
``repro.devtools`` imports the classes themselves, keeping the tooling
layer import-free (see the package docstring).
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

#: ``(module, class name)`` pairs of every type that crosses the process
#: boundary.  Private names (``_ShardTask`` …) are deliberately listed:
#: being private to the coordinator does not exempt a class from the
#: pickling contract.
PICKLE_BOUNDARY: Tuple[Tuple[str, str], ...] = (
    ("repro.runtime.config", "RunConfig"),
    ("repro.runtime.errors", "ShardError"),
    ("repro.runtime.errors", "ShardExecutionError"),
    ("repro.runtime.errors", "ShardTimeoutError"),
    ("repro.runtime.faults", "InjectedFaultError"),
    ("repro.runtime.faults", "FaultSpec"),
    ("repro.runtime.faults", "FaultPlan"),
    ("repro.runtime.failures", "ShardFailure"),
    ("repro.runtime.handoff", "BlockDescriptor"),
    ("repro.runtime.parallel", "ShardInputPayload"),
    ("repro.runtime.parallel", "_ShardTask"),
    ("repro.runtime.parallel", "_BlockShardTask"),
)

#: The subset that crosses a *spawned worker* boundary in production (the
#: process backend ships these through ``multiprocessing``); the audit
#: test gives exactly these a subprocess round-trip leg on top of the
#: in-process one.
SUBPROCESS_CLASSES: Tuple[str, ...] = (
    "BlockDescriptor",
    "ShardError",
    "ShardExecutionError",
    "ShardTimeoutError",
    "InjectedFaultError",
)


def registry_by_module() -> Dict[str, Set[str]]:
    """The registry keyed by module, for per-file AST checks."""
    grouped: Dict[str, Set[str]] = {}
    for module, class_name in PICKLE_BOUNDARY:
        grouped.setdefault(module, set()).add(class_name)
    return grouped
