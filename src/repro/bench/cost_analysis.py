"""Per-step cost-ratio analysis (paper Sec. 2.3).

Sec. 2.3 argues that the cost ratio between one SSHJoin step and one SHJoin
step grows as ``O((|jA| + q − 1)^2)`` — quadratic in the number of q-grams of
the join-attribute value — and that the space overhead grows linearly
(``n·(|jA|+q−1)·p`` vs ``n·p`` pointers).

This driver sweeps the join-attribute length (by generating location strings
padded to target lengths), times a fixed number of probes with each
operator, and reports the measured time ratio together with the analytic
``(|jA|+q−1)^2`` curve so the quadratic shape can be verified.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.datagen.municipalities import generate_location_strings
from repro.datagen.variants import make_variant
from repro.engine.table import Table
from repro.engine.tuples import Schema
from repro.joins.shjoin import SHJoin
from repro.joins.sshjoin import SSHJoin

_SCHEMA = Schema(["row_id", "location"], name="cost_sweep")


@dataclass(frozen=True)
class CostRatioPoint:
    """One point of the cost-ratio sweep."""

    value_length: int
    qgram_count: int
    exact_seconds: float
    approximate_seconds: float
    measured_ratio: float
    analytic_ratio: float  # (|jA| + q - 1)^2, the paper's upper-bound shape

    def as_dict(self) -> dict:
        """Flat row for reports."""
        return {
            "value_length": self.value_length,
            "qgram_count": self.qgram_count,
            "exact_seconds": self.exact_seconds,
            "approx_seconds": self.approximate_seconds,
            "measured_ratio": self.measured_ratio,
            "analytic_(|jA|+q-1)^2": self.analytic_ratio,
        }


def _padded_values(base_values: Sequence[str], target_length: int,
                   rng: random.Random) -> List[str]:
    """Stretch or trim values to roughly ``target_length`` characters."""
    values = []
    for value in base_values:
        if len(value) >= target_length:
            values.append(value[:target_length])
            continue
        padding = "".join(
            rng.choice("ABCDEFGHILMNOPRSTUV") for _ in range(target_length - len(value) - 1)
        )
        values.append(f"{value} {padding}")
    return values


def _tables_for_length(size: int, target_length: int, variant_rate: float,
                       seed: int) -> tuple:
    rng = random.Random(seed)
    base = generate_location_strings(size, seed=seed)
    values = _padded_values(base, target_length, rng)
    left = Table(_SCHEMA, name="left")
    right = Table(_SCHEMA, name="right")
    for index, value in enumerate(values):
        left.insert_values(index, value)
        child_value = value
        if rng.random() < variant_rate:
            child_value = make_variant(value, rng)
        right.insert_values(index, child_value)
    return left, right


def cost_ratio_sweep(
    value_lengths: Sequence[int] = (12, 18, 24, 32, 40),
    table_size: int = 250,
    variant_rate: float = 0.10,
    similarity_threshold: float = 0.85,
    q: int = 3,
    seed: int = 5,
) -> List[CostRatioPoint]:
    """Measure the SSHJoin/SHJoin per-run time ratio as the value length grows."""
    points: List[CostRatioPoint] = []
    for length in value_lengths:
        left, right = _tables_for_length(table_size, length, variant_rate, seed)

        started = time.perf_counter()
        SHJoin(left, right, "location").run()
        exact_seconds = time.perf_counter() - started

        started = time.perf_counter()
        SSHJoin(
            left,
            right,
            "location",
            similarity_threshold=similarity_threshold,
            q=q,
        ).run()
        approx_seconds = time.perf_counter() - started

        grams = length + q - 1
        points.append(
            CostRatioPoint(
                value_length=length,
                qgram_count=grams,
                exact_seconds=exact_seconds,
                approximate_seconds=approx_seconds,
                measured_ratio=approx_seconds / exact_seconds
                if exact_seconds > 0
                else float("inf"),
                analytic_ratio=float(grams * grams),
            )
        )
    return points
