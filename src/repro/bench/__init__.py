"""Experiment drivers shared by the ``benchmarks/`` suite.

Each module here regenerates (the data behind) one of the paper's tables or
figures; the thin pytest-benchmark files under ``benchmarks/`` call into
these drivers and print the resulting tables.  Keeping the logic importable
means the examples, the tests and the benchmark runner all exercise the same
code paths.

* :mod:`repro.bench.harness` — run one test case under the all-exact,
  all-approximate and adaptive strategies and assemble a
  :class:`~repro.core.metrics.GainCostReport` (Fig. 6) plus the execution
  trace (Figs. 7-8).
* :mod:`repro.bench.calibration` — measure the per-state step weights and
  per-transition weights of Sec. 4.3 on the current machine.
* :mod:`repro.bench.operation_costs` — measure the elementary-operation
  counts of Table 1.
* :mod:`repro.bench.cost_analysis` — the per-step cost-ratio analysis of
  Sec. 2.3 (quadratic in the number of q-grams).
* :mod:`repro.bench.tuning` — parameter sweeps around the paper's operating
  point (Sec. 4.2).
* :mod:`repro.bench.reporting` — plain-text table formatting.
"""

from repro.bench.export import (
    fig6_rows,
    outcome_to_dict,
    outcomes_to_json,
    rows_to_csv,
)
from repro.bench.harness import (
    DEFAULT_BENCH_CHILD_SIZE,
    DEFAULT_BENCH_PARENT_SIZE,
    ExperimentOutcome,
    run_all_standard_experiments,
    run_experiment,
)
from repro.bench.calibration import WeightCalibration, calibrate_weights
from repro.bench.operation_costs import OperationCostReport, measure_operation_costs
from repro.bench.cost_analysis import CostRatioPoint, cost_ratio_sweep
from repro.bench.tuning import SweepPoint, sweep_parameter
from repro.bench.reporting import format_table

__all__ = [
    "outcome_to_dict",
    "outcomes_to_json",
    "fig6_rows",
    "rows_to_csv",
    "DEFAULT_BENCH_PARENT_SIZE",
    "DEFAULT_BENCH_CHILD_SIZE",
    "ExperimentOutcome",
    "run_experiment",
    "run_all_standard_experiments",
    "WeightCalibration",
    "calibrate_weights",
    "OperationCostReport",
    "measure_operation_costs",
    "CostRatioPoint",
    "cost_ratio_sweep",
    "SweepPoint",
    "sweep_parameter",
    "format_table",
]
