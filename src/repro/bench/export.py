"""Serialisation of experiment outcomes.

The benchmark drivers print human-readable tables; downstream analysis
(plotting the figures, diffing runs, archiving results next to
EXPERIMENTS.md) wants machine-readable artefacts instead.  This module turns
:class:`~repro.bench.harness.ExperimentOutcome` objects into plain
dictionaries and writes them as JSON or CSV.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, Iterable, List, Mapping

from repro.bench.harness import ExperimentOutcome
from repro.core.cost_model import CostModel


def outcome_to_dict(outcome: ExperimentOutcome,
                    cost_model: CostModel = None) -> Dict[str, object]:
    """Flatten one experiment outcome into a JSON-serialisable dictionary.

    The dictionary contains the Fig. 6 metrics, the Fig. 7 state breakdown,
    the Fig. 8 weighted costs, the ground-truth evaluations and the
    wall-clock timings — everything EXPERIMENTS.md reports for one test case.
    """
    report = outcome.report
    trace = outcome.adaptive.trace
    model = cost_model or CostModel()
    breakdown = model.breakdown(trace)
    return {
        "test_case": outcome.test_case,
        "spec": {
            "pattern": outcome.dataset.spec.pattern,
            "variants_in": outcome.dataset.spec.variants_in,
            "parent_size": len(outcome.dataset.parent),
            "child_size": len(outcome.dataset.child),
            "variant_rate": outcome.dataset.spec.variant_rate,
            "seed": outcome.dataset.spec.seed,
        },
        "result_sizes": {
            "exact": report.exact_result_size,
            "approximate": report.approximate_result_size,
            "adaptive": report.adaptive_result_size,
        },
        "metrics": {
            "gain": report.gain,
            "cost": report.cost,
            "efficiency": report.efficiency,
        },
        "weighted_costs": {
            "exact": report.exact_cost,
            "approximate": report.approximate_cost,
            "adaptive": report.adaptive_cost,
            "per_state": {
                state.short_label: value
                for state, value in breakdown.state_costs.items()
            },
            "transitions": breakdown.total_transition_cost,
        },
        "state_breakdown": {
            "steps_per_state": {
                state.short_label: steps
                for state, steps in trace.steps_per_state.items()
            },
            "transitions": trace.transition_count,
            "assessments": trace.assessment_count(),
            "exact_step_fraction": trace.exact_step_fraction(),
        },
        "evaluation": {
            strategy: evaluation.as_dict()
            for strategy, evaluation in outcome.evaluations.items()
        },
        "wall_clock_seconds": dict(outcome.wall_clock),
    }


def outcomes_to_json(
    outcomes: Mapping[str, ExperimentOutcome],
    path: str,
    cost_model: CostModel = None,
    indent: int = 2,
) -> None:
    """Write a mapping of test case → outcome to a JSON file."""
    payload = {
        name: outcome_to_dict(outcome, cost_model)
        for name, outcome in outcomes.items()
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=indent, sort_keys=True)


def fig6_rows(outcomes: Mapping[str, ExperimentOutcome]) -> List[Dict[str, object]]:
    """The Fig. 6 table as a list of flat rows (one per test case)."""
    return [outcome.fig6_row() for outcome in outcomes.values()]


def rows_to_csv(rows: Iterable[Mapping[str, object]], path: str) -> None:
    """Write flat rows (as produced by the ``fig*_row`` helpers) to CSV."""
    rows = list(rows)
    if not rows:
        raise ValueError("cannot write an empty row set to CSV")
    fieldnames = list(rows[0].keys())
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
