"""Experiment harness for the gain/cost evaluation (Figs. 6-8).

For one generated test case the harness runs three strategies over the same
inputs:

* the **all-exact** symmetric hash join → result size ``r`` and (by the
  Sec. 4.3 cost model) the best cost ``c``;
* the **all-approximate** symmetric set hash join → result size ``R`` and
  the worst cost ``C``;
* the **adaptive** join → result size ``r_abs``, execution trace, weighted
  cost ``c_abs``.

It then assembles the :class:`~repro.core.metrics.GainCostReport` of Fig. 6
and keeps the trace around for the Fig. 7 (state occupancy) and Fig. 8
(weighted cost breakdown) benchmarks.  Wall-clock timings of the three runs
are recorded as well, as a machine-level sanity check of the weighted model.

Experiment scale
----------------
The paper's full scale (8082 parent rows) is expensive for a pure-Python
all-approximate baseline, so the default benchmark scale is reduced to
1500 parent × 3000 child rows (the fan-out of two accidents per
municipality mirrors the paper's scenario, where the accidents table
outgrows the street atlas); the environment variables
``REPRO_BENCH_PARENT_SIZE`` and ``REPRO_BENCH_CHILD_SIZE`` override it (set
them to 8082 / 16000 to run at paper scale).  The *shape* of the results —
who wins, by what factor — is insensitive to this scale, as EXPERIMENTS.md
documents.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.cost_model import CostModel
from repro.core.metrics import GainCostReport
from repro.core.thresholds import Thresholds
from repro.datagen.testcases import (
    STANDARD_TEST_CASES,
    GeneratedDataset,
    TestCaseSpec,
    generate_test_case,
)
from repro.joins.base import JoinSide
from repro.joins.shjoin import SHJoin
from repro.joins.sshjoin import SSHJoin
from repro.linkage.evaluation import LinkageEvaluation, evaluate_pairs
from repro.runtime.config import RunConfig
from repro.runtime.parallel import run_sharded
from repro.runtime.session import AdaptiveJoinResult, JoinSession
from repro.runtime.sharding import ShardedJoinResult


def _environment_size(name: str, default: int) -> int:
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        parsed = int(value)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {value!r}") from None
    if parsed <= 0:
        raise ValueError(f"{name} must be positive, got {parsed}")
    return parsed


#: Default benchmark scale (overridable via environment, see module docstring).
DEFAULT_BENCH_PARENT_SIZE = _environment_size("REPRO_BENCH_PARENT_SIZE", 1500)
DEFAULT_BENCH_CHILD_SIZE = _environment_size("REPRO_BENCH_CHILD_SIZE", 3000)


@dataclass
class ExperimentOutcome:
    """Everything measured for one test case."""

    dataset: GeneratedDataset
    report: GainCostReport
    #: The adaptive run's result: a single-session result, or a merged
    #: :class:`ShardedJoinResult` when the experiment ran sharded (the two
    #: expose the same trace / matches / result-size surface).
    adaptive: "AdaptiveJoinResult | ShardedJoinResult"
    #: Completeness of each strategy against the generator's ground truth.
    evaluations: Dict[str, LinkageEvaluation]
    #: Wall-clock seconds per strategy.
    wall_clock: Dict[str, float]

    @property
    def test_case(self) -> str:
        """Name of the test case."""
        return self.dataset.spec.name

    def fig6_row(self) -> Dict[str, object]:
        """One column of Fig. 6 as a flat row."""
        row = self.report.as_dict()
        row["recall_exact"] = self.evaluations["exact"].recall
        row["recall_adaptive"] = self.evaluations["adaptive"].recall
        row["recall_approximate"] = self.evaluations["approximate"].recall
        return row

    def fig7_row(self) -> Dict[str, object]:
        """One group of Fig. 7 bars (step counts per state + transitions)."""
        trace = self.adaptive.trace
        row: Dict[str, object] = {"test_case": self.test_case}
        for state, steps in trace.steps_per_state.items():
            row[f"steps_{state.short_label}"] = steps
        row["transitions"] = trace.transition_count
        row["exact_step_fraction"] = trace.exact_step_fraction()
        return row

    def fig8_row(self, cost_model: Optional[CostModel] = None) -> Dict[str, object]:
        """One group of Fig. 8 bars (weighted cost per state + transition cost)."""
        model = cost_model or CostModel()
        breakdown = model.breakdown(self.adaptive.trace)
        row: Dict[str, object] = {"test_case": self.test_case}
        for state, cost in breakdown.state_costs.items():
            row[f"cost_{state.short_label}"] = cost
        row["transition_cost"] = breakdown.total_transition_cost
        row["total_cost"] = breakdown.total
        return row


def run_experiment(
    spec: TestCaseSpec,
    parent_size: Optional[int] = None,
    child_size: Optional[int] = None,
    thresholds: Optional[Thresholds] = None,
    cost_model: Optional[CostModel] = None,
    allow_source_identification: bool = True,
    dataset: Optional[GeneratedDataset] = None,
    policy: str = "mar",
    budget: Optional[float] = None,
    deadline: Optional[float] = None,
    shards: int = 1,
    backend: str = "serial",
    partitioner: str = "hash",
    handoff: str = "auto",
) -> ExperimentOutcome:
    """Run the three strategies for one test case and assemble the outcome.

    Parameters
    ----------
    spec:
        The test-case specification (pattern + variant placement).
    parent_size, child_size:
        Optional scale overrides; default to the benchmark scale.
    thresholds:
        Adaptive configuration (defaults to the paper's operating point).
    cost_model:
        Cost model used for ``c``, ``C`` and ``c_abs`` (defaults to the
        paper-calibrated weights).
    allow_source_identification:
        Forwarded to the adaptive run (False = two-state ablation).
    dataset:
        Pre-generated dataset to reuse (skips regeneration); must match the
        spec when provided.
    policy:
        Switch policy for the adaptive run (default ``"mar"``; the other
        registered policies open non-paper scenarios, e.g.
        ``"budget-greedy"``).
    budget:
        Optional relative cost budget in ``(0, 1]`` for the adaptive run.
    deadline:
        Optional wall-clock budget in seconds (the ``deadline`` policy).
    shards, backend, partitioner:
        Sharded execution of the adaptive run (``shards > 1``): the
        inputs are partitioned, one session runs per shard on ``backend``
        and the merged result is measured.  ``partitioner="gram"``
        replicates records across gram-owning shards so the adaptive
        run's recall is shard-count-independent (duplicates removed at
        merge); ``"gram-prefix"`` does the same at a lower replication
        factor.  The baselines always run unsharded — they are the
        reference costs the gain/cost report compares against.
    handoff:
        Shard-input representation for the sharded run (``"auto"`` /
        ``"pickle"`` / ``"shared-memory"``; performance knob only, see
        ARCHITECTURE.md "Shard handoff").
    """
    if shards < 1:
        raise ValueError(f"shards must be at least 1, got {shards}")
    if dataset is None:
        dataset = generate_test_case(
            spec,
            parent_size=parent_size or DEFAULT_BENCH_PARENT_SIZE,
            child_size=child_size or DEFAULT_BENCH_CHILD_SIZE,
        )
    thresholds = thresholds or Thresholds()
    model = cost_model or CostModel()
    wall_clock: Dict[str, float] = {}

    # -- all-exact baseline -------------------------------------------------------
    started = time.perf_counter()
    exact_join = SHJoin(dataset.parent, dataset.child, "location")
    exact_records = exact_join.run()
    wall_clock["exact"] = time.perf_counter() - started
    exact_pairs = sorted(exact_join.engine._emitted_pairs)
    exact_size = len(exact_records)

    # -- all-approximate baseline ---------------------------------------------------
    started = time.perf_counter()
    approx_join = SSHJoin(
        dataset.parent,
        dataset.child,
        "location",
        similarity_threshold=thresholds.theta_sim,
        q=thresholds.q,
    )
    approx_records = approx_join.run()
    wall_clock["approximate"] = time.perf_counter() - started
    approx_pairs = sorted(approx_join.engine._emitted_pairs)
    approx_size = len(approx_records)

    # -- adaptive run ---------------------------------------------------------------
    run_config = RunConfig.from_thresholds(
        thresholds,
        parent_side=JoinSide.LEFT,
        allow_source_identification=allow_source_identification,
        cost_model=model,
        policy=policy,
        budget_fraction=budget,
        deadline_seconds=deadline,
    )
    started = time.perf_counter()
    if shards > 1:
        adaptive_result = run_sharded(
            dataset.parent,
            dataset.child,
            "location",
            run_config,
            shards=shards,
            partitioner=partitioner,
            backend=backend,
            handoff=handoff,
        )
    else:
        session = JoinSession(dataset.parent, dataset.child, "location", run_config)
        adaptive_result = session.run()
    wall_clock["adaptive"] = time.perf_counter() - started

    total_steps = adaptive_result.trace.total_steps
    report = GainCostReport(
        test_case=spec.name,
        exact_result_size=exact_size,
        approximate_result_size=approx_size,
        adaptive_result_size=adaptive_result.result_size,
        exact_cost=model.all_exact_cost(total_steps),
        approximate_cost=model.all_approximate_cost(total_steps),
        adaptive_cost=model.absolute_cost(adaptive_result.trace),
    )

    truth = dataset.true_pairs
    evaluations = {
        "exact": evaluate_pairs(exact_pairs, truth),
        "approximate": evaluate_pairs(approx_pairs, truth),
        "adaptive": evaluate_pairs(adaptive_result.matched_pairs(), truth),
    }

    return ExperimentOutcome(
        dataset=dataset,
        report=report,
        adaptive=adaptive_result,
        evaluations=evaluations,
        wall_clock=wall_clock,
    )


def run_all_standard_experiments(
    parent_size: Optional[int] = None,
    child_size: Optional[int] = None,
    thresholds: Optional[Thresholds] = None,
    test_cases: Optional[List[str]] = None,
) -> Dict[str, ExperimentOutcome]:
    """Run :func:`run_experiment` for every (selected) standard test case."""
    names = test_cases or list(STANDARD_TEST_CASES)
    outcomes: Dict[str, ExperimentOutcome] = {}
    for name in names:
        outcomes[name] = run_experiment(
            STANDARD_TEST_CASES[name],
            parent_size=parent_size,
            child_size=child_size,
            thresholds=thresholds,
        )
    return outcomes
