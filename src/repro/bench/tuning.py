"""Parameter-tuning sweeps (paper Sec. 4.2).

The paper settles on one operating point (``θ_sim = 0.85``, ``δ_adapt = W =
100``, ``θ_out = 0.05``, ``θ_curpert = 2``, ``θ_pastpert ∈ [2, 5]``) after an
empirical exploration of the parameter space.  This driver repeats such an
exploration: it sweeps one parameter at a time around the operating point,
re-runs the gain/cost experiment for a chosen test case at each value and
reports gain, cost and efficiency so the sensitivity (or robustness — the
paper found θ_out, for example, to matter little) can be inspected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import run_experiment
from repro.core.thresholds import Thresholds
from repro.datagen.testcases import (
    STANDARD_TEST_CASES,
    GeneratedDataset,
    TestCaseSpec,
    generate_test_case,
)

#: Parameters that can be swept, with the Thresholds field they map to.
SWEEPABLE_PARAMETERS = {
    "theta_sim": "theta_sim",
    "delta_adapt": "delta_adapt",
    "window_size": "window_size",
    "theta_out": "theta_out",
    "theta_curpert": "theta_curpert",
    "theta_pastpert": "theta_pastpert",
}


@dataclass(frozen=True)
class SweepPoint:
    """Outcome of one parameter setting."""

    parameter: str
    value: float
    gain: float
    cost: float
    efficiency: float
    transitions: int
    adaptive_result_size: int

    def as_dict(self) -> Dict[str, object]:
        """Flat row for reports."""
        return {
            "parameter": self.parameter,
            "value": self.value,
            "gain": self.gain,
            "cost": self.cost,
            "efficiency": self.efficiency,
            "transitions": self.transitions,
            "result_size": self.adaptive_result_size,
        }


def sweep_parameter(
    parameter: str,
    values: Sequence[float],
    test_case: str = "few_high_child",
    parent_size: Optional[int] = None,
    child_size: Optional[int] = None,
    base_thresholds: Optional[Thresholds] = None,
) -> List[SweepPoint]:
    """Re-run the gain/cost experiment for each value of ``parameter``.

    The dataset is generated once and reused across settings, so the sweep
    isolates the effect of the parameter from sampling noise.
    """
    if parameter not in SWEEPABLE_PARAMETERS:
        raise ValueError(
            f"unknown parameter {parameter!r}; sweepable: {sorted(SWEEPABLE_PARAMETERS)}"
        )
    spec: TestCaseSpec = STANDARD_TEST_CASES[test_case]
    dataset: GeneratedDataset = generate_test_case(
        spec, parent_size=parent_size, child_size=child_size
    )
    base = base_thresholds or Thresholds()

    points: List[SweepPoint] = []
    for value in values:
        field_name = SWEEPABLE_PARAMETERS[parameter]
        cast_value = int(value) if field_name in ("window_size", "delta_adapt", "q") else value
        thresholds = base.with_overrides(**{field_name: cast_value})
        outcome = run_experiment(spec, thresholds=thresholds, dataset=dataset)
        points.append(
            SweepPoint(
                parameter=parameter,
                value=float(value),
                gain=outcome.report.gain,
                cost=outcome.report.cost,
                efficiency=outcome.report.efficiency,
                transitions=outcome.adaptive.trace.transition_count,
                adaptive_result_size=outcome.report.adaptive_result_size,
            )
        )
    return points
