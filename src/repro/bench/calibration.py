"""Machine-specific calibration of the cost-model weights (Sec. 4.3).

The paper determines the unit step weights ``w_i`` (one per state) and the
transition weights ``v_i`` experimentally, by timing steps and transitions
and normalising by the unit step cost of the all-exact state ``lex/rex``.
This module repeats that procedure on the current machine and
implementation:

* **step weights** — the engine is run in each of the four fixed
  configurations over the same inputs; the average per-step wall-clock time
  of each configuration, divided by the ``lex/rex`` average, gives ``w_i``;
* **transition weights** — switches into each state are forced half-way
  through a run and the catch-up time is measured, again normalised by the
  ``lex/rex`` step time.

The calibrated weights can be passed to
:class:`~repro.core.cost_model.CostModel` to recompute the Fig. 8 breakdown
with machine-measured instead of paper-reported weights; EXPERIMENTS.md
records both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.state_machine import JoinState
from repro.datagen.testcases import GeneratedDataset, TestCaseSpec, generate_test_case
from repro.engine.streams import TableStream
from repro.joins.base import JoinAttribute
from repro.joins.engine import SymmetricJoinEngine


@dataclass
class WeightCalibration:
    """Measured per-state step weights and per-transition weights."""

    state_weights: Dict[JoinState, float]
    transition_weights: Dict[JoinState, float]
    #: Raw mean step time (seconds) of the lex/rex configuration, i.e. the
    #: unit every other number is normalised by.
    unit_step_seconds: float

    def as_rows(self) -> list:
        """Rows comparing measured weights with the paper's (for reports)."""
        from repro.core.cost_model import PAPER_STATE_WEIGHTS, PAPER_TRANSITION_WEIGHTS

        rows = []
        for state in JoinState:
            rows.append(
                {
                    "state": state.label,
                    "measured_step_weight": self.state_weights[state],
                    "paper_step_weight": PAPER_STATE_WEIGHTS[state],
                    "measured_transition_weight": self.transition_weights[state],
                    "paper_transition_weight": PAPER_TRANSITION_WEIGHTS[state],
                }
            )
        return rows


def _fresh_engine(dataset: GeneratedDataset, state: JoinState,
                  similarity_threshold: float, q: int) -> SymmetricJoinEngine:
    return SymmetricJoinEngine(
        TableStream(dataset.parent),
        TableStream(dataset.child),
        JoinAttribute("location", "location"),
        similarity_threshold=similarity_threshold,
        q=q,
        left_mode=state.left_mode,
        right_mode=state.right_mode,
    )


def _measure_steps(engine: SymmetricJoinEngine, max_steps: int) -> float:
    """Average wall-clock seconds per step over at most ``max_steps`` steps."""
    executed = 0
    started = time.perf_counter()
    while executed < max_steps:
        if engine.step() is None:
            break
        executed += 1
    elapsed = time.perf_counter() - started
    return elapsed / max(executed, 1)


def _measure_transition(
    dataset: GeneratedDataset,
    target: JoinState,
    warm_up_steps: int,
    similarity_threshold: float,
    q: int,
) -> float:
    """Seconds spent switching into ``target`` after a warm-up in the opposite modes."""
    source = JoinState.LAP_RAP if target is JoinState.LEX_REX else JoinState.LEX_REX
    engine = _fresh_engine(dataset, source, similarity_threshold, q)
    executed = 0
    while executed < warm_up_steps:
        if engine.step() is None:
            break
        executed += 1
    started = time.perf_counter()
    engine.set_modes(target.left_mode, target.right_mode)
    return time.perf_counter() - started


def calibrate_weights(
    parent_size: int = 600,
    child_size: int = 400,
    max_steps: int = 400,
    similarity_threshold: float = 0.85,
    q: int = 3,
    dataset: Optional[GeneratedDataset] = None,
) -> WeightCalibration:
    """Measure state and transition weights on the current machine.

    Parameters mirror the experiment scale; the default is intentionally
    small because only *relative* times are needed and they stabilise
    quickly.
    """
    if dataset is None:
        spec = TestCaseSpec(
            name="calibration",
            pattern="uniform",
            variants_in="both",
            parent_size=parent_size,
            child_size=child_size,
            seed=97,
        )
        dataset = generate_test_case(spec)

    per_state_seconds: Dict[JoinState, float] = {}
    for state in JoinState:
        engine = _fresh_engine(dataset, state, similarity_threshold, q)
        per_state_seconds[state] = _measure_steps(engine, max_steps)

    unit = per_state_seconds[JoinState.LEX_REX] or 1e-9
    state_weights = {
        state: seconds / unit for state, seconds in per_state_seconds.items()
    }

    warm_up = min(max_steps, parent_size + child_size) // 2
    transition_weights = {
        state: _measure_transition(dataset, state, warm_up, similarity_threshold, q)
        / unit
        for state in JoinState
    }

    return WeightCalibration(
        state_weights=state_weights,
        transition_weights=transition_weights,
        unit_step_seconds=unit,
    )
