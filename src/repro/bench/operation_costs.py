"""Elementary-operation cost measurement (paper Table 1).

Table 1 of the paper gives, per quiescent-state transition (i.e. per probe),
the analytic cost of the four operation families for SHJoin vs SSHJoin:

=====================================  ===========  ==========================
operation                              SHJoin       SSHJoin
=====================================  ===========  ==========================
1. obtain q-grams                      —            ``|jA|``
2. update hash table                   1            ``|jA| + q − 1``
3. compute T(t) and counters           —            ``(|jA| + q − 1) · B_ap``
4. find matches                        ``B_ex``     ``|T(t)|``
=====================================  ===========  ==========================

This driver runs both operators over the same generated inputs, reads the
:class:`~repro.joins.base.OperationCounters` they accumulate and reports the
measured per-probe averages next to the analytic expressions evaluated with
the measured ``|jA|``, ``B_ex`` and ``B_ap``, so the reproduction of Table 1
can be checked quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.datagen.testcases import GeneratedDataset, TestCaseSpec, generate_test_case
from repro.joins.shjoin import SHJoin
from repro.joins.sshjoin import SSHJoin


@dataclass
class OperationCostReport:
    """Measured per-probe operation counts for both operators."""

    #: Average join-attribute length |jA| over both inputs.
    average_value_length: float
    q: int
    #: Average value-bucket length of the exact hash tables (B_ex).
    average_exact_bucket: float
    #: Average q-gram-bucket length of the approximate hash tables (B_ap).
    average_qgram_bucket: float
    #: Measured per-probe averages, keyed by operation name, per operator.
    shjoin: Dict[str, float]
    sshjoin: Dict[str, float]

    @property
    def grams_per_value(self) -> float:
        """``|jA| + q − 1`` evaluated with the measured average length."""
        return self.average_value_length + self.q - 1

    def analytic_rows(self) -> List[Dict[str, object]]:
        """Table 1 with the analytic expressions evaluated on measured statistics."""
        return [
            {
                "operation": "1. obtain q-grams",
                "SHJoin (analytic)": 0.0,
                "SSHJoin (analytic)": self.grams_per_value,
                "SHJoin (measured)": self.shjoin["qgrams_obtained"],
                "SSHJoin (measured)": self.sshjoin["qgrams_obtained"],
            },
            {
                "operation": "2. update hash table",
                "SHJoin (analytic)": 1.0,
                "SSHJoin (analytic)": self.grams_per_value,
                "SHJoin (measured)": self.shjoin["hash_updates"],
                "SSHJoin (measured)": self.sshjoin["hash_updates"],
            },
            {
                "operation": "3. compute T(t)",
                "SHJoin (analytic)": 0.0,
                "SSHJoin (analytic)": self.grams_per_value * self.average_qgram_bucket,
                "SHJoin (measured)": 0.0,
                "SSHJoin (measured)": self.sshjoin["candidate_scan_work"],
            },
            {
                "operation": "4. find matches",
                "SHJoin (analytic)": self.average_exact_bucket,
                "SSHJoin (analytic)": self.sshjoin["candidate_set_size"],
                "SHJoin (measured)": self.shjoin["probe_work"],
                "SSHJoin (measured)": self.sshjoin["candidate_set_size"],
            },
        ]


def _per_probe(counters, probes: int) -> Dict[str, float]:
    probes = max(probes, 1)
    return {
        "qgrams_obtained": counters.qgrams_obtained / probes,
        "hash_updates": (counters.exact_hash_updates + counters.approx_hash_updates)
        / probes,
        "candidate_scan_work": counters.candidate_scan_work / probes,
        "candidate_set_size": counters.candidate_set_size / probes,
        "probe_work": (counters.exact_probe_work + counters.approx_verifications)
        / probes,
    }


def measure_operation_costs(
    parent_size: int = 800,
    child_size: int = 500,
    similarity_threshold: float = 0.85,
    q: int = 3,
    dataset: Optional[GeneratedDataset] = None,
) -> OperationCostReport:
    """Run both operators over one dataset and collect per-probe operation counts."""
    if dataset is None:
        spec = TestCaseSpec(
            name="table1",
            pattern="uniform",
            variants_in="child",
            parent_size=parent_size,
            child_size=child_size,
            seed=23,
        )
        dataset = generate_test_case(spec)

    exact = SHJoin(dataset.parent, dataset.child, "location")
    exact.run()
    approx = SSHJoin(
        dataset.parent,
        dataset.child,
        "location",
        similarity_threshold=similarity_threshold,
        q=q,
        # This driver reproduces the *paper's* Table 1, so the measured
        # counters must come from the paper's SSJoin-style operator; the
        # fast path's Jaccard length filter (an extension that shrinks
        # |T(t)|) is switched off here and benchmarked separately in
        # benchmarks/bench_probe_fastpath.py.
        use_length_filter=False,
    )
    approx.run()

    lengths = [len(str(v)) for v in dataset.parent.column("location")]
    lengths += [len(str(v)) for v in dataset.child.column("location")]
    average_length = sum(lengths) / len(lengths)

    exact_sides = exact.engine.sides
    approx_sides = approx.engine.sides
    average_exact_bucket = sum(
        side.average_exact_bucket_length() for side in exact_sides.values()
    ) / 2.0
    average_qgram_bucket = sum(
        side.average_qgram_bucket_length() for side in approx_sides.values()
    ) / 2.0

    exact_counters = exact.operation_counters()
    approx_counters = approx.operation_counters()
    total_probes_exact = exact_counters.exact_probes
    total_probes_approx = approx_counters.approx_probes

    return OperationCostReport(
        average_value_length=average_length,
        q=q,
        average_exact_bucket=average_exact_bucket,
        average_qgram_bucket=average_qgram_bucket,
        shjoin=_per_probe(exact_counters, total_probes_exact),
        sshjoin=_per_probe(approx_counters, total_probes_approx),
    )
