"""Plain-text table formatting for benchmark output.

The benchmark drivers return lists of dictionaries ("rows"); this module
renders them as aligned text tables so the benchmark runs print something
directly comparable to the paper's tables and figure data.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
    precision: int = 3,
) -> str:
    """Render ``rows`` as an aligned plain-text table.

    Parameters
    ----------
    rows:
        A sequence of dictionaries; missing keys render as blanks.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional title printed above the table.
    precision:
        Decimal places for floating-point values.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [
        [_format_value(row.get(column, ""), precision) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in rendered
    ]
    lines = ([title] if title else []) + [header, separator] + body
    return "\n".join(lines)


def format_mapping(mapping: Mapping[str, object], title: str = "",
                   precision: int = 3) -> str:
    """Render a flat mapping as ``key: value`` lines (for single-row reports)."""
    lines = [title] if title else []
    width = max((len(str(key)) for key in mapping), default=0)
    for key, value in mapping.items():
        lines.append(f"{str(key).ljust(width)} : {_format_value(value, precision)}")
    return "\n".join(lines)
