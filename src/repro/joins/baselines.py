"""Non-adaptive baseline join algorithms.

Three baselines accompany the adaptive operator:

* :class:`NestedLoopJoin` — the textbook exact nested-loop join.  Its only
  role is as a correctness oracle: any exact join must produce the same set
  of pairs.
* :class:`NestedLoopSimilarityJoin` — the naive O(n·m) similarity join that
  compares every pair with the similarity function directly.  It is the
  correctness oracle for SSHJoin (same result set) and the illustration of
  the quadratic cost the paper wants to avoid.
* :class:`BlockingLinkageJoin` — the conventional *offline* record-linkage
  approach: both tables are first partitioned into blocks by a blocking key
  and pairwise similarity comparison only happens within blocks.  It needs
  the full tables up front (exactly the assumption the paper drops), so it
  appears here only as a baseline, not as a competitor in the streaming
  setting.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Union

from repro.engine.iterators import Operator
from repro.engine.table import Table
from repro.engine.tuples import Record, Schema
from repro.joins.base import JoinAttribute
from repro.similarity.registry import SimilarityFunction, get_similarity


def _resolve_attribute(attribute: Union[str, JoinAttribute]) -> JoinAttribute:
    if isinstance(attribute, str):
        return JoinAttribute(attribute, attribute)
    return attribute


def _join_schema(left: Table, right: Table) -> Schema:
    return left.schema.concat(right.schema, name="join")


class NestedLoopJoin(Operator):
    """Exact nested-loop join over two in-memory tables."""

    def __init__(
        self,
        left: Table,
        right: Table,
        attribute: Union[str, JoinAttribute],
        name: str = "",
    ) -> None:
        super().__init__(_join_schema(left, right), name=name or "NestedLoopJoin")
        self._left = left
        self._right = right
        self._attribute = _resolve_attribute(attribute)
        self._results: List[Record] = []
        self._cursor = 0

    def _do_open(self) -> None:
        self._results = []
        self._cursor = 0
        left_attr, right_attr = self._attribute.left, self._attribute.right
        for left_record in self._left:
            self.stats.tuples_read_left += 1
            for right_record in self._right:
                if left_record[left_attr] == right_record[right_attr]:
                    self._results.append(
                        Record.from_values(
                            self.output_schema,
                            list(left_record.values) + list(right_record.values),
                        )
                    )
        self.stats.tuples_read_right = len(self._right)

    def _do_next(self) -> Optional[Record]:
        if self._cursor >= len(self._results):
            return None
        record = self._results[self._cursor]
        self._cursor += 1
        return record


class NestedLoopSimilarityJoin(Operator):
    """Naive similarity join comparing every pair of tuples.

    Parameters
    ----------
    similarity:
        A similarity function ``(str, str) -> float`` or the name of a
        registered one; defaults to the paper's q-gram Jaccard.
    threshold:
        Minimum similarity for a pair to be part of the result.
    """

    def __init__(
        self,
        left: Table,
        right: Table,
        attribute: Union[str, JoinAttribute],
        threshold: float = 0.85,
        similarity: Union[str, SimilarityFunction] = "jaccard_qgram",
        name: str = "",
    ) -> None:
        super().__init__(
            _join_schema(left, right), name=name or "NestedLoopSimilarityJoin"
        )
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self._left = left
        self._right = right
        self._attribute = _resolve_attribute(attribute)
        self._threshold = threshold
        self._similarity = get_similarity(similarity)
        self._results: List[Record] = []
        self._cursor = 0
        self.comparisons = 0

    def _do_open(self) -> None:
        self._results = []
        self._cursor = 0
        self.comparisons = 0
        left_attr, right_attr = self._attribute.left, self._attribute.right
        for left_record in self._left:
            self.stats.tuples_read_left += 1
            left_value = str(left_record[left_attr])
            for right_record in self._right:
                self.comparisons += 1
                if (
                    self._similarity(left_value, str(right_record[right_attr]))
                    >= self._threshold
                ):
                    self._results.append(
                        Record.from_values(
                            self.output_schema,
                            list(left_record.values) + list(right_record.values),
                        )
                    )
        self.stats.tuples_read_right = len(self._right)

    def _do_next(self) -> Optional[Record]:
        if self._cursor >= len(self._results):
            return None
        record = self._results[self._cursor]
        self._cursor += 1
        return record


def default_blocking_key(value: str) -> str:
    """Default blocking key: the first four characters, upper-cased.

    Crude but standard; the accidents workload joins on strings whose
    leading region/province prefix is rarely perturbed, so this key keeps
    most true pairs in the same block.
    """
    return str(value)[:4].upper()


class BlockingLinkageJoin(Operator):
    """Offline blocking-based similarity join.

    Both inputs are partitioned by ``blocking_key`` applied to the join
    attribute; pairwise similarity comparison happens only within blocks.
    This reproduces the conventional pre-deployment record-linkage pipeline
    the paper contrasts itself with: it is fast and fairly complete, but it
    requires the full tables before any result can be produced (no
    pipelining) and misses pairs whose blocking keys disagree.
    """

    def __init__(
        self,
        left: Table,
        right: Table,
        attribute: Union[str, JoinAttribute],
        threshold: float = 0.85,
        similarity: Union[str, SimilarityFunction] = "jaccard_qgram",
        blocking_key: Callable[[str], str] = default_blocking_key,
        name: str = "",
    ) -> None:
        super().__init__(_join_schema(left, right), name=name or "BlockingLinkageJoin")
        self._left = left
        self._right = right
        self._attribute = _resolve_attribute(attribute)
        self._threshold = threshold
        self._similarity = get_similarity(similarity)
        self._blocking_key = blocking_key
        self._results: List[Record] = []
        self._cursor = 0
        self.comparisons = 0

    def _do_open(self) -> None:
        self._results = []
        self._cursor = 0
        self.comparisons = 0
        left_attr, right_attr = self._attribute.left, self._attribute.right
        blocks: Dict[str, List[Record]] = defaultdict(list)
        for left_record in self._left:
            self.stats.tuples_read_left += 1
            blocks[self._blocking_key(str(left_record[left_attr]))].append(left_record)
        for right_record in self._right:
            self.stats.tuples_read_right += 1
            right_value = str(right_record[right_attr])
            for left_record in blocks.get(self._blocking_key(right_value), ()):
                self.comparisons += 1
                if (
                    self._similarity(str(left_record[left_attr]), right_value)
                    >= self._threshold
                ):
                    self._results.append(
                        Record.from_values(
                            self.output_schema,
                            list(left_record.values) + list(right_record.values),
                        )
                    )

    def _do_next(self) -> Optional[Record]:
        if self._cursor >= len(self._results):
            return None
        record = self._results[self._cursor]
        self._cursor += 1
        return record


def hash_join_pairs(
    left: Table, right: Table, attribute: Union[str, JoinAttribute]
) -> List[tuple]:
    """Utility: the set of exactly matching (left_index, right_index) pairs.

    Used by tests as a ground-truth oracle that is independent of the
    operator implementations.
    """
    attribute = _resolve_attribute(attribute)
    index: Dict[object, List[int]] = defaultdict(list)
    for i, record in enumerate(left):
        index[record[attribute.left]].append(i)
    pairs = []
    for j, record in enumerate(right):
        for i in index.get(record[attribute.right], ()):
            pairs.append((i, j))
    return pairs
