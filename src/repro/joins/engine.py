"""The switchable symmetric-join engine.

The adaptive processor of :mod:`repro.core` does not drive two separate
operators; it drives **one** symmetric join whose per-side matching mode can
be changed between steps.  This module implements that engine.

One **step** of the engine moves the join from one quiescent state to the
next: it scans one tuple from one of the inputs (alternating while both have
tuples left, then draining the survivor), inserts it into its own side's
store and currently-maintained index, probes the opposite side according to
the scanned side's current :class:`~repro.joins.base.JoinMode`, and emits
every resulting :class:`~repro.joins.base.MatchEvent`.  Because the step
produces *all* matches of the scanned tuple before returning, the state
reached after each step is quiescent and a mode switch between steps is safe
(Sec. 2.1 of the paper).

Switching modes triggers the hash-table catch-up of Sec. 2.3: the index that
the newly selected mode probes on the opposite side is brought up to date
with the tuples scanned since that index was last current.  The engine
records each switch as a :class:`SwitchRecord` carrying the number of tuples
caught up, which the cost model turns into transition costs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, Iterator, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only (runtime wires the bus in)
    from repro.runtime.events import EventBus

from repro.engine.streams import RecordStream
from repro.engine.tuples import Record, Schema
from repro.joins.base import (
    JoinAttribute,
    JoinMode,
    JoinSide,
    MatchEvent,
    OperationCounters,
    SideState,
    StoredTuple,
)
from repro.joins.fastpath import GramInterner

#: Step-batch size used by :meth:`SymmetricJoinEngine.run_to_completion`.
_RUN_BATCH = 1024


@dataclass(slots=True)
class StepResult:
    """Everything that happened during one engine step.

    Attributes
    ----------
    step:
        1-based step number (== total tuples scanned so far).
    side:
        The input the scanned tuple came from.
    stored:
        The stored tuple created for the scanned record.
    mode:
        The matching mode in force for that side at this step.
    matches:
        The match events produced by this step (possibly empty).
    catch_up_tuples:
        Tuples re-indexed *during* this step because the probed index was
        stale (0 in steady state — switches normally do the catch-up).
    """

    step: int
    side: JoinSide
    stored: StoredTuple
    mode: JoinMode
    matches: List[MatchEvent] = field(default_factory=list)
    catch_up_tuples: int = 0


@dataclass(slots=True)
class StepBatch:
    """Aggregate of a contiguous run of engine steps.

    Published once per :meth:`SymmetricJoinEngine.run_batch` call (and once
    per :meth:`~SymmetricJoinEngine.step` as a batch of one), this is the
    event the runtime's built-in observers — monitor, trace, session
    accumulator, progress collector — consume instead of per-step
    :class:`StepResult` objects.  Batches never span a mode switch, so the
    two ``*_mode`` fields describe every step in the batch.

    Every executed step is covered by exactly one published ``StepBatch``:
    either the aggregate of a fast-path ``run_batch`` or a batch-of-one from
    ``step``.  ``run_batch`` falls back to per-step execution (publishing
    batches of one) whenever the bus has ``StepResult`` subscribers, so
    batch-level observers can never double-count.

    Attributes
    ----------
    first_step:
        1-based number of the first step in the batch.
    count:
        Number of steps covered (≥ 1; empty batches are never published).
    left_steps, right_steps:
        How many of those steps scanned the left / right input
        (``left_steps + right_steps == count``).
    left_mode, right_mode:
        The per-side matching modes in force throughout the batch.
    match_events:
        All match events produced by the batch, flat, in emission order;
        each event carries its own ``step``.
    catch_up_tuples:
        Total tuples re-indexed mid-step because a probed index was stale
        (0 in steady state).
    sides:
        Per-step scan sides, populated only when the two sides run in
        *different* modes (the monitor then needs the per-step scan side to
        attribute its approximate-activity window); ``None`` otherwise.
    """

    first_step: int
    count: int
    left_steps: int
    right_steps: int
    left_mode: JoinMode
    right_mode: JoinMode
    match_events: List[MatchEvent] = field(default_factory=list)
    catch_up_tuples: int = 0
    sides: Optional[Tuple[JoinSide, ...]] = None

    @property
    def last_step(self) -> int:
        """1-based number of the final step in the batch."""
        return self.first_step + self.count - 1


@dataclass(frozen=True, slots=True)
class SwitchRecord:
    """One adaptive mode switch performed by the engine."""

    step: int
    side: JoinSide
    previous_mode: JoinMode
    new_mode: JoinMode
    catch_up_tuples: int


class SymmetricJoinEngine:
    """A symmetric hash join whose per-side matching mode can change at any step.

    Parameters
    ----------
    left, right:
        The two input streams.
    attribute:
        The join attribute pair.
    similarity_threshold:
        ``θ_sim``: the approximate-match threshold.  By default a candidate
        matches when it shares at least ``⌈θ_sim · g⌉`` q-grams with the
        probe value (``g`` = probe gram count), the paper's operator
        semantics; with ``verify_jaccard=True`` the full set-Jaccard test is
        applied instead.
    q:
        q-gram width.
    left_mode, right_mode:
        Initial matching modes (the adaptive algorithm starts both EXACT).
    verify_jaccard:
        Apply the strict Jaccard test on top of the shared-gram counter
        test (see :meth:`repro.joins.base.SideState.probe_qgram`).
    use_prefix_filter:
        Forwarded to the q-gram probe; False disables the reverse-frequency
        prefix optimisation (ablation).
    use_length_filter:
        Forwarded to the q-gram probe; False disables the Jaccard length
        filter layered under the prefix filter (ablation).  Either way the
        match set is unchanged (see
        :meth:`repro.joins.base.SideState.probe_qgram`).
    gram_verification:
        How probes recover a candidate's shared-gram count: ``"bitset"``,
        ``"array"`` (sorted gram-id intersections) or ``"auto"``
        (bitsets until the gram vocabulary exceeds
        :data:`repro.joins.base.BITSET_VOCAB_LIMIT`).  Matches and
        counters are identical in every mode.
    scan_batch:
        How many records :meth:`step` pulls from an input stream at a time
        into a per-side read-ahead buffer.  Bulk pulls amortise the
        per-record stream dispatch; scheduling (strict alternation while
        both inputs last) and every per-step observable are unaffected.
        Only streams advertising ``supports_bulk_pull`` (in-memory sources)
        are read ahead — lazy/live streams are always pulled one record at
        a time so the join never blocks waiting for future input.  ``1``
        disables read-ahead entirely.
    eager_indexing:
        When True both hash indexes of both sides are kept current at every
        step, so switches never need a catch-up.  This is the "pessimistic"
        alternative the paper rejects (Sec. 2.3) because it taxes the exact
        phases; exposed for the corresponding ablation benchmark.
    deduplicate:
        When true (default) a pair of tuples is emitted at most once even
        if mode switches would make it discoverable twice; this enforces
        the set semantics of the join result.
    bus:
        Optional :class:`~repro.runtime.events.EventBus` the engine
        publishes onto: every :class:`StepResult` (after the step
        completes, only via :meth:`step` / :meth:`run_steps` — the
        :meth:`run_batch` fast path skips per-step events entirely when
        nothing subscribes to them), every
        :class:`~repro.joins.base.MatchEvent` (only when the bus has
        ``MatchEvent`` subscribers — the hot loop never pays for
        unobserved matches), one :class:`StepBatch` aggregate per executed
        batch (or per step, as a batch of one) and every
        :class:`SwitchRecord` performed by :meth:`set_mode`.  ``None``
        (the default) keeps the engine observer-free, as the non-adaptive
        operators use it.
    """

    def __init__(
        self,
        left: RecordStream,
        right: RecordStream,
        attribute: JoinAttribute,
        similarity_threshold: float = 0.85,
        q: int = 3,
        left_mode: JoinMode = JoinMode.EXACT,
        right_mode: JoinMode = JoinMode.EXACT,
        padded_qgrams: bool = True,
        verify_jaccard: bool = False,
        use_prefix_filter: bool = True,
        use_length_filter: bool = True,
        gram_verification: str = "auto",
        scan_batch: int = 32,
        eager_indexing: bool = False,
        deduplicate: bool = True,
        bus: Optional["EventBus"] = None,
    ) -> None:
        if not 0.0 < similarity_threshold <= 1.0:
            raise ValueError(
                f"similarity threshold must be in (0, 1], got {similarity_threshold}"
            )
        if scan_batch < 1:
            raise ValueError(f"scan_batch must be at least 1, got {scan_batch}")
        self._streams: Dict[JoinSide, RecordStream] = {
            JoinSide.LEFT: left,
            JoinSide.RIGHT: right,
        }
        self.attribute = attribute
        self.similarity_threshold = similarity_threshold
        self.q = q
        # One interner for both sides: a value interned when stored on one
        # side is a tokenisation-cache hit when it probes the other.
        interner = GramInterner(q=q, padded=padded_qgrams)
        self.sides: Dict[JoinSide, SideState] = {
            JoinSide.LEFT: SideState(
                JoinSide.LEFT,
                attribute.left,
                q=q,
                padded_qgrams=padded_qgrams,
                interner=interner,
                gram_verification=gram_verification,
            ),
            JoinSide.RIGHT: SideState(
                JoinSide.RIGHT,
                attribute.right,
                q=q,
                padded_qgrams=padded_qgrams,
                interner=interner,
                gram_verification=gram_verification,
            ),
        }
        self.modes: Dict[JoinSide, JoinMode] = {
            JoinSide.LEFT: left_mode,
            JoinSide.RIGHT: right_mode,
        }
        self.verify_jaccard = verify_jaccard
        self.use_prefix_filter = use_prefix_filter
        self.use_length_filter = use_length_filter
        self._scan_batch = scan_batch
        self._scan_buffers: Dict[JoinSide, Deque[Record]] = {
            JoinSide.LEFT: deque(),
            JoinSide.RIGHT: deque(),
        }
        self.eager_indexing = eager_indexing
        self._deduplicate = deduplicate
        self.bus = bus
        # Hot-path channels: live handler lists cached once (see
        # EventBus.channel); an engine without a bus publishes nothing.
        if bus is not None:
            self._step_channel = bus.channel(StepResult)
            self._match_channel = bus.channel(MatchEvent)
            self._batch_channel = bus.channel(StepBatch)
        else:
            self._step_channel = None
            self._match_channel = None
            self._batch_channel = None
        self._emitted_pairs: Set[Tuple[int, int]] = set()
        self._next_scan = JoinSide.LEFT
        self._step = 0
        self._matches_emitted = 0
        self.switches: List[SwitchRecord] = []
        self.output_schema: Schema = self._streams[JoinSide.LEFT].schema.concat(
            self._streams[JoinSide.RIGHT].schema, name="join"
        )
        # The index each side must keep current depends on the *other*
        # side's mode; make the initial configuration consistent.
        for side in JoinSide:
            self.sides[side].index_for_mode(self.modes[side.other])

    # -- public state ------------------------------------------------------------

    @property
    def step_count(self) -> int:
        """Number of steps executed so far (== tuples scanned)."""
        return self._step

    @property
    def matches_emitted(self) -> int:
        """Number of matched pairs emitted so far (the monitor's ``O_t``)."""
        return self._matches_emitted

    @property
    def exhausted(self) -> bool:
        """True when both inputs are exhausted (and no read-ahead remains)."""
        return all(stream.exhausted for stream in self._streams.values()) and not any(
            self._scan_buffers.values()
        )

    def scanned(self, side: JoinSide) -> int:
        """Number of tuples scanned from ``side`` so far."""
        return self.sides[side].size

    def mode(self, side: JoinSide) -> JoinMode:
        """Current matching mode of ``side``."""
        return self.modes[side]

    def counters(self) -> OperationCounters:
        """Merged elementary-operation counters of both sides."""
        return self.sides[JoinSide.LEFT].counters.merge(
            self.sides[JoinSide.RIGHT].counters
        )

    # -- adaptive control ----------------------------------------------------------

    def set_mode(self, side: JoinSide, mode: JoinMode) -> Optional[SwitchRecord]:
        """Change the matching mode of ``side``; perform index catch-up.

        Returns the :class:`SwitchRecord` describing the switch, or ``None``
        if the side was already in the requested mode.  Safe to call between
        any two steps (every inter-step state is quiescent).
        """
        previous = self.modes[side]
        if previous is mode:
            return None
        self.modes[side] = mode
        # Tuples scanned from `side` probe the OTHER side's index; that
        # index must now be made current for the new mode.
        caught_up = self.sides[side.other].index_for_mode(mode)
        record = SwitchRecord(
            step=self._step,
            side=side,
            previous_mode=previous,
            new_mode=mode,
            catch_up_tuples=caught_up,
        )
        self.switches.append(record)
        if self.bus is not None:
            self.bus.publish(record)
        return record

    def set_modes(
        self, left_mode: JoinMode, right_mode: JoinMode
    ) -> List[SwitchRecord]:
        """Set both sides' modes; return the switches actually performed."""
        performed = []
        for side, mode in ((JoinSide.LEFT, left_mode), (JoinSide.RIGHT, right_mode)):
            switch = self.set_mode(side, mode)
            if switch is not None:
                performed.append(switch)
        return performed

    # -- execution ---------------------------------------------------------------

    def step(self) -> Optional[StepResult]:
        """Execute one step (one quiescent-state transition).

        Returns ``None`` when both inputs are exhausted, otherwise the
        :class:`StepResult` for the scanned tuple.
        """
        side, record = self._scan_next()
        if record is None:
            return None
        self._step += 1
        own = self.sides[side]
        other = self.sides[side.other]
        stored = own.add(record)
        if self.eager_indexing:
            # Pessimistic maintenance: keep every index of both sides current.
            own.catch_up_exact()
            own.catch_up_qgram()
            other.catch_up_exact()
            other.catch_up_qgram()
            catch_up = 0
        else:
            # The scanned tuple joins the index its own side maintains for
            # the opposite side's probes.
            own.index_for_mode(self.modes[side.other])
            # Make sure the index we are about to probe is current (normally
            # a no-op; non-zero only if a caller changed modes without
            # set_mode).
            catch_up = other.index_for_mode(self.modes[side])
        matches = self._probe(side, stored)
        result = StepResult(
            step=self._step,
            side=side,
            stored=stored,
            mode=self.modes[side],
            matches=matches,
            catch_up_tuples=catch_up,
        )
        step_channel = self._step_channel
        if step_channel is not None:
            for handler in step_channel:
                handler(result)
            if matches and self._match_channel:
                match_channel = self._match_channel
                for event in matches:
                    for handler in match_channel:
                        handler(event)
        batch_channel = self._batch_channel
        if batch_channel:
            left_mode = self.modes[JoinSide.LEFT]
            right_mode = self.modes[JoinSide.RIGHT]
            hybrid = left_mode is not right_mode
            batch = StepBatch(
                first_step=result.step,
                count=1,
                left_steps=1 if side is JoinSide.LEFT else 0,
                right_steps=1 if side is JoinSide.RIGHT else 0,
                left_mode=left_mode,
                right_mode=right_mode,
                match_events=matches,
                catch_up_tuples=catch_up,
                sides=(side,) if hybrid else None,
            )
            for handler in batch_channel:
                handler(batch)
        return result

    def run_steps(self, limit: int) -> List[StepResult]:
        """Execute up to ``limit`` steps and return their results.

        The batched counterpart of :meth:`step`: the returned list is
        shorter than ``limit`` exactly when the inputs ran dry.  Per-step
        semantics are untouched — the engine passes through the same
        quiescent states in the same order — batching merely amortises the
        per-tuple dispatch for whole-input consumers (the adaptive
        processor's ``run``, :meth:`run_to_completion`, the CLI ``link``
        command and the bench harness).  Mode switches remain legal between
        batches, never inside one.
        """
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        results: List[StepResult] = []
        append = results.append
        step = self.step
        for _ in range(limit):
            result = step()
            if result is None:
                break
            append(result)
        return results

    def run_batch(self, limit: int) -> Optional[StepBatch]:
        """Execute up to ``limit`` steps as one amortised batch.

        The fast path of the runtime: when the bus has no ``StepResult``
        subscribers (the common case — the session's built-in observers all
        consume :class:`StepBatch`), the loop builds **no** per-step
        ``StepResult`` objects at all; per-step work is the scan, the index
        insert and the probe, nothing else.  Match events are still
        published one by one (in emission order) when ``MatchEvent`` has
        subscribers, and the aggregate ``StepBatch`` is published once at
        the end.

        When the bus *does* have ``StepResult`` subscribers, the batch is
        executed via :meth:`run_steps` so every per-step observable —
        ``StepResult`` publication order, batch-of-one ``StepBatch``
        events — is preserved exactly; the returned aggregate is then built
        from the per-step results and **not** re-published (each step
        already published its own batch-of-one).

        Returns ``None`` when the inputs are exhausted (no step executed).
        Mode switches remain legal between batches, never inside one.
        """
        if limit < 1:
            raise ValueError(f"limit must be at least 1, got {limit}")
        if self._step_channel:
            results = self.run_steps(limit)
            if not results:
                return None
            left_steps = 0
            match_events: List[MatchEvent] = []
            catch_up_total = 0
            for result in results:
                if result.side is JoinSide.LEFT:
                    left_steps += 1
                if result.matches:
                    match_events.extend(result.matches)
                catch_up_total += result.catch_up_tuples
            left_mode = self.modes[JoinSide.LEFT]
            right_mode = self.modes[JoinSide.RIGHT]
            return StepBatch(
                first_step=results[0].step,
                count=len(results),
                left_steps=left_steps,
                right_steps=len(results) - left_steps,
                left_mode=left_mode,
                right_mode=right_mode,
                match_events=match_events,
                catch_up_tuples=catch_up_total,
                sides=tuple(result.side for result in results)
                if left_mode is not right_mode
                else None,
            )
        modes = self.modes
        left_mode = modes[JoinSide.LEFT]
        right_mode = modes[JoinSide.RIGHT]
        hybrid = left_mode is not right_mode
        match_channel = self._match_channel
        sides_map = self.sides
        scan_next = self._scan_next
        probe = self._probe
        eager = self.eager_indexing
        first_step = self._step + 1
        count = 0
        left_steps = 0
        catch_up_total = 0
        match_events: List[MatchEvent] = []
        scan_sides: Optional[List[JoinSide]] = [] if hybrid else None
        for _ in range(limit):
            side, record = scan_next()
            if record is None:
                break
            self._step += 1
            own = sides_map[side]
            other = sides_map[side.other]
            stored = own.add(record)
            if eager:
                own.catch_up_exact()
                own.catch_up_qgram()
                other.catch_up_exact()
                other.catch_up_qgram()
            else:
                own.index_for_mode(modes[side.other])
                catch_up_total += other.index_for_mode(modes[side])
            matches = probe(side, stored)
            if matches:
                match_events.extend(matches)
                if match_channel:
                    for event in matches:
                        for handler in match_channel:
                            handler(event)
            count += 1
            if side is JoinSide.LEFT:
                left_steps += 1
            if hybrid:
                scan_sides.append(side)
        if not count:
            return None
        batch = StepBatch(
            first_step=first_step,
            count=count,
            left_steps=left_steps,
            right_steps=count - left_steps,
            left_mode=left_mode,
            right_mode=right_mode,
            match_events=match_events,
            catch_up_tuples=catch_up_total,
            sides=tuple(scan_sides) if hybrid else None,
        )
        batch_channel = self._batch_channel
        if batch_channel:
            for handler in batch_channel:
                handler(batch)
        return batch

    def run_to_completion(self) -> List[MatchEvent]:
        """Run every remaining step and return all match events produced."""
        events: List[MatchEvent] = []
        extend = events.extend
        while True:
            batch = self.run_batch(_RUN_BATCH)
            if batch is None:
                return events
            if batch.match_events:
                extend(batch.match_events)
            if batch.count < _RUN_BATCH:
                return events

    def iter_steps(self) -> Iterator[StepResult]:
        """Iterate over the remaining steps."""
        while True:
            result = self.step()
            if result is None:
                return
            yield result

    # -- internals ---------------------------------------------------------------

    def _scan_next(self) -> Tuple[JoinSide, Optional[Record]]:
        """Pick the next input to scan (alternating), pull one record.

        Records are pulled from the streams through per-side read-ahead
        buffers of ``scan_batch`` records (bulk pull); the schedule — strict
        alternation while both inputs last, then draining the survivor — is
        identical to pulling one record at a time.
        """
        first = self._next_scan
        second = first.other
        for side in (first, second):
            buffer = self._scan_buffers[side]
            if not buffer:
                stream = self._streams[side]
                if stream.exhausted:
                    continue
                if stream.supports_bulk_pull and self._scan_batch > 1:
                    buffer.extend(stream.next_records(self._scan_batch))
                    if not buffer:
                        continue
                else:
                    # Lazy/live source: never read ahead — asking for a
                    # batch would block until the producer yields it all.
                    record = stream.next_record()
                    if record is None:
                        continue
                    self._next_scan = side.other
                    return side, record
            self._next_scan = side.other
            return side, buffer.popleft()
        return first, None

    def _probe(self, side: JoinSide, stored: StoredTuple) -> List[MatchEvent]:
        """Probe the opposite side with ``stored`` under ``side``'s mode."""
        mode = self.modes[side]
        other = self.sides[side.other]
        events: List[MatchEvent] = []
        if mode is JoinMode.EXACT:
            partners = [(p, 1.0) for p in other.probe_exact(stored.value)]
        else:
            partners = other.probe_qgram(
                stored.value,
                self.similarity_threshold,
                verify_jaccard=self.verify_jaccard,
                use_prefix_filter=self.use_prefix_filter,
                use_length_filter=self.use_length_filter,
            )
        # First pass: record exact-value matches on the flags, so that the
        # evidence reasoning below sees the complete picture for this step
        # (a probe that matches one stored tuple exactly and another only
        # approximately should blame the approximate partner, regardless of
        # the order in which the two partners come out of the hash table).
        for partner, _ in partners:
            if partner.value == stored.value:
                stored.matched_exactly = True
                partner.matched_exactly = True

        for partner, similarity in partners:
            exact_value = partner.value == stored.value
            if exact_value:
                similarity = 1.0
            evidence: Optional[JoinSide] = None
            if not exact_value:
                if partner.matched_exactly:
                    # Sec. 3.3: the stored partner already matched exactly
                    # with some earlier tuple, so the freshly scanned
                    # (probing) tuple is the variant — the probing side is a
                    # source of variants.
                    evidence = side
                elif stored.matched_exactly:
                    # Mirror image of the same reasoning: the probing tuple
                    # is known-good (it has an exact partner), so the stored
                    # tuple must be the variant and the *stored* side is the
                    # source.  The paper spells out only the first case; this
                    # symmetric completion is documented in DESIGN.md.
                    evidence = side.other
            left, right = (
                (stored, partner) if side is JoinSide.LEFT else (partner, stored)
            )
            event = MatchEvent(
                step=self._step,
                probe_side=side,
                mode=mode,
                left=left,
                right=right,
                similarity=similarity,
                exact_value_match=exact_value,
                variant_evidence=evidence,
            )
            if self._deduplicate:
                key = event.pair_key()
                if key in self._emitted_pairs:
                    continue
                self._emitted_pairs.add(key)
            events.append(event)
        self._matches_emitted += len(events)
        self.sides[side].counters.matches_emitted += len(events)
        return events
