"""Physical join operators.

* :mod:`repro.joins.base` — shared machinery of the symmetric joins: the
  per-side tuple store with its two lazily-maintained hash indexes (on
  attribute values and on q-grams), the match-event model and the operation
  counters used to reproduce Table 1 of the paper.
* :mod:`repro.joins.engine` — the switchable symmetric-join engine that the
  adaptive processor drives step by step (one step = one quiescent-state to
  quiescent-state transition).
* :mod:`repro.joins.shjoin` — the exact symmetric hash join (SHJoin) as a
  pipelined iterator operator.
* :mod:`repro.joins.sshjoin` — the approximate symmetric set hash join
  (SSHJoin), the pipelined re-implementation of SSJoin.
* :mod:`repro.joins.baselines` — non-adaptive baselines: nested-loop exact
  and similarity joins and an offline blocking linkage join.
"""

from repro.joins.base import (
    JoinAttribute,
    JoinMode,
    JoinSide,
    MatchEvent,
    OperationCounters,
    SideState,
    StoredTuple,
)
from repro.joins.engine import StepResult, SwitchRecord, SymmetricJoinEngine
from repro.joins.shjoin import SHJoin
from repro.joins.sshjoin import SSHJoin
from repro.joins.baselines import (
    BlockingLinkageJoin,
    NestedLoopJoin,
    NestedLoopSimilarityJoin,
)

__all__ = [
    "JoinAttribute",
    "JoinMode",
    "JoinSide",
    "MatchEvent",
    "OperationCounters",
    "SideState",
    "StoredTuple",
    "SymmetricJoinEngine",
    "StepResult",
    "SwitchRecord",
    "SHJoin",
    "SSHJoin",
    "NestedLoopJoin",
    "NestedLoopSimilarityJoin",
    "BlockingLinkageJoin",
]
