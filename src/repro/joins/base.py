"""Shared machinery of the symmetric join operators.

Both SHJoin (exact) and SSHJoin (approximate) are *symmetric* hash joins:
every input tuple is stored on its own side and used to probe the hash
structure of the opposite side, so results stream out without waiting for
either input to finish.  The two operators differ only in **which hash
structure** is probed:

* the exact operator hashes whole join-attribute values (one bucket entry
  per tuple);
* the approximate operator hashes the *q-grams* of the join-attribute value
  (one bucket entry per (gram, tuple) pair) and matches tuples whose q-gram
  Jaccard similarity reaches a threshold.

The adaptive algorithm needs to switch between the two mid-flight, which is
why a side keeps **both** indexes but only maintains the one currently in
use; at a switch the lagging index is *caught up* with the tuples inserted
since it was last current (Sec. 2.3 of the paper, "Cost of Switching
Operators").  :class:`SideState` encapsulates all of this per-input-side
bookkeeping.

This module also defines:

* :class:`MatchEvent` — one matched pair with its similarity and provenance
  (which side probed, through which operator), consumed by the MAR monitor;
* :class:`OperationCounters` — the elementary-operation counts of Table 1
  (q-grams obtained, hash updates, candidate-set work, matches found);
* :class:`StoredTuple` — a stored input tuple with the "matched at least
  once exactly" flag of Sec. 3.3 used to attribute variants to a side.
"""

from __future__ import annotations

import enum
import math
from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine.tuples import Record, Schema
from repro.joins.fastpath import (
    GramInterner,
    bits_to_sorted_ids,
    jaccard_length_bounds,
    sorted_intersection_count,
)
from repro.kernels import create_kernel, resolve_gram_verification
from repro.similarity.setsim import jaccard_from_shared

#: Upper bound on cached frequency-ordered probe plans per side; the cache
#: is cleared wholesale when it fills (plans are cheap to rebuild).
_PLAN_CACHE_LIMIT = 8192

#: Gram-vocabulary size past which ``gram_verification="auto"`` abandons
#: bitset verification for sorted gram-id array intersections: a bitset
#: AND costs O(vocabulary / machine word) per candidate, the array walk
#: O(the two values' gram counts) — the crossover sits around a few
#: thousand interned grams (huge alphabets, q ≥ 4).
BITSET_VOCAB_LIMIT = 4096

#: Accepted ``gram_verification`` modes of :class:`SideState`.  The
#: ``numpy-*`` modes run the columnar kernels of :mod:`repro.kernels`
#: (falling back to their pure-Python twin when numpy is absent);
#: ``auto`` deliberately selects between the dependency-free modes only,
#: so its flip semantics are identical with or without numpy installed.
GRAM_VERIFICATION_MODES = ("auto", "bitset", "array", "numpy-bitset", "numpy-array")

#: Filtered approximate probes observed before the length filter's
#: usefulness is judged (see ``SideState._note_filter_outcome``).
LENGTH_FILTER_SAMPLE_PROBES = 64

#: Minimum fraction of scanned bucket entries the length filter must
#: reject to keep paying its per-entry bounds test; below this the filter
#: auto-disables (sticky), leaving the match set untouched — the filter
#: only ever removes candidates that cannot pass the match decision.
LENGTH_FILTER_MIN_REJECT_RATE = 0.02


class JoinSide(enum.Enum):
    """The two inputs of a symmetric join."""

    LEFT = "left"
    RIGHT = "right"

    @property
    def other(self) -> "JoinSide":
        """The opposite side."""
        return JoinSide.RIGHT if self is JoinSide.LEFT else JoinSide.LEFT


class JoinMode(enum.Enum):
    """How tuples *scanned from* a given input are matched.

    ``EXACT``
        The scanned tuple probes the opposite side's value-hash table
        (SHJoin behaviour).
    ``APPROXIMATE``
        The scanned tuple probes the opposite side's q-gram hash table and
        matches on Jaccard similarity (SSHJoin behaviour).
    """

    EXACT = "exact"
    APPROXIMATE = "approximate"


@dataclass(frozen=True)
class JoinAttribute:
    """The pair of attribute names being joined (left attribute, right attribute)."""

    left: str
    right: str

    def for_side(self, side: JoinSide) -> str:
        """The attribute name on ``side``."""
        return self.left if side is JoinSide.LEFT else self.right


@dataclass(slots=True)
class StoredTuple:
    """One input tuple retained in a side's tuple store.

    A slotted dataclass: one instance exists per scanned tuple, so the
    per-instance ``__dict__`` the default layout would carry is pure
    overhead on the hot path.  The q-gram set of the value is *not* stored
    here — it is materialised lazily by the side's q-gram catch-up and
    cached in the side state, so tuples scanned during exact-only phases
    never pay for tokenisation.

    Attributes
    ----------
    record:
        The original record.
    value:
        The (string) join-attribute value, extracted once at insertion.
    ordinal:
        Position of the tuple in its side's arrival order (0-based).
    matched_exactly:
        The flag of Sec. 3.3: set when this tuple has taken part in at
        least one *exact* match, and used to attribute later approximate
        matches to the probing side.
    """

    record: Record
    value: str
    ordinal: int
    matched_exactly: bool = False


@dataclass
class OperationCounters:
    """Elementary-operation counts (paper Table 1).

    The four operation families of Table 1 are tracked separately for the
    exact and the approximate operator so the benchmark for Table 1 can
    report measured counts next to the paper's analytic expressions.
    """

    #: Operation 1 — q-grams computed while probing/inserting (approx only).
    qgrams_obtained: int = 0
    #: Operation 2 — hash-table bucket insertions (1 per tuple exact,
    #: one per gram approximate).
    exact_hash_updates: int = 0
    approx_hash_updates: int = 0
    #: Operation 3 — work done building the candidate set T(t): one unit per
    #: bucket entry scanned during an approximate probe.
    candidate_scan_work: int = 0
    #: Size of the candidate sets |T(t)| accumulated over all approximate probes.
    candidate_set_size: int = 0
    #: Operation 4 — matches examined: bucket entries scanned by exact
    #: probes, candidate verifications by approximate probes.
    exact_probe_work: int = 0
    approx_verifications: int = 0
    #: Probe counts, to turn the totals above into per-probe averages.
    exact_probes: int = 0
    approx_probes: int = 0
    #: Matches actually emitted.
    matches_emitted: int = 0

    def merge(self, other: "OperationCounters") -> "OperationCounters":
        """Return a new counter object summing this one and ``other``."""
        merged = OperationCounters()
        for name in vars(merged):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (used by the benchmark reports)."""
        return dict(vars(self))


@dataclass(frozen=True, slots=True)
class MatchEvent:
    """One matched tuple pair, as observed by the monitor.

    Slotted like :class:`StoredTuple` (one event per emitted pair), and
    deliberately lazy: the joined output record is only materialised when
    :meth:`output_record` is called, so monitor-only consumers never build
    it.

    Attributes
    ----------
    step:
        Join step (quiescent-state count) at which the pair was produced.
    probe_side:
        The side whose freshly scanned tuple triggered the match.
    mode:
        Operator through which the match was found.
    left, right:
        The stored tuples of the pair, always reported in (left, right)
        order regardless of which side probed.
    similarity:
        Join-attribute similarity of the pair: 1.0 for value-equal pairs,
        the Jaccard q-gram similarity otherwise.
    exact_value_match:
        Whether the two join-attribute values are identical.
    variant_evidence:
        The side that the Sec. 3.3 reasoning blames for the mismatch, when
        such evidence exists (the stored partner had previously matched
        exactly, so the *probing* tuple must be the variant); ``None``
        otherwise.
    """

    step: int
    probe_side: JoinSide
    mode: JoinMode
    left: StoredTuple
    right: StoredTuple
    similarity: float
    exact_value_match: bool
    variant_evidence: Optional[JoinSide] = None

    def output_record(self, output_schema: Schema) -> Record:
        """Materialise the joined output record for this pair."""
        values = list(self.left.record.values) + list(self.right.record.values)
        return Record.from_values(output_schema, values)

    def pair_key(self) -> Tuple[int, int]:
        """A stable identity for the pair (left ordinal, right ordinal)."""
        return (self.left.ordinal, self.right.ordinal)


class SideState:
    """Per-input-side state of a switchable symmetric join.

    Holds the tuple store (all tuples scanned so far from this side) plus
    the two hash indexes over those tuples:

    * ``exact`` — join-attribute value → list of tuple ordinals (the SHJoin
      hash table of Fig. 3, left);
    * ``qgram`` — interned q-gram id → ``array('i')`` of tuple ordinals (the
      SSHJoin hash table of Fig. 3, right), with per-gram frequencies.  See
      :mod:`repro.joins.fastpath` for the interner and the probe fast path.

    Each index remembers how many stored tuples it has absorbed
    (``*_synced``).  Indexing is lazy: only the index the opposite side is
    currently probing gets updated tuple-by-tuple; the other one lags and is
    brought up to date by :meth:`catch_up_exact` / :meth:`catch_up_qgram`
    when an adaptive switch requires it.  The number of tuples indexed
    during such a catch-up is exactly the switch cost of Sec. 2.3.
    """

    def __init__(
        self,
        side: JoinSide,
        attribute: str,
        q: int = 3,
        padded_qgrams: bool = True,
        interner: Optional[GramInterner] = None,
        gram_verification: str = "auto",
        bitset_vocab_limit: Optional[int] = None,
    ) -> None:
        if q <= 0:
            raise ValueError(f"q must be positive, got {q}")
        if gram_verification not in GRAM_VERIFICATION_MODES:
            raise ValueError(
                f"gram_verification must be one of {GRAM_VERIFICATION_MODES}, "
                f"got {gram_verification!r}"
            )
        self.side = side
        self.attribute = attribute
        self.q = q
        self.padded_qgrams = padded_qgrams
        if interner is None:
            interner = GramInterner(q=q, padded=padded_qgrams)
        elif interner.q != q or interner.padded != padded_qgrams:
            raise ValueError(
                f"interner tokenises (q={interner.q}, padded={interner.padded}), "
                f"side expects (q={q}, padded={padded_qgrams})"
            )
        #: Shared gram↔id mapping; the engine passes one interner to both
        #: sides so a value interned at insertion is a cache hit when it
        #: probes the opposite side.
        self.interner = interner
        self.tuples: List[StoredTuple] = []
        self._exact_index: Dict[str, List[int]] = {}
        self._exact_synced = 0
        # q-gram index over dense gram ids: gram id → array of ordinals.
        self._qgram_index: Dict[int, array] = {}
        self._qgram_synced = 0
        # Cached q-gram bitsets of indexed tuples, keyed by ordinal: bit
        # ``i`` is set iff the value contains the gram with interned id
        # ``i``.  Probes recover the exact shared-gram count of a candidate
        # with one C-level ``(probe_bits & stored_bits).bit_count()``
        # instead of per-gram counter bumping.
        self._gram_bits: Dict[int, int] = {}
        # Sorted gram-id arrays per ordinal, the array-verification twin of
        # ``_gram_bits``: exactly one of the two stores is populated at a
        # time (``_array_verification`` selects which).
        self._gram_arrays: Dict[int, array] = {}
        # Verification-mode selection (see PERFORMANCE.md "Known scale
        # limits"): "bitset" and "array" are fixed; "auto" starts on
        # bitsets and flips to arrays — converting the stored bitsets —
        # the first catch-up that finds the interner vocabulary above the
        # limit.  The flip happens only inside ``catch_up_qgram`` (which
        # advances the plan-cache stamp), so cached probe plans can never
        # carry a verify key of the wrong kind for longer than one probe
        # (the per-plan verify-kind tag guards even that).  The "numpy-*"
        # modes route verification through a columnar kernel
        # (:mod:`repro.kernels`); when numpy is missing they resolve to
        # their pure-Python twins, so requesting them never fails.
        self.gram_verification = gram_verification
        self.effective_gram_verification = resolve_gram_verification(
            gram_verification
        )
        self._kernel = create_kernel(self.effective_gram_verification)
        self._bitset_vocab_limit = (
            BITSET_VOCAB_LIMIT if bitset_vocab_limit is None else bitset_vocab_limit
        )
        self._array_verification = self.effective_gram_verification == "array"
        # Length-filter self-profiling (deterministic, per probe stream):
        # once enough filtered probes accumulate, a filter that rejects too
        # few scanned entries to pay for its bounds tests is switched off
        # for the rest of the run (sticky).
        self._length_filter_disabled = False
        self._filter_probes = 0
        self._filter_scanned = 0
        self._filter_rejected = 0
        # Distinct-gram count per ordinal (dense, append-ordered with the
        # catch-up) — the length filter reads this in the hot loop.
        self._gram_counts: array = array("i")
        # Frequency-ordered probe plans: value → (index stamp, ordered ids,
        # verify key, key-is-array flag).  A plan's ordering is valid while
        # the q-gram index has not grown since it was built (the stamp is
        # the synced-tuple count at build time); the verify key — the gram
        # bitset, or the sorted id array under array verification — never
        # goes stale, but is rebuilt if the verification mode flipped.
        self._plan_cache: Dict[str, Tuple[int, List[int], object, bool]] = {}
        # Attribute position, resolved once per schema identity.
        self._attr_schema: Optional[Schema] = None
        self._attr_position = 0
        self.counters = OperationCounters()

    # -- insertion -------------------------------------------------------------

    def add(self, record: Record) -> StoredTuple:
        """Store a newly scanned tuple (without indexing it yet)."""
        schema = record.schema
        if schema is not self._attr_schema:
            self._attr_position = schema.position(self.attribute)
            self._attr_schema = schema
        value = record.value_at(self._attr_position)
        if value is None:
            value = ""
        stored = StoredTuple(record=record, value=str(value), ordinal=len(self.tuples))
        self.tuples.append(stored)
        return stored

    @property
    def size(self) -> int:
        """Number of tuples scanned from this side so far."""
        return len(self.tuples)

    # -- index maintenance -------------------------------------------------------

    @property
    def exact_lag(self) -> int:
        """Tuples stored but not yet in the exact (value) index."""
        return len(self.tuples) - self._exact_synced

    @property
    def qgram_lag(self) -> int:
        """Tuples stored but not yet in the q-gram index."""
        return len(self.tuples) - self._qgram_synced

    def catch_up_exact(self) -> int:
        """Bring the value index up to date; return the number of tuples indexed."""
        caught_up = 0
        while self._exact_synced < len(self.tuples):
            stored = self.tuples[self._exact_synced]
            self._exact_index.setdefault(stored.value, []).append(stored.ordinal)
            self.counters.exact_hash_updates += 1
            self._exact_synced += 1
            caught_up += 1
        return caught_up

    def _refresh_verification_mode(self) -> None:
        """Flip ``auto`` verification to arrays once the vocabulary outgrows bitsets.

        Converts every stored bitset to its sorted id array, so the side
        is never in a mixed state.  Sticky: once flipped, the side stays
        on arrays (the vocabulary only grows).
        """
        if self._array_verification or self.gram_verification != "auto":
            return
        if len(self.interner) <= self._bitset_vocab_limit:
            return
        self._array_verification = True
        gram_arrays = self._gram_arrays
        for ordinal, bits in self._gram_bits.items():
            gram_arrays[ordinal] = bits_to_sorted_ids(bits)
        self._gram_bits.clear()

    def catch_up_qgram(self) -> int:
        """Bring the q-gram index up to date; return the number of tuples indexed."""
        caught_up = 0
        tuples = self.tuples
        total = len(tuples)
        if self._qgram_synced >= total:
            return 0
        self._refresh_verification_mode()
        index = self._qgram_index
        gram_bits = self._gram_bits
        gram_arrays = self._gram_arrays
        gram_counts = self._gram_counts
        counters = self.counters
        intern_value = self.interner.intern_value
        kernel = self._kernel
        if kernel is not None:
            # Columnar kernel: buckets and gram counts update exactly as
            # below (the candidate stage reads them), but the verify keys
            # live in the kernel's matrix/CSR buffer instead of
            # _gram_bits/_gram_arrays.
            while self._qgram_synced < total:
                stored = tuples[self._qgram_synced]
                ordinal = stored.ordinal
                gram_ids = intern_value(stored.value)
                counters.qgrams_obtained += len(gram_ids)
                counters.approx_hash_updates += len(gram_ids)
                gram_counts.append(len(gram_ids))
                for gram_id in gram_ids:
                    bucket = index.get(gram_id)
                    if bucket is None:
                        index[gram_id] = bucket = array("i")
                    bucket.append(ordinal)
                kernel.append(gram_ids)
                self._qgram_synced += 1
                caught_up += 1
            return caught_up
        use_arrays = self._array_verification
        while self._qgram_synced < total:
            stored = tuples[self._qgram_synced]
            ordinal = stored.ordinal
            gram_ids = intern_value(stored.value)
            counters.qgrams_obtained += len(gram_ids)
            counters.approx_hash_updates += len(gram_ids)
            gram_counts.append(len(gram_ids))
            if use_arrays:
                for gram_id in gram_ids:
                    bucket = index.get(gram_id)
                    if bucket is None:
                        index[gram_id] = bucket = array("i")
                    bucket.append(ordinal)
                gram_arrays[ordinal] = array("i", sorted(gram_ids))
            else:
                bits = 0
                for gram_id in gram_ids:
                    bits |= 1 << gram_id
                    bucket = index.get(gram_id)
                    if bucket is None:
                        index[gram_id] = bucket = array("i")
                    bucket.append(ordinal)
                gram_bits[ordinal] = bits
            self._qgram_synced += 1
            caught_up += 1
        return caught_up

    def index_for_mode(self, probing_mode: JoinMode) -> int:
        """Make the index required by ``probing_mode`` current.

        Returns the number of tuples that had to be caught up (0 during
        steady-state operation, > 0 immediately after a switch).
        """
        if probing_mode is JoinMode.EXACT:
            return self.catch_up_exact()
        return self.catch_up_qgram()

    def gram_frequency(self, gram: str) -> int:
        """Number of indexed tuples containing ``gram`` (bucket length)."""
        gram_id = self.interner.lookup(gram)
        if gram_id is None:
            return 0
        return len(self._qgram_index.get(gram_id, ()))

    def _probe_plan(self, value: str) -> Tuple[List[int], object]:
        """The probe plan for ``value``: ``(ordered gram ids, verify key)``.

        The ordering is the probe's distinct gram ids sorted by increasing
        bucket length — the reverse-frequency order of Sec. 2.2 — with ties
        broken by first-occurrence position (a stable, deterministic order).
        The verify key is what the verification loop intersects candidates
        against: the gram bitset, or the sorted id array under array
        verification.  Plans are cached per value and reused while the
        q-gram index has not absorbed new tuples; tokenisation itself is
        cached in the interner either way, so a stale plan only pays for
        the re-sort (the verify key never goes stale, but is rebuilt if
        the verification mode flipped since it was cached).
        """
        stamp = self._qgram_synced
        kernel = self._kernel
        # The verify-kind tag: a bool for the pure-Python modes, the mode
        # string for kernel sides (the two never collide, so a plan cached
        # under one kind is invisible to the other).
        if kernel is not None:
            kind: object = self.effective_gram_verification
        else:
            kind = self._array_verification
        cached = self._plan_cache.get(value)
        if cached is not None and cached[0] == stamp and cached[3] == kind:
            return cached[1], cached[2]
        gram_ids = self.interner.intern_value(value)
        index = self._qgram_index
        get = index.get
        # Decorate-sort-undecorate with a (length, position) key: cheaper
        # than a key function calling gram_frequency per element, and the
        # position component reproduces stable-sort tie-breaking.
        decorated = sorted(
            (len(get(gram_id) or ()), position, gram_id)
            for position, gram_id in enumerate(gram_ids)
        )
        ordered = [entry[2] for entry in decorated]
        if cached is not None and cached[3] == kind:
            verify_key = cached[2]
        elif kernel is not None:
            verify_key = kernel.probe_key(gram_ids)
        elif self._array_verification:
            verify_key = array("i", sorted(gram_ids))
        else:
            verify_key = GramInterner.bits_of(gram_ids)
        if len(self._plan_cache) >= _PLAN_CACHE_LIMIT:
            self._plan_cache.clear()
        self._plan_cache[value] = (stamp, ordered, verify_key, kind)
        return ordered, verify_key

    # -- probing ---------------------------------------------------------------

    def probe_exact(self, value: str) -> List[StoredTuple]:
        """Return the stored tuples whose join-attribute value equals ``value``.

        The caller must have made the exact index current (see
        :meth:`index_for_mode`).
        """
        self.counters.exact_probes += 1
        bucket = self._exact_index.get(value, ())
        self.counters.exact_probe_work += len(bucket)
        return [self.tuples[ordinal] for ordinal in bucket]

    def probe_qgram(
        self,
        value: str,
        similarity_threshold: float,
        verify_jaccard: bool = False,
        use_prefix_filter: bool = True,
        use_length_filter: bool = True,
    ) -> List[Tuple[StoredTuple, float]]:
        """Return stored tuples that approximately match ``value`` on q-grams.

        Implements the SSJoin-style probe of Sec. 2.2 with the
        reverse-frequency optimisation: the probe's q-grams are visited in
        increasing bucket-length order; only the first ``g − k + 1`` grams
        may *add* candidates to the set ``T(t)``, the remaining (frequent)
        grams merely increment the counters of candidates already present.

        The match decision follows the paper's operator literally: a
        candidate ``t'`` matches when its shared-gram counter reaches
        ``k = ⌈θ_sim · g⌉``, where ``g`` is the number of (distinct) q-grams
        of the probe value ("the tuples that are retrieved at least ``k``
        times are returned as part of the match").  With
        ``verify_jaccard=True`` the stricter set-Jaccard test
        ``sim(q(t), q(t')) ≥ θ_sim`` is applied on top of the counter test,
        which makes the operator's result identical to a nested-loop
        Jaccard similarity join (useful as a correctness oracle).

        ``use_length_filter`` layers the Jaccard length filter under the
        prefix filter: a bucket entry whose distinct-gram count ``g'`` falls
        outside :func:`~repro.joins.fastpath.jaccard_length_bounds` is never
        admitted into ``T(t)``.  Filtered entries still count one unit of
        candidate-scan work (the entry *was* scanned) but could never pass
        the match decision anyway, so the match set is identical with the
        filter on or off; only ``|T(t)|`` (and, under ``verify_jaccard``,
        the number of doomed verifications) shrinks.  Disable it for the
        ablation benchmarks.

        Returns ``(stored_tuple, similarity)`` pairs, where the similarity
        reported is always the q-gram Jaccard coefficient of the pair.  The
        caller must have made the q-gram index current.
        """
        counters = self.counters
        counters.approx_probes += 1
        if use_length_filter and self._length_filter_disabled:
            # Self-profiling verdict (see _note_filter_outcome): the filter
            # rejected too little on this probe stream to pay for its
            # bounds tests.  Match set is identical either way.
            use_length_filter = False
        ordered, verify_key = self._probe_plan(value)
        gram_count = len(ordered)
        counters.qgrams_obtained += gram_count
        if gram_count == 0:
            return []
        required = max(1, math.ceil(similarity_threshold * gram_count))
        required = min(required, gram_count)

        if use_prefix_filter:
            inserting_prefix = max(gram_count - required + 1, 1)
        else:
            # Ablation: disable the reverse-frequency prefix optimisation and
            # let every probe gram add candidates (larger T(t), same result).
            inserting_prefix = gram_count
        if self._kernel is not None:
            return self._probe_qgram_kernel(
                ordered,
                verify_key,
                gram_count,
                required,
                inserting_prefix,
                similarity_threshold,
                verify_jaccard,
                use_length_filter,
            )
        index = self._qgram_index
        gram_bits = self._gram_bits
        scan_work = 0

        # -- candidate generation: scan the ``g − k + 1`` rarest grams'
        # buckets; only these may add members to T(t).  The per-candidate
        # shared-gram *count* is not accumulated here — it is recovered
        # exactly below with one C-level bitset AND per candidate, which
        # replaces the seed's per-entry counter bumping over the frequent
        # grams' buckets (the old dominant cost).
        candidates: Dict[int, int] = {}
        if use_length_filter:
            min_grams, max_grams = jaccard_length_bounds(
                gram_count, similarity_threshold, verify_jaccard, required=required
            )
            gram_counts = self._gram_counts
            rejected = 0
            for gram_id in ordered[:inserting_prefix]:
                bucket = index.get(gram_id)
                if bucket is None:
                    # Unseen gram: the seed scanned an empty bucket here,
                    # contributing no work and no candidates either way.
                    continue
                scan_work += len(bucket)
                for ordinal in bucket:
                    if ordinal in candidates:
                        continue
                    if min_grams <= gram_counts[ordinal] <= max_grams:
                        candidates[ordinal] = 0
                    else:
                        rejected += 1
            self._note_filter_outcome(scan_work, rejected)
        else:
            for gram_id in ordered[:inserting_prefix]:
                bucket = index.get(gram_id)
                if bucket is None:
                    continue
                scan_work += len(bucket)
                for ordinal in bucket:
                    candidates[ordinal] = 0

        # -- frequent-gram accounting: the seed scanned each remaining
        # bucket (or, for very long buckets, the candidate set — whichever
        # is shorter) purely to bump counters of *existing* candidates; the
        # candidate set itself no longer changes.  The intersection below
        # subsumes that work, so only Table 1's operation-3 work units are
        # charged here, exactly as the scan would have counted them.
        n_candidates = len(candidates)
        for gram_id in ordered[inserting_prefix:]:
            bucket = index.get(gram_id)
            bucket_length = len(bucket) if bucket is not None else 0
            scan_work += (
                bucket_length if bucket_length <= n_candidates else n_candidates
            )
        counters.candidate_scan_work += scan_work
        counters.candidate_set_size += n_candidates

        matches: List[Tuple[StoredTuple, float]] = []
        tuples = self.tuples
        gram_counts = self._gram_counts
        if self._array_verification:
            # Array verification: the same shared-gram count recovered by
            # a two-pointer walk over sorted id arrays — O(g + g') per
            # candidate instead of O(vocabulary / word) for the bitset
            # AND, the winning trade past BITSET_VOCAB_LIMIT grams.
            probe_ids = verify_key
            gram_arrays = self._gram_arrays
            for ordinal in candidates:
                stored_ids = gram_arrays.get(ordinal)
                if stored_ids is not None:
                    stored_count = gram_counts[ordinal]
                else:
                    # Defensive fallback, mirroring the bitset path below.
                    gram_ids = self.interner.intern_value(tuples[ordinal].value)
                    counters.qgrams_obtained += len(gram_ids)
                    stored_count = len(gram_ids)
                    stored_ids = gram_arrays[ordinal] = array(
                        "i", sorted(gram_ids)
                    )
                shared = sorted_intersection_count(probe_ids, stored_ids)
                if shared < required:
                    continue
                counters.approx_verifications += 1
                similarity = jaccard_from_shared(shared, gram_count, stored_count)
                if verify_jaccard and similarity < similarity_threshold:
                    continue
                matches.append((tuples[ordinal], similarity))
            return matches
        probe_bits = verify_key
        for ordinal in candidates:
            stored_bits = gram_bits.get(ordinal)
            if stored_bits is not None:
                stored_count = gram_counts[ordinal]
            else:
                # Defensive fallback (candidates always come from the index,
                # which populates the cache): re-tokenise the stored value
                # and account for the grams obtained, as Table 1 requires.
                gram_ids = self.interner.intern_value(tuples[ordinal].value)
                counters.qgrams_obtained += len(gram_ids)
                stored_count = len(gram_ids)
                stored_bits = gram_bits[ordinal] = GramInterner.bits_of(gram_ids)
            shared = (probe_bits & stored_bits).bit_count()
            if shared < required:
                continue
            counters.approx_verifications += 1
            similarity = jaccard_from_shared(shared, gram_count, stored_count)
            if verify_jaccard and similarity < similarity_threshold:
                continue
            matches.append((tuples[ordinal], similarity))
        return matches

    def _probe_qgram_kernel(
        self,
        ordered: List[int],
        verify_key: object,
        gram_count: int,
        required: int,
        inserting_prefix: int,
        similarity_threshold: float,
        verify_jaccard: bool,
        use_length_filter: bool,
    ) -> List[Tuple[StoredTuple, float]]:
        """Columnar twin of the :meth:`probe_qgram` candidate + verify stages.

        Counters, match set, similarities, and emission order are
        bit-identical to the pure-Python paths (see
        :mod:`repro.kernels.candidates` for the equivalence contract of
        each counter).
        """
        counters = self.counters
        index = self._qgram_index
        buckets = []
        for gram_id in ordered[:inserting_prefix]:
            bucket = index.get(gram_id)
            if bucket is not None:
                buckets.append(bucket)
        if use_length_filter:
            min_grams, max_grams = jaccard_length_bounds(
                gram_count, similarity_threshold, verify_jaccard, required=required
            )
        else:
            min_grams = max_grams = None
        candidates, scan_work, rejected = self._kernel.gather_candidates(
            buckets, self._gram_counts, min_grams, max_grams
        )
        if use_length_filter:
            self._note_filter_outcome(scan_work, rejected)
        n_candidates = int(candidates.size)
        for gram_id in ordered[inserting_prefix:]:
            bucket = index.get(gram_id)
            bucket_length = len(bucket) if bucket is not None else 0
            scan_work += (
                bucket_length if bucket_length <= n_candidates else n_candidates
            )
        counters.candidate_scan_work += scan_work
        counters.candidate_set_size += n_candidates
        if not n_candidates:
            return []
        ordinals, similarities, verified = self._kernel.verify(
            candidates,
            verify_key,
            gram_count,
            required,
            similarity_threshold,
            verify_jaccard,
        )
        counters.approx_verifications += verified
        tuples = self.tuples
        return [
            (tuples[ordinal], similarity)
            for ordinal, similarity in zip(ordinals, similarities)
        ]

    def _note_filter_outcome(self, scanned: int, rejected: int) -> None:
        """Accumulate length-filter profiling; disable it when unproductive.

        After ``LENGTH_FILTER_SAMPLE_PROBES`` filtered probes, if fewer
        than ``LENGTH_FILTER_MIN_REJECT_RATE`` of all scanned bucket
        entries were rejected, the filter's bounds tests cost more than
        they save and the side turns it off for the rest of the run
        (sticky, and deterministic given the probe stream — the decision
        depends only on probes seen so far, so serial re-runs and
        single-shard runs stay bit-identical).
        """
        self._filter_probes += 1
        self._filter_scanned += scanned
        self._filter_rejected += rejected
        if (
            not self._length_filter_disabled
            and self._filter_probes >= LENGTH_FILTER_SAMPLE_PROBES
            and self._filter_scanned > 0
            and self._filter_rejected
            < LENGTH_FILTER_MIN_REJECT_RATE * self._filter_scanned
        ):
            self._length_filter_disabled = True

    @property
    def length_filter_disabled(self) -> bool:
        """Whether self-profiling has switched the length filter off."""
        return self._length_filter_disabled

    # -- introspection -------------------------------------------------------------

    @property
    def exact_index_size(self) -> int:
        """Number of distinct values currently in the exact index."""
        return len(self._exact_index)

    @property
    def qgram_index_size(self) -> int:
        """Number of distinct q-grams currently in the q-gram index."""
        return len(self._qgram_index)

    def average_exact_bucket_length(self) -> float:
        """``B_ex`` of Table 1: average value-bucket length."""
        if not self._exact_index:
            return 0.0
        return sum(len(b) for b in self._exact_index.values()) / len(self._exact_index)

    def average_qgram_bucket_length(self) -> float:
        """``B_ap`` of Table 1: average q-gram-bucket length."""
        if not self._qgram_index:
            return 0.0
        return sum(len(b) for b in self._qgram_index.values()) / len(self._qgram_index)

    def __repr__(self) -> str:
        return (
            f"SideState({self.side.value}, tuples={len(self.tuples)}, "
            f"exact_synced={self._exact_synced}, qgram_synced={self._qgram_synced})"
        )
