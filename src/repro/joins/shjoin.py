"""SHJoin — the exact symmetric (pipelined) hash join.

The classical dataflow symmetric hash join of Wilschut & Apers, exposed
through the iterator protocol.  Two hash tables (one per input) are built
incrementally; every scanned tuple is inserted into its own side's table and
probes the other side's table, so result tuples stream out without waiting
for either input to be exhausted.

A call to ``next_record`` either (a) returns the next pending match of the
tuple scanned most recently — the operator is then *not* quiescent — or (b)
scans a new tuple, computes all its matches and returns the first one (or
keeps scanning if there are none).  The operator is quiescent exactly when
the pending-match queue is empty, which is the condition the adaptive
framework checks before replacing it (Sec. 2.1 of the paper).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Union

from repro.engine.iterators import Operator, OperatorState
from repro.engine.streams import InputLike as _InputLike
from repro.engine.streams import as_stream
from repro.engine.tuples import Record
from repro.joins.base import JoinAttribute, JoinMode, JoinSide, MatchEvent, OperationCounters
from repro.joins.engine import SymmetricJoinEngine

#: Re-exported for back-compat; canonical home is :mod:`repro.engine.streams`.
InputLike = _InputLike


class _SymmetricJoinOperator(Operator):
    """Common iterator plumbing shared by SHJoin and SSHJoin."""

    _mode: JoinMode

    def __init__(
        self,
        left: InputLike,
        right: InputLike,
        attribute: Union[str, JoinAttribute],
        similarity_threshold: float = 0.85,
        q: int = 3,
        verify_jaccard: bool = False,
        use_length_filter: bool = True,
        gram_verification: str = "auto",
        name: str = "",
    ) -> None:
        left_stream = as_stream(left)
        right_stream = as_stream(right)
        if isinstance(attribute, str):
            attribute = JoinAttribute(attribute, attribute)
        self._engine = SymmetricJoinEngine(
            left_stream,
            right_stream,
            attribute,
            similarity_threshold=similarity_threshold,
            q=q,
            left_mode=self._mode,
            right_mode=self._mode,
            verify_jaccard=verify_jaccard,
            use_length_filter=use_length_filter,
            gram_verification=gram_verification,
        )
        super().__init__(self._engine.output_schema, name=name or type(self).__name__)
        self._pending: Deque[MatchEvent] = deque()

    # -- iterator protocol ----------------------------------------------------

    def _do_open(self) -> None:
        self._pending.clear()

    def _do_next(self) -> Optional[Record]:
        while not self._pending:
            result = self._engine.step()
            if result is None:
                return None
            if result.side is JoinSide.LEFT:
                self.stats.tuples_read_left += 1
            else:
                self.stats.tuples_read_right += 1
            self._pending.extend(result.matches)
        event = self._pending.popleft()
        return event.output_record(self.output_schema)

    def is_quiescent(self) -> bool:
        """Quiescent iff the most recent scanned tuple has no pending matches."""
        return not self._pending

    def run(self) -> list:
        """Open, drain and close the operator, returning all output records.

        Overrides the generic record-at-a-time drain with the engine's
        batched stepping (:meth:`SymmetricJoinEngine.run_steps`), which
        amortises the per-tuple iterator dispatch for whole-input runs.
        Matches already pending from earlier incremental consumption come
        first, so the output is identical to ``list(self)``.
        """
        if self._state is OperatorState.CREATED:
            self.open()
        if self._state is not OperatorState.OPEN:
            return list(self)  # EXHAUSTED/CLOSED: defer to the generic path
        events = list(self._pending)
        self._pending.clear()
        events.extend(self._engine.run_to_completion())
        schema = self.output_schema
        records = [event.output_record(schema) for event in events]
        stats = self.stats
        stats.next_calls += len(records) + 1
        stats.tuples_produced += len(records)
        stats.tuples_read_left = self._engine.scanned(JoinSide.LEFT)
        stats.tuples_read_right = self._engine.scanned(JoinSide.RIGHT)
        self._state = OperatorState.EXHAUSTED
        self.close()
        return records

    # -- introspection ----------------------------------------------------------

    @property
    def engine(self) -> SymmetricJoinEngine:
        """The underlying switchable engine (exposed for tests and benchmarks)."""
        return self._engine

    def operation_counters(self) -> OperationCounters:
        """Elementary-operation counters accumulated so far (paper Table 1)."""
        return self._engine.counters()

    @property
    def matches_emitted(self) -> int:
        """Number of matched pairs produced so far."""
        return self._engine.matches_emitted


class SHJoin(_SymmetricJoinOperator):
    """Exact symmetric hash join.

    Parameters
    ----------
    left, right:
        Input tables or record streams.
    attribute:
        Either a single attribute name present in both inputs, or a
        :class:`~repro.joins.base.JoinAttribute` naming one attribute per
        side.

    Examples
    --------
    >>> from repro.engine.table import Table
    >>> from repro.engine.tuples import Schema
    >>> schema = Schema(["loc"])
    >>> atlas = Table.from_rows(schema, [["GENOVA"], ["MILANO"]], name="atlas")
    >>> accidents = Table.from_rows(schema, [["GENOVA"]], name="accidents")
    >>> len(SHJoin(atlas, accidents, "loc").run())
    1
    """

    _mode = JoinMode.EXACT

    def __init__(
        self,
        left: InputLike,
        right: InputLike,
        attribute: Union[str, JoinAttribute],
        q: int = 3,
        name: str = "",
    ) -> None:
        # The similarity threshold is irrelevant for the exact operator but
        # the shared engine still requires a valid value.
        super().__init__(
            left, right, attribute, similarity_threshold=1.0, q=q, name=name or "SHJoin"
        )
