"""SSHJoin — the approximate symmetric set hash join.

A pipelined, symmetric re-implementation of the SSJoin similarity-join
operator (Chaudhuri, Ganti & Kaushik), as described in Sec. 2.2 of the
paper.  Each side hashes the *q-grams* of the join-attribute values it has
scanned; a scanned tuple probes the other side's q-gram table, builds the
candidate set ``T(t)`` of tuples sharing at least one gram (with the
reverse-frequency / prefix optimisation of the paper) and returns the pairs
whose q-gram Jaccard similarity reaches the threshold ``θ_sim``.

Like SHJoin, the operator is pipelined and exposes quiescent states after
each fully processed scanned tuple, which makes it a legal target (and
source) of adaptive operator replacement.
"""

from __future__ import annotations

from typing import Union

from repro.joins.base import JoinAttribute, JoinMode
from repro.joins.shjoin import InputLike, _SymmetricJoinOperator


class SSHJoin(_SymmetricJoinOperator):
    """Approximate (similarity) symmetric set hash join.

    Parameters
    ----------
    left, right:
        Input tables or record streams.
    attribute:
        Either a single attribute name present in both inputs, or a
        :class:`~repro.joins.base.JoinAttribute` naming one attribute per
        side.
    similarity_threshold:
        ``θ_sim``: the approximate-match threshold (paper: 0.85).  A
        candidate matches when it shares at least ``⌈θ_sim · g⌉`` q-grams
        with the probe value, the operator semantics of Sec. 2.2; pass
        ``verify_jaccard=True`` to additionally require the set-Jaccard
        similarity to reach the threshold (the strict reading of the
        paper's ``sim`` definition).
    q:
        q-gram width (paper: 3).
    verify_jaccard:
        Apply the strict Jaccard verification on top of the counter test.
    use_length_filter:
        False disables the Jaccard length filter of the probe pipeline
        (ablation; the match set is unchanged either way).
    gram_verification:
        How probes recover shared-gram counts: ``"auto"`` / ``"bitset"`` /
        ``"array"`` (pure Python) or ``"numpy-bitset"`` / ``"numpy-array"``
        (columnar kernels, falling back to the pure-Python twin without
        numpy).  Matches and counters are identical in every mode.

    Examples
    --------
    >>> from repro.engine.tuples import Schema
    >>> from repro.engine.table import Table
    >>> schema = Schema(["loc"])
    >>> atlas = Table.from_rows(schema, [["LIG GE GENOVA"]], name="atlas")
    >>> accidents = Table.from_rows(schema, [["LIG GE GENOVa"]], name="acc")
    >>> len(SSHJoin(atlas, accidents, "loc", similarity_threshold=0.8).run())
    1
    """

    _mode = JoinMode.APPROXIMATE

    def __init__(
        self,
        left: InputLike,
        right: InputLike,
        attribute: Union[str, JoinAttribute],
        similarity_threshold: float = 0.85,
        q: int = 3,
        verify_jaccard: bool = False,
        use_length_filter: bool = True,
        gram_verification: str = "auto",
        name: str = "",
    ) -> None:
        super().__init__(
            left,
            right,
            attribute,
            similarity_threshold=similarity_threshold,
            q=q,
            verify_jaccard=verify_jaccard,
            use_length_filter=use_length_filter,
            gram_verification=gram_verification,
            name=name or "SSHJoin",
        )
