"""Fast-path machinery of the approximate probe pipeline.

The SSHJoin probe of :meth:`repro.joins.base.SideState.probe_qgram` is the
hot loop of every approximate phase: each scanned tuple tokenises its join-
attribute value, sorts the grams by bucket frequency and scans the buckets
to build the candidate set ``T(t)``.  In the seed implementation all of
this was string-keyed pure Python; this module supplies the pieces that
make it fast while keeping the operator semantics of Sec. 2.2 intact:

* :class:`GramInterner` — maps q-grams to dense integer ids, so the q-gram
  hash table becomes ``int → array('i')`` and the hot candidate-counting
  loop hashes small ints instead of strings.  The interner also caches the
  tokenisation of whole values (value → tuple of gram ids), which turns
  repeated probes/insertions of the same value into a dictionary hit.
* :func:`distinct_qgrams` — the *deterministic* distinct-gram ordering used
  throughout the fast path.  ``qgram_set`` returns a ``frozenset`` whose
  iteration order depends on the process hash seed; the probe pipeline
  instead visits grams in first-occurrence order so that equal-frequency
  grams sort identically in every run (and so the naive reference below is
  counter-for-counter comparable with the fast path).
* :func:`jaccard_length_bounds` — the length filter ``⌈θ·g⌉ ≤ g' ≤ ⌊g/θ⌋``
  applied before candidate counting.  The lower bound is sound under the
  paper's counter-test semantics (a candidate with fewer than ``⌈θ·g⌉``
  distinct grams can never share ``⌈θ·g⌉`` of them); the upper bound is
  only sound under the strict Jaccard test and is therefore applied only
  when the probe verifies Jaccard.
* :class:`NaiveQGramProber` — the pre-refactor (seed) probe pipeline kept
  verbatim as a reference: string-keyed buckets, per-probe re-sorting
  through a Python key function, no interning, no length filter, no plan
  cache.  The equivalence property test asserts that the fast path returns
  the same match sets and identical :class:`OperationCounters`, and
  ``benchmarks/bench_probe_fastpath.py`` measures the fast path against it.

Counter accounting note: tokenisation *caching* never changes the
``qgrams_obtained`` counter — the counters reproduce the paper's logical
cost model (Table 1), in which every probe and every insertion obtains the
value's grams, regardless of machine-level memoisation.
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.similarity.qgrams import qgrams


def distinct_qgrams(text: str, q: int = 3, padded: bool = True) -> List[str]:
    """Distinct q-grams of ``text`` in first-occurrence (deterministic) order."""
    return list(dict.fromkeys(qgrams(text, q=q, padded=padded)))


def jaccard_length_bounds(
    gram_count: int,
    similarity_threshold: float,
    verify_jaccard: bool,
    required: Optional[int] = None,
) -> Tuple[int, int]:
    """Admissible distinct-gram counts ``g'`` of a candidate, as ``(lo, hi)``.

    ``lo`` is the probe's counter-test threshold ``k = ⌈θ·g⌉`` — the filter
    is only sound because ``shared ≤ min(g, g')``, so ``lo`` must be
    *exactly* the ``required`` count the probe matches against.  Callers
    that have already computed it pass it via ``required`` so the two can
    never drift apart.  ``hi = ⌊g/θ⌋`` only holds when the strict Jaccard
    test is applied (``sim ≤ g/g'``), so without ``verify_jaccard`` the
    upper bound is unbounded.  The division is guarded with a small slack
    so that a candidate sitting exactly on the bound is *kept* (and then
    rejected by the exact verification), never wrongly excluded by float
    rounding.
    """
    if required is None:
        required = min(max(1, math.ceil(similarity_threshold * gram_count)), gram_count)
    if not verify_jaccard:
        return required, (1 << 62)
    hi = int(math.floor(gram_count / similarity_threshold + 1e-9))
    return required, hi


def sorted_intersection_count(left, right) -> int:
    """``|a ∩ b|`` for two *sorted, duplicate-free* int sequences.

    The two-pointer merge walk behind the array verification path of
    :meth:`repro.joins.base.SideState.probe_qgram`: cost is
    ``O(len(left) + len(right))`` — the values' own gram counts — where
    the bitset AND costs ``O(vocabulary / machine word)``.  Past a few
    thousand interned grams the arrays win; see PERFORMANCE.md
    "Known scale limits".
    """
    i, j = 0, 0
    left_len, right_len = len(left), len(right)
    shared = 0
    while i < left_len and j < right_len:
        a, b = left[i], right[j]
        if a == b:
            shared += 1
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return shared


def bits_to_sorted_ids(bits: int) -> array:
    """Decode a gram bitset into its sorted id array (flip-over helper)."""
    ids = array("i")
    while bits:
        low = bits & -bits
        ids.append(low.bit_length() - 1)
        bits ^= low
    return ids


class GramInterner:
    """Bidirectional q-gram ↔ dense-integer-id mapping with a value cache.

    One interner is shared by both sides of a
    :class:`~repro.joins.engine.SymmetricJoinEngine`, so a value interned
    when it was stored on one side is a cache hit when it later probes the
    other side.  Ids are assigned in first-intern order and never reused.
    """

    __slots__ = ("q", "padded", "_ids", "_grams", "_value_cache", "_value_cache_limit")

    def __init__(self, q: int = 3, padded: bool = True, value_cache_limit: int = 65536) -> None:
        if q <= 0:
            raise ValueError(f"q must be positive, got {q}")
        self.q = q
        self.padded = padded
        self._ids: Dict[str, int] = {}
        self._grams: List[str] = []
        self._value_cache: Dict[str, Tuple[int, ...]] = {}
        self._value_cache_limit = value_cache_limit

    def __len__(self) -> int:
        return len(self._grams)

    def intern(self, gram: str) -> int:
        """Return the id of ``gram``, assigning a fresh one if unseen."""
        gid = self._ids.get(gram)
        if gid is None:
            gid = len(self._grams)
            self._ids[gram] = gid
            self._grams.append(gram)
        return gid

    def lookup(self, gram: str) -> Optional[int]:
        """Return the id of ``gram`` without interning, or ``None`` if unseen."""
        return self._ids.get(gram)

    def gram(self, gram_id: int) -> str:
        """Reverse lookup: the gram string behind ``gram_id``."""
        return self._grams[gram_id]

    @staticmethod
    def bits_of(gram_ids) -> int:
        """The gram bitset of an id collection (bit ``i`` set ⇔ id ``i``).

        The one canonical encoding of the fast path's bitset invariant;
        ``SideState.catch_up_qgram`` keeps an inlined copy of this loop
        (it is fused with the bucket appends on the hot path) — change
        both together.
        """
        bits = 0
        for gram_id in gram_ids:
            bits |= 1 << gram_id
        return bits

    def intern_value(self, value: str) -> Tuple[int, ...]:
        """Distinct gram ids of ``value``, in first-occurrence order.

        The result is cached per value; the cache is bounded and cleared
        wholesale when full (values re-intern cheaply, ids are stable).
        """
        ids = self._value_cache.get(value)
        if ids is not None:
            return ids
        intern = self.intern
        ids = tuple(
            intern(gram)
            for gram in dict.fromkeys(qgrams(value, q=self.q, padded=self.padded))
        )
        if len(self._value_cache) >= self._value_cache_limit:
            self._value_cache.clear()
        self._value_cache[value] = ids
        return ids


class NaiveQGramProber:
    """The seed (pre-refactor) q-gram index and probe, kept as a reference.

    Mirrors the string-keyed ``SideState`` q-gram machinery exactly as it
    stood before the fast-path refactor — ``dict.setdefault`` list buckets,
    a per-probe ``sorted(..., key=self.gram_frequency)`` through a Python
    key function, no interning, no length filter — except that grams are
    visited in the deterministic :func:`distinct_qgrams` order (the seed
    iterated a ``frozenset``, whose order varies with the hash seed) so
    that counter traces are reproducible and comparable.

    Maintains its own :class:`~repro.joins.base.OperationCounters` with the
    same accounting as the real side state, including the fix that the
    re-tokenisation fallback during verification counts its grams.
    """

    def __init__(self, q: int = 3, padded: bool = True) -> None:
        # Imported here rather than at module level: ``repro.joins.base``
        # imports this module for the interner, so a top-level import back
        # into ``base`` would be circular.
        from repro.joins.base import OperationCounters

        self.q = q
        self.padded = padded
        self.counters = OperationCounters()
        self._index: Dict[str, List[int]] = {}
        self._gram_lists: Dict[int, List[str]] = {}
        self._gram_sets: Dict[int, FrozenSet[str]] = {}
        self._values: List[str] = []

    @property
    def size(self) -> int:
        return len(self._values)

    def add(self, value: str) -> int:
        """Store and immediately index ``value``; return its ordinal."""
        ordinal = len(self._values)
        self._values.append(value)
        grams = distinct_qgrams(value, q=self.q, padded=self.padded)
        self.counters.qgrams_obtained += len(grams)
        self._gram_lists[ordinal] = grams
        self._gram_sets[ordinal] = frozenset(grams)
        for gram in grams:
            self._index.setdefault(gram, []).append(ordinal)
            self.counters.approx_hash_updates += 1
        return ordinal

    def gram_frequency(self, gram: str) -> int:
        return len(self._index.get(gram, ()))

    def probe(
        self,
        value: str,
        similarity_threshold: float,
        verify_jaccard: bool = False,
        use_prefix_filter: bool = True,
    ) -> List[Tuple[int, float]]:
        """The seed probe algorithm; returns ``(ordinal, similarity)`` pairs."""
        counters = self.counters
        counters.approx_probes += 1
        probe_grams = distinct_qgrams(value, q=self.q, padded=self.padded)
        counters.qgrams_obtained += len(probe_grams)
        gram_count = len(probe_grams)
        if gram_count == 0:
            return []
        required = max(1, math.ceil(similarity_threshold * gram_count))
        required = min(required, gram_count)

        ordered = sorted(probe_grams, key=self.gram_frequency)
        if use_prefix_filter:
            inserting_prefix = max(gram_count - required + 1, 1)
        else:
            inserting_prefix = gram_count
        candidates: Dict[int, int] = {}
        for index, gram in enumerate(ordered):
            bucket = self._index.get(gram, ())
            if index < inserting_prefix:
                counters.candidate_scan_work += len(bucket)
                for ordinal in bucket:
                    candidates[ordinal] = candidates.get(ordinal, 0) + 1
            elif len(bucket) <= len(candidates):
                counters.candidate_scan_work += len(bucket)
                for ordinal in bucket:
                    if ordinal in candidates:
                        candidates[ordinal] += 1
            else:
                counters.candidate_scan_work += len(candidates)
                for ordinal in candidates:
                    if gram in self._gram_sets[ordinal]:
                        candidates[ordinal] += 1
        counters.candidate_set_size += len(candidates)

        matches: List[Tuple[int, float]] = []
        for ordinal, shared in candidates.items():
            if shared < required:
                continue
            counters.approx_verifications += 1
            stored_grams = self._gram_sets.get(ordinal)
            if stored_grams is None:
                stored_grams = frozenset(
                    distinct_qgrams(self._values[ordinal], q=self.q, padded=self.padded)
                )
                counters.qgrams_obtained += len(stored_grams)
            union = gram_count + len(stored_grams) - shared
            similarity = shared / union if union else 1.0
            if verify_jaccard and similarity < similarity_threshold:
                continue
            matches.append((ordinal, similarity))
        return matches
