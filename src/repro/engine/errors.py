"""Exception hierarchy for the query-engine substrate.

Keeping a small, explicit hierarchy lets callers distinguish programming
errors in operator usage (protocol violations) from data-level problems
(schema mismatches) without string-matching on messages.
"""


class EngineError(Exception):
    """Base class for all errors raised by :mod:`repro.engine`."""


class SchemaError(EngineError):
    """A record or operation does not conform to the expected schema.

    Raised, for example, when a :class:`~repro.engine.tuples.Record` is
    constructed with missing or unexpected attributes, or when a projection
    references an attribute that does not exist.
    """


class IteratorProtocolError(EngineError):
    """The OPEN/NEXT/CLOSE protocol was violated.

    Raised when ``next()`` is called on an operator that has not been
    opened, when an operator is opened twice, or when an operator is used
    after being closed.  These are programming errors of the caller, not
    data errors, and therefore deserve a dedicated type.
    """


class SwitchError(EngineError):
    """An adaptive operator switch was requested at an unsafe point.

    Operator replacement is only sound at quiescent states; attempting a
    switch while a probe still has outstanding matches raises this error.
    """
