"""Pipelined, iterator-based query-engine substrate.

This package provides the minimal relational machinery the adaptive join
needs: typed records and schemas, in-memory tables that can also be consumed
as streams, the classical ``OPEN``/``NEXT``/``CLOSE`` iterator protocol with
explicit *quiescent states* (the hook exploited by adaptive operator
replacement, following Eurviriyanukul et al.), and a handful of relational
operators (scan, select, project, limit, union, materialise) so that the
join operators can be composed into small pipelined plans.
"""

from repro.engine.errors import EngineError, IteratorProtocolError, SchemaError
from repro.engine.expressions import (
    AttributeRef,
    Comparison,
    Conjunction,
    Constant,
    Disjunction,
    Expression,
    Negation,
    attr,
    const,
)
from repro.engine.iterators import Operator, OperatorState, OperatorStats
from repro.engine.operators import (
    Limit,
    Materialise,
    Project,
    Select,
    TableScan,
    Union,
)
from repro.engine.streams import ListStream, RecordStream, interleave
from repro.engine.table import Table
from repro.engine.tuples import Record, Schema

__all__ = [
    "EngineError",
    "IteratorProtocolError",
    "SchemaError",
    "Expression",
    "AttributeRef",
    "Constant",
    "Comparison",
    "Conjunction",
    "Disjunction",
    "Negation",
    "attr",
    "const",
    "Operator",
    "OperatorState",
    "OperatorStats",
    "TableScan",
    "Select",
    "Project",
    "Limit",
    "Union",
    "Materialise",
    "RecordStream",
    "ListStream",
    "interleave",
    "Table",
    "Record",
    "Schema",
]
