"""Relational operators over the iterator protocol.

These are the conventional pipelined operators used to build small plans
around the symmetric joins: table scan, selection, projection, limit, union
and materialisation.  All of them are trivially quiescent after every
``next_record`` call (they hold no cross-call partial work), so a plan built
from them never blocks an adaptive switch of a downstream join.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union as TypingUnion

from repro.engine.expressions import Expression
from repro.engine.iterators import Operator
from repro.engine.table import Table
from repro.engine.tuples import Record

Predicate = TypingUnion[Expression, Callable[[Record], bool]]


def _as_callable(predicate: Predicate) -> Callable[[Record], bool]:
    """Normalise an expression or callable predicate into a callable."""
    if isinstance(predicate, Expression):
        return predicate.evaluate
    return predicate


class TableScan(Operator):
    """Sequentially scan an in-memory :class:`~repro.engine.table.Table`."""

    def __init__(self, table: Table, name: str = "") -> None:
        super().__init__(table.schema, name=name or f"scan({table.name})")
        self._table = table
        self._cursor = 0

    def _do_open(self) -> None:
        self._cursor = 0

    def _do_next(self) -> Optional[Record]:
        if self._cursor >= len(self._table):
            return None
        record = self._table[self._cursor]
        self._cursor += 1
        self.stats.tuples_read_left += 1
        return record


class Select(Operator):
    """Filter the child's output with a predicate."""

    def __init__(self, child: Operator, predicate: Predicate, name: str = "") -> None:
        super().__init__(child.output_schema, name=name or "select")
        self._child = child
        self._predicate = _as_callable(predicate)

    def _do_open(self) -> None:
        self._child.open()

    def _do_next(self) -> Optional[Record]:
        while True:
            record = self._child.next_record()
            if record is None:
                return None
            self.stats.tuples_read_left += 1
            if self._predicate(record):
                return record

    def _do_close(self) -> None:
        self._child.close()


class Project(Operator):
    """Project the child's output onto a subset of attributes."""

    def __init__(
        self, child: Operator, attributes: Sequence[str], name: str = ""
    ) -> None:
        schema = child.output_schema.project(attributes)
        super().__init__(schema, name=name or f"project({', '.join(attributes)})")
        self._child = child
        self._attributes = list(attributes)

    def _do_open(self) -> None:
        self._child.open()

    def _do_next(self) -> Optional[Record]:
        record = self._child.next_record()
        if record is None:
            return None
        self.stats.tuples_read_left += 1
        return record.project(self._attributes)

    def _do_close(self) -> None:
        self._child.close()


class Limit(Operator):
    """Pass through at most ``n`` records of the child."""

    def __init__(self, child: Operator, n: int, name: str = "") -> None:
        if n < 0:
            raise ValueError(f"limit must be non-negative, got {n}")
        super().__init__(child.output_schema, name=name or f"limit({n})")
        self._child = child
        self._n = n
        self._emitted = 0

    def _do_open(self) -> None:
        self._emitted = 0
        self._child.open()

    def _do_next(self) -> Optional[Record]:
        if self._emitted >= self._n:
            return None
        record = self._child.next_record()
        if record is None:
            return None
        self.stats.tuples_read_left += 1
        self._emitted += 1
        return record

    def _do_close(self) -> None:
        self._child.close()


class Union(Operator):
    """Concatenate the outputs of several children with identical schemas."""

    def __init__(self, children: Sequence[Operator], name: str = "") -> None:
        if not children:
            raise ValueError("Union requires at least one child")
        schema = children[0].output_schema
        for child in children[1:]:
            if child.output_schema.attributes != schema.attributes:
                raise ValueError(
                    "Union children must share a schema: "
                    f"{schema.attributes} vs {child.output_schema.attributes}"
                )
        super().__init__(schema, name=name or "union")
        self._children = list(children)
        self._current = 0

    def _do_open(self) -> None:
        self._current = 0
        for child in self._children:
            child.open()

    def _do_next(self) -> Optional[Record]:
        while self._current < len(self._children):
            record = self._children[self._current].next_record()
            if record is not None:
                self.stats.tuples_read_left += 1
                return record
            self._current += 1
        return None

    def _do_close(self) -> None:
        for child in self._children:
            child.close()


class Materialise(Operator):
    """Drain the child on open and replay its output.

    Useful in benchmarks to exclude upstream cost from a timed region, and
    as the building block for the blocking (offline) linkage baseline.
    """

    def __init__(self, child: Operator, name: str = "") -> None:
        super().__init__(child.output_schema, name=name or "materialise")
        self._child = child
        self._buffer: List[Record] = []
        self._cursor = 0

    def _do_open(self) -> None:
        self._child.open()
        self._buffer = []
        while True:
            record = self._child.next_record()
            if record is None:
                break
            self._buffer.append(record)
            self.stats.tuples_read_left += 1
        self._child.close()
        self._cursor = 0

    def _do_next(self) -> Optional[Record]:
        if self._cursor >= len(self._buffer):
            return None
        record = self._buffer[self._cursor]
        self._cursor += 1
        return record

    @property
    def materialised(self) -> List[Record]:
        """The buffered child output (valid after ``open``)."""
        return self._buffer
