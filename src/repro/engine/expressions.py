"""A tiny expression language for selection predicates and projections.

The adaptive join itself only needs equality and similarity predicates on a
single join attribute, but the engine substrate exposes a small, composable
expression language so that realistic plans (filter before join, project
after join) can be written in the examples and benchmarks without resorting
to opaque lambdas.

Expressions are evaluated against a :class:`~repro.engine.tuples.Record` and
return a Python value; comparison and boolean nodes return ``bool``.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Sequence

from repro.engine.errors import SchemaError
from repro.engine.tuples import Record


class Expression:
    """Base class of all expression nodes."""

    def evaluate(self, record: Record) -> Any:
        """Evaluate the expression against ``record``."""
        raise NotImplementedError

    # -- combinators ----------------------------------------------------------

    def __and__(self, other: "Expression") -> "Conjunction":
        return Conjunction([self, other])

    def __or__(self, other: "Expression") -> "Disjunction":
        return Disjunction([self, other])

    def __invert__(self) -> "Negation":
        return Negation(self)

    def _compare(self, op: Callable[[Any, Any], bool], other: Any) -> "Comparison":
        other_expr = other if isinstance(other, Expression) else Constant(other)
        return Comparison(self, op, other_expr)

    def __eq__(self, other: Any) -> "Comparison":  # type: ignore[override]
        return self._compare(operator.eq, other)

    def __ne__(self, other: Any) -> "Comparison":  # type: ignore[override]
        return self._compare(operator.ne, other)

    def __lt__(self, other: Any) -> "Comparison":
        return self._compare(operator.lt, other)

    def __le__(self, other: Any) -> "Comparison":
        return self._compare(operator.le, other)

    def __gt__(self, other: Any) -> "Comparison":
        return self._compare(operator.gt, other)

    def __ge__(self, other: Any) -> "Comparison":
        return self._compare(operator.ge, other)

    __hash__ = object.__hash__


class AttributeRef(Expression):
    """Reference to a record attribute by name."""

    def __init__(self, attribute: str) -> None:
        if not attribute:
            raise SchemaError("attribute reference requires a non-empty name")
        self.attribute = attribute

    def evaluate(self, record: Record) -> Any:
        return record[self.attribute]

    def __repr__(self) -> str:
        return f"attr({self.attribute!r})"


class Constant(Expression):
    """A literal value."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, record: Record) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"const({self.value!r})"


class Comparison(Expression):
    """A binary comparison between two sub-expressions."""

    _SYMBOLS = {
        operator.eq: "==",
        operator.ne: "!=",
        operator.lt: "<",
        operator.le: "<=",
        operator.gt: ">",
        operator.ge: ">=",
    }

    def __init__(
        self,
        left: Expression,
        op: Callable[[Any, Any], bool],
        right: Expression,
    ) -> None:
        self.left = left
        self.op = op
        self.right = right

    def evaluate(self, record: Record) -> bool:
        return bool(self.op(self.left.evaluate(record), self.right.evaluate(record)))

    def __repr__(self) -> str:
        symbol = self._SYMBOLS.get(self.op, getattr(self.op, "__name__", "?"))
        return f"({self.left!r} {symbol} {self.right!r})"


class Conjunction(Expression):
    """Logical AND of sub-expressions (true when all are true)."""

    def __init__(self, operands: Sequence[Expression]) -> None:
        self.operands = list(operands)

    def evaluate(self, record: Record) -> bool:
        return all(operand.evaluate(record) for operand in self.operands)

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(o) for o in self.operands) + ")"


class Disjunction(Expression):
    """Logical OR of sub-expressions (true when any is true)."""

    def __init__(self, operands: Sequence[Expression]) -> None:
        self.operands = list(operands)

    def evaluate(self, record: Record) -> bool:
        return any(operand.evaluate(record) for operand in self.operands)

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(o) for o in self.operands) + ")"


class Negation(Expression):
    """Logical NOT of a sub-expression."""

    def __init__(self, operand: Expression) -> None:
        self.operand = operand

    def evaluate(self, record: Record) -> bool:
        return not self.operand.evaluate(record)

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"


class FunctionCall(Expression):
    """Apply an arbitrary Python callable to sub-expression values.

    Used, for example, to embed a string-similarity function in a selection
    predicate: ``FunctionCall(jaccard, [attr("a"), attr("b")]) >= 0.85``.
    """

    def __init__(
        self, function: Callable[..., Any], arguments: Sequence[Expression]
    ) -> None:
        self.function = function
        self.arguments = list(arguments)

    def evaluate(self, record: Record) -> Any:
        return self.function(*(a.evaluate(record) for a in self.arguments))

    def __repr__(self) -> str:
        name = getattr(self.function, "__name__", repr(self.function))
        return f"{name}({', '.join(repr(a) for a in self.arguments)})"


def attr(name: str) -> AttributeRef:
    """Shorthand constructor for :class:`AttributeRef`."""
    return AttributeRef(name)


def const(value: Any) -> Constant:
    """Shorthand constructor for :class:`Constant`."""
    return Constant(value)
