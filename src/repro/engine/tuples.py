"""Records and schemas.

The engine manipulates *records*: immutable, schema-conforming mappings from
attribute names to Python values.  A :class:`Schema` declares the ordered
attribute names of a relation (and, optionally, loose type expectations); a
:class:`Record` is a single tuple conforming to a schema.

The adaptive join additionally needs a tiny bit of per-tuple bookkeeping —
the "matched at least once exactly" flag used in Sec. 3.3 of the paper to
attribute variants to one of the two inputs.  That flag is *not* part of the
record value (records stay immutable and hashable); it lives in the join
operators' own hash-table entries instead.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.engine.errors import SchemaError


class Schema:
    """An ordered set of attribute names describing a relation.

    Parameters
    ----------
    attributes:
        Ordered attribute names.  Names must be non-empty strings and
        unique.
    name:
        Optional relation name, used only for display and error messages.

    Examples
    --------
    >>> schema = Schema(["accident_id", "location"], name="accidents")
    >>> schema.attributes
    ('accident_id', 'location')
    >>> "location" in schema
    True
    """

    __slots__ = ("_attributes", "_positions", "name")

    def __init__(self, attributes: Sequence[str], name: str = "") -> None:
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("a schema requires at least one attribute")
        for attribute in attrs:
            if not isinstance(attribute, str) or not attribute:
                raise SchemaError(
                    f"attribute names must be non-empty strings, got {attribute!r}"
                )
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"duplicate attribute names in {attrs!r}")
        self._attributes: Tuple[str, ...] = attrs
        self._positions: Dict[str, int] = {a: i for i, a in enumerate(attrs)}
        self.name = name

    @property
    def attributes(self) -> Tuple[str, ...]:
        """The ordered attribute names."""
        return self._attributes

    def position(self, attribute: str) -> int:
        """Return the ordinal position of ``attribute``.

        Raises :class:`SchemaError` if the attribute is unknown.
        """
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {attribute!r}; schema has {self._attributes}"
            ) from None

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._positions

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[str]:
        return iter(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"Schema({list(self._attributes)!r}{label})"

    def project(self, attributes: Sequence[str], name: str = "") -> "Schema":
        """Return a new schema restricted to ``attributes`` (in that order)."""
        for attribute in attributes:
            if attribute not in self:
                raise SchemaError(
                    f"cannot project on unknown attribute {attribute!r}"
                )
        return Schema(attributes, name=name or self.name)

    def rename(self, mapping: Mapping[str, str], name: str = "") -> "Schema":
        """Return a new schema with attributes renamed through ``mapping``.

        Attributes absent from ``mapping`` keep their names.
        """
        renamed = [mapping.get(a, a) for a in self._attributes]
        return Schema(renamed, name=name or self.name)

    def concat(self, other: "Schema", name: str = "") -> "Schema":
        """Concatenate two schemas, e.g. for a join output.

        Overlapping names from ``other`` are disambiguated with the other
        schema's relation name (``other.name + '.' + attr``) or, failing
        that, with a ``_2`` suffix.
        """
        merged = list(self._attributes)
        for attribute in other.attributes:
            if attribute not in self:
                merged.append(attribute)
                continue
            if other.name:
                candidate = f"{other.name}.{attribute}"
            else:
                candidate = f"{attribute}_2"
            suffix = 2
            while candidate in merged:
                suffix += 1
                candidate = f"{attribute}_{suffix}"
            merged.append(candidate)
        return Schema(merged, name=name)

    def validate(self, values: Mapping[str, Any]) -> None:
        """Check that ``values`` has exactly the schema's attributes."""
        missing = [a for a in self._attributes if a not in values]
        extra = [a for a in values if a not in self]
        if missing or extra:
            raise SchemaError(
                f"record does not match schema {self._attributes}: "
                f"missing={missing}, unexpected={extra}"
            )


class Record:
    """An immutable tuple conforming to a :class:`Schema`.

    Records compare and hash by *value* (schema attributes plus values), so
    they can safely be used as dictionary keys and set members — a property
    the join operators rely on for result de-duplication.

    Examples
    --------
    >>> schema = Schema(["id", "location"])
    >>> r = Record(schema, {"id": 7, "location": "LIG GE GENOVA"})
    >>> r["location"]
    'LIG GE GENOVA'
    >>> r.values
    (7, 'LIG GE GENOVA')
    """

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: Schema, values: Mapping[str, Any]) -> None:
        schema.validate(values)
        self._schema = schema
        self._values: Tuple[Any, ...] = tuple(values[a] for a in schema.attributes)

    @classmethod
    def from_values(cls, schema: Schema, values: Sequence[Any]) -> "Record":
        """Build a record from positional ``values`` following the schema order."""
        if len(values) != len(schema):
            raise SchemaError(
                f"expected {len(schema)} values for schema {schema.attributes}, "
                f"got {len(values)}"
            )
        return cls(schema, dict(zip(schema.attributes, values)))

    @classmethod
    def from_trusted(cls, schema: Schema, values: Tuple[Any, ...]) -> "Record":
        """Build a record from an already-validated positional value tuple.

        Skips schema validation and the dict round-trip of
        :meth:`from_values`; the caller guarantees that ``values`` is a
        tuple with exactly one value per schema attribute, in order.  Used
        by decoders that reconstruct records from a representation that was
        itself built from validated records (e.g. the columnar shard
        handoff blocks), where re-validating every row would dominate the
        decode cost.
        """
        record = cls.__new__(cls)
        record._schema = schema
        record._values = values
        return record

    @property
    def schema(self) -> Schema:
        """The schema this record conforms to."""
        return self._schema

    @property
    def values(self) -> Tuple[Any, ...]:
        """The record values, in schema attribute order."""
        return self._values

    def __getitem__(self, attribute: str) -> Any:
        return self._values[self._schema.position(attribute)]

    def value_at(self, position: int) -> Any:
        """Positional access without the name→position lookup.

        Hot-path helper for callers that resolve an attribute's position
        once per schema (e.g. the join tuple stores) and then read it for
        every record.
        """
        return self._values[position]

    def get(self, attribute: str, default: Any = None) -> Any:
        """Return the value of ``attribute`` or ``default`` if unknown."""
        if attribute not in self._schema:
            return default
        return self[attribute]

    def as_dict(self) -> Dict[str, Any]:
        """Return a plain ``dict`` view of the record."""
        return dict(zip(self._schema.attributes, self._values))

    def project(self, attributes: Sequence[str]) -> "Record":
        """Return a new record restricted to ``attributes``."""
        schema = self._schema.project(attributes)
        return Record(schema, {a: self[a] for a in attributes})

    def concat(self, other: "Record", schema: Optional[Schema] = None) -> "Record":
        """Concatenate this record with ``other`` (e.g. to form a join result).

        If ``schema`` is not given, one is derived with
        :meth:`Schema.concat`.
        """
        if schema is None:
            schema = self._schema.concat(other.schema)
        values = list(self._values) + list(other.values)
        return Record.from_values(schema, values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return (
            self._schema.attributes == other._schema.attributes
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return hash((self._schema.attributes, self._values))

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{a}={v!r}" for a, v in zip(self._schema.attributes, self._values)
        )
        return f"Record({pairs})"


def records_from_dicts(
    schema: Schema, rows: Iterable[Mapping[str, Any]]
) -> Iterator[Record]:
    """Yield :class:`Record` objects built from dictionaries.

    A convenience used by the data generator and by tests.
    """
    for row in rows:
        yield Record(schema, row)
