"""In-memory relations.

A :class:`Table` is an ordered, in-memory collection of
:class:`~repro.engine.tuples.Record` objects sharing one schema.  Tables can
be scanned through the iterator protocol (:class:`~repro.engine.operators.TableScan`)
or consumed as streams, which is the mode of use in the paper (joins over
inputs that "are actually data streams").
"""

from __future__ import annotations

import csv
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
)

from repro.engine.errors import SchemaError
from repro.engine.tuples import Record, Schema


class Table:
    """An ordered, in-memory relation.

    Parameters
    ----------
    schema:
        The schema all records must conform to.
    records:
        Optional initial records.  Records whose schema attributes differ
        from ``schema`` are rejected.
    name:
        Optional relation name (falls back to the schema name).

    Examples
    --------
    >>> schema = Schema(["id", "location"], name="atlas")
    >>> table = Table(schema)
    >>> _ = table.insert_values(1, "LIG GE GENOVA")
    >>> len(table)
    1
    """

    def __init__(
        self,
        schema: Schema,
        records: Optional[Iterable[Record]] = None,
        name: str = "",
    ) -> None:
        self._schema = schema
        self.name = name or schema.name or "table"
        self._records: List[Record] = []
        if records is not None:
            for record in records:
                self.insert(record)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_dicts(
        cls,
        schema: Schema,
        rows: Iterable[Mapping[str, Any]],
        name: str = "",
    ) -> "Table":
        """Build a table from an iterable of dictionaries."""
        return cls(schema, (Record(schema, row) for row in rows), name=name)

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Iterable[Sequence[Any]],
        name: str = "",
    ) -> "Table":
        """Build a table from positional value sequences in schema order."""
        return cls(schema, (Record.from_values(schema, row) for row in rows), name=name)

    @classmethod
    def from_csv(
        cls,
        path: str,
        schema: Optional[Schema] = None,
        name: str = "",
        delimiter: str = ",",
    ) -> "Table":
        """Load a table from a CSV file with a header row.

        If ``schema`` is omitted it is derived from the header; all values
        are kept as strings in that case.
        """
        with open(path, newline="", encoding="utf-8") as handle:
            reader = csv.DictReader(handle, delimiter=delimiter)
            if reader.fieldnames is None:
                raise SchemaError(f"CSV file {path!r} has no header row")
            derived = schema or Schema(list(reader.fieldnames), name=name)
            rows = [{a: row.get(a, "") for a in derived.attributes} for row in reader]
        return cls.from_dicts(derived, rows, name=name)

    # -- basic container behaviour -------------------------------------------

    @property
    def schema(self) -> Schema:
        """The table schema."""
        return self._schema

    @property
    def records(self) -> List[Record]:
        """The records, in insertion order (a live list — do not mutate)."""
        return self._records

    def insert(self, record: Record) -> None:
        """Append ``record`` to the table (schema-checked)."""
        if record.schema.attributes != self._schema.attributes:
            raise SchemaError(
                f"record schema {record.schema.attributes} does not match "
                f"table schema {self._schema.attributes}"
            )
        self._records.append(record)

    def insert_dict(self, row: Mapping[str, Any]) -> Record:
        """Insert a record built from a mapping; return the record."""
        record = Record(self._schema, row)
        self._records.append(record)
        return record

    def insert_values(self, *values: Any) -> Record:
        """Insert a record built from positional values; return the record."""
        record = Record.from_values(self._schema, list(values))
        self._records.append(record)
        return record

    def extend(self, records: Iterable[Record]) -> None:
        """Insert every record of ``records``."""
        for record in records:
            self.insert(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __getitem__(self, index: int) -> Record:
        return self._records[index]

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self._records)} records)"

    # -- simple relational helpers --------------------------------------------

    def column(self, attribute: str) -> List[Any]:
        """Return all values of ``attribute`` in insertion order."""
        position = self._schema.position(attribute)
        return [record.values[position] for record in self._records]

    def distinct(self, attribute: str) -> List[Any]:
        """Return the distinct values of ``attribute``, preserving first-seen order."""
        seen: Dict[Any, None] = {}
        for value in self.column(attribute):
            seen.setdefault(value, None)
        return list(seen)

    def filter(self, predicate: Callable[[Record], bool], name: str = "") -> "Table":
        """Return a new table with the records satisfying ``predicate``."""
        return Table(
            self._schema,
            (r for r in self._records if predicate(r)),
            name=name or f"{self.name}_filtered",
        )

    def head(self, n: int) -> "Table":
        """Return a new table with the first ``n`` records."""
        return Table(self._schema, self._records[:n], name=f"{self.name}_head{n}")

    def sample(self, n: int, rng) -> "Table":
        """Return a new table with ``n`` records sampled without replacement.

        ``rng`` is a ``random.Random`` instance so sampling stays
        reproducible; the table itself never owns randomness.
        """
        chosen = rng.sample(self._records, min(n, len(self._records)))
        return Table(self._schema, chosen, name=f"{self.name}_sample{n}")

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Return the table contents as a list of plain dictionaries."""
        return [record.as_dict() for record in self._records]

    def to_csv(self, path: str, delimiter: str = ",") -> None:
        """Write the table to ``path`` as CSV with a header row."""
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle, delimiter=delimiter)
            writer.writerow(self._schema.attributes)
            for record in self._records:
                writer.writerow(record.values)
