"""The iterator (OPEN/NEXT/CLOSE) protocol with explicit quiescent states.

The paper builds on the observation (Eurviriyanukul et al., cited as [11])
that pipelined, iterator-based physical operators can be *replaced* during
execution provided the replacement happens at a **quiescent state**: a state
in which a completed call to ``NEXT()`` leaves no partially processed work
outstanding, so the remainder of the computation can be carried out by a
different operator without re-processing or losing tuples.

This module captures that protocol:

* :class:`OperatorState` — the lifecycle states of Fig. 2 of the paper
  (created → open → producing/quiescent → closed).
* :class:`Operator` — the abstract base class implementing the protocol,
  including protocol-violation checks and per-operator statistics.
* :class:`OperatorStats` — counters shared by all operators (tuples read,
  tuples produced, NEXT calls, …) that the MAR monitor can observe.

The join operators in :mod:`repro.joins` extend :class:`Operator` with an
explicit ``is_quiescent()`` test; relational operators in
:mod:`repro.engine.operators` are trivially quiescent after every ``NEXT``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.engine.errors import IteratorProtocolError
from repro.engine.tuples import Record, Schema


class OperatorState(enum.Enum):
    """Lifecycle states of an iterator-based operator (paper Fig. 2).

    ``CREATED``
        The operator exists but ``open()`` has not been called.
    ``OPEN``
        ``open()`` has completed; ``next()`` may be called.
    ``EXHAUSTED``
        A call to ``next()`` returned ``None``; the operator has produced
        its complete output.  Further ``next()`` calls keep returning
        ``None``.
    ``CLOSED``
        ``close()`` has been called; no further calls are allowed.
    """

    CREATED = "created"
    OPEN = "open"
    EXHAUSTED = "exhausted"
    CLOSED = "closed"


@dataclass
class OperatorStats:
    """Execution counters maintained by every operator.

    These are the "observable quantities" that the MAR monitor reads
    periodically (Sec. 3 of the paper): most importantly the number of
    result tuples produced so far and the number of steps executed.
    """

    next_calls: int = 0
    tuples_produced: int = 0
    tuples_read_left: int = 0
    tuples_read_right: int = 0
    open_calls: int = 0
    close_calls: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def tuples_read(self) -> int:
        """Total input tuples consumed from both sides."""
        return self.tuples_read_left + self.tuples_read_right

    def snapshot(self) -> "OperatorStats":
        """Return an independent copy of the current counters."""
        return OperatorStats(
            next_calls=self.next_calls,
            tuples_produced=self.tuples_produced,
            tuples_read_left=self.tuples_read_left,
            tuples_read_right=self.tuples_read_right,
            open_calls=self.open_calls,
            close_calls=self.close_calls,
            extra=dict(self.extra),
        )


class Operator:
    """Abstract base class for iterator-style physical operators.

    Subclasses implement :meth:`_do_open`, :meth:`_do_next` and
    :meth:`_do_close`.  The public :meth:`open`, :meth:`next_record` and
    :meth:`close` wrappers enforce the protocol (raising
    :class:`IteratorProtocolError` on misuse) and maintain
    :class:`OperatorStats`.

    Operators are also plain Python iterables: iterating over an operator
    opens it (if needed), yields records until exhaustion and closes it.
    """

    def __init__(self, output_schema: Schema, name: str = "") -> None:
        self._output_schema = output_schema
        self._state = OperatorState.CREATED
        self.name = name or type(self).__name__
        self.stats = OperatorStats()

    # -- public protocol ---------------------------------------------------

    @property
    def output_schema(self) -> Schema:
        """Schema of the records produced by this operator."""
        return self._output_schema

    @property
    def state(self) -> OperatorState:
        """Current lifecycle state."""
        return self._state

    def open(self) -> None:
        """Prepare the operator for producing records (``OPEN()``)."""
        if self._state is not OperatorState.CREATED:
            raise IteratorProtocolError(
                f"{self.name}: open() called in state {self._state.value}"
            )
        self.stats.open_calls += 1
        self._do_open()
        self._state = OperatorState.OPEN

    def next_record(self) -> Optional[Record]:
        """Produce the next output record, or ``None`` when exhausted (``NEXT()``)."""
        if self._state is OperatorState.EXHAUSTED:
            return None
        if self._state is not OperatorState.OPEN:
            raise IteratorProtocolError(
                f"{self.name}: next_record() called in state {self._state.value}"
            )
        self.stats.next_calls += 1
        record = self._do_next()
        if record is None:
            self._state = OperatorState.EXHAUSTED
        else:
            self.stats.tuples_produced += 1
        return record

    def close(self) -> None:
        """Release any resources held by the operator (``CLOSE()``)."""
        if self._state is OperatorState.CLOSED:
            raise IteratorProtocolError(f"{self.name}: close() called twice")
        if self._state is OperatorState.CREATED:
            raise IteratorProtocolError(
                f"{self.name}: close() called before open()"
            )
        self.stats.close_calls += 1
        self._do_close()
        self._state = OperatorState.CLOSED

    def is_quiescent(self) -> bool:
        """Whether the operator is currently in a quiescent state.

        Default: any state reached after a completed ``next_record`` call is
        quiescent.  Operators with outstanding intra-call work (such as a
        probe tuple whose matches have not all been emitted, see SHJoin)
        override this.
        """
        return True

    # -- iteration convenience ---------------------------------------------

    def __iter__(self) -> Iterator[Record]:
        if self._state is OperatorState.CREATED:
            self.open()
        try:
            while True:
                record = self.next_record()
                if record is None:
                    return
                yield record
        finally:
            if self._state in (OperatorState.OPEN, OperatorState.EXHAUSTED):
                self.close()

    def run(self) -> list:
        """Open, drain and close the operator, returning all output records."""
        return list(self)

    # -- subclass hooks ------------------------------------------------------

    def _do_open(self) -> None:
        raise NotImplementedError

    def _do_next(self) -> Optional[Record]:
        raise NotImplementedError

    def _do_close(self) -> None:  # pragma: no cover - trivial default
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} state={self._state.value}>"
