"""Record streams.

The symmetric join operators consume their two inputs as *streams*: pull-
based sources that deliver one record at a time and cannot be rewound.  This
mirrors the paper's target scenario in which "a priori analysis of the
tables involved is not feasible" because the inputs only become available at
query time (mashup integration, continuous streams).

A :class:`RecordStream` is deliberately simpler than an
:class:`~repro.engine.iterators.Operator`: it has no lifecycle and no
statistics of its own; it only supports :meth:`next_record`, returning
``None`` on exhaustion.  Streams also remember how many records they have
delivered, which the symmetric joins use for scheduling.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Union

from repro.engine.iterators import Operator
from repro.engine.table import Table
from repro.engine.tuples import Record, Schema


class RecordStream:
    """Abstract pull-based source of records.

    Subclasses implement :meth:`_next`.  The public :meth:`next_record`
    tracks the delivered-count and latches exhaustion (once ``None`` is
    returned, the stream stays exhausted).
    """

    #: Whether :meth:`next_records` is cheaper than repeated
    #: :meth:`next_record` calls.  Only true for in-memory streams; consumers
    #: that buffer ahead (the symmetric join engine's read-ahead) must not
    #: bulk-pull lazy streams, where asking for ``n`` records *blocks* until
    #: all ``n`` are produced — fatal for live/continuous sources.
    supports_bulk_pull = False

    def __init__(self, schema: Schema, name: str = "") -> None:
        self._schema = schema
        self.name = name or type(self).__name__
        self._delivered = 0
        self._exhausted = False

    @property
    def schema(self) -> Schema:
        """Schema of the records delivered by the stream."""
        return self._schema

    @property
    def delivered(self) -> int:
        """Number of records delivered so far."""
        return self._delivered

    @property
    def exhausted(self) -> bool:
        """Whether the stream has signalled exhaustion."""
        return self._exhausted

    def next_record(self) -> Optional[Record]:
        """Return the next record, or ``None`` when the stream is exhausted."""
        if self._exhausted:
            return None
        record = self._next()
        if record is None:
            self._exhausted = True
            return None
        self._delivered += 1
        return record

    def _next(self) -> Optional[Record]:
        raise NotImplementedError

    def next_records(self, limit: int) -> List[Record]:
        """Pull up to ``limit`` records in one call (bulk pull).

        Returns fewer than ``limit`` records exactly when the stream runs
        dry, in which case exhaustion is latched just as with
        :meth:`next_record`.  The base implementation loops over
        :meth:`next_record`; in-memory streams override it with a slice to
        amortise the per-record dispatch (used by the batched stepping of
        the symmetric join engine).
        """
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        records: List[Record] = []
        for _ in range(limit):
            record = self.next_record()
            if record is None:
                break
            records.append(record)
        return records

    def __iter__(self) -> Iterator[Record]:
        while True:
            record = self.next_record()
            if record is None:
                return
            yield record

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} delivered={self._delivered}"
            f"{' exhausted' if self._exhausted else ''}>"
        )


class ListStream(RecordStream):
    """A stream backed by an in-memory sequence of records."""

    supports_bulk_pull = True

    def __init__(
        self, schema: Schema, records: Sequence[Record], name: str = ""
    ) -> None:
        super().__init__(schema, name=name)
        self._records = list(records)
        self._cursor = 0

    def _next(self) -> Optional[Record]:
        if self._cursor >= len(self._records):
            return None
        record = self._records[self._cursor]
        self._cursor += 1
        return record

    def next_records(self, limit: int) -> List[Record]:
        """Bulk pull via a list slice (no per-record dispatch)."""
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        if self._exhausted or limit == 0:
            return []
        records = self._records[self._cursor : self._cursor + limit]
        self._cursor += len(records)
        self._delivered += len(records)
        if len(records) < limit:
            # The slice came up short, so the stream is drained: latch
            # exhaustion exactly as a ``None`` pull would have.
            self._exhausted = True
        return records

    @property
    def remaining(self) -> int:
        """Number of records not yet delivered."""
        return len(self._records) - self._cursor

    def __len__(self) -> int:
        return len(self._records)


class RowSliceStream(RecordStream):
    """A stream over selected rows of a row-addressable record source.

    The source is anything exposing ``schema`` and ``record(row) -> Record``
    (e.g. a columnar handoff block, see :mod:`repro.runtime.handoff`); the
    stream delivers ``source.record(row)`` for each row index in ``rows``,
    in order.  Rows may repeat — replicated sharding expresses replication
    as repeated indices rather than copied records.  Records are decoded
    lazily, one bulk pull at a time, so a shard worker never materialises
    rows it does not consume.

    Like :class:`ListStream` it is an in-memory source: bulk pulls are a
    tight loop over the index slice, and :func:`len` reports the total row
    count so sized-input heuristics keep working.
    """

    supports_bulk_pull = True

    def __init__(self, source, rows: Sequence[int], name: str = "") -> None:
        super().__init__(source.schema, name=name)
        self._source = source
        self._rows = rows
        self._cursor = 0

    def _next(self) -> Optional[Record]:
        if self._cursor >= len(self._rows):
            return None
        record = self._source.record(self._rows[self._cursor])
        self._cursor += 1
        return record

    def next_records(self, limit: int) -> List[Record]:
        """Bulk pull by decoding one slice of row indices."""
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        if self._exhausted or limit == 0:
            return []
        rows = self._rows[self._cursor : self._cursor + limit]
        record_of = self._source.record
        records = [record_of(row) for row in rows]
        self._cursor += len(records)
        self._delivered += len(records)
        if len(records) < limit:
            self._exhausted = True
        return records

    @property
    def remaining(self) -> int:
        """Number of records not yet delivered."""
        return len(self._rows) - self._cursor

    def __len__(self) -> int:
        return len(self._rows)


class TableStream(ListStream):
    """A stream over the records of a :class:`~repro.engine.table.Table`."""

    def __init__(self, table: Table, name: str = "") -> None:
        super().__init__(table.schema, table.records, name=name or table.name)


class IteratorStream(RecordStream):
    """A stream wrapping an arbitrary Python iterator of records."""

    def __init__(
        self, schema: Schema, iterator: Iterable[Record], name: str = ""
    ) -> None:
        super().__init__(schema, name=name)
        self._iterator = iter(iterator)

    def _next(self) -> Optional[Record]:
        return next(self._iterator, None)


class OperatorStream(RecordStream):
    """A stream over the output of an :class:`~repro.engine.iterators.Operator`.

    The operator is opened lazily on first pull and closed on exhaustion,
    allowing pipelined plans to feed the symmetric joins.
    """

    def __init__(self, operator: Operator, name: str = "") -> None:
        super().__init__(operator.output_schema, name=name or operator.name)
        self._operator = operator
        self._opened = False

    def _next(self) -> Optional[Record]:
        if not self._opened:
            self._operator.open()
            self._opened = True
        record = self._operator.next_record()
        if record is None:
            self._operator.close()
        return record


class GeneratorStream(RecordStream):
    """A stream produced lazily by a zero-argument factory of iterables.

    Useful in tests and benchmarks to avoid materialising large inputs until
    the stream is actually pulled.
    """

    def __init__(
        self,
        schema: Schema,
        factory: Callable[[], Iterable[Record]],
        name: str = "",
    ) -> None:
        super().__init__(schema, name=name)
        self._factory = factory
        self._iterator: Optional[Iterator[Record]] = None

    def _next(self) -> Optional[Record]:
        if self._iterator is None:
            self._iterator = iter(self._factory())
        return next(self._iterator, None)


def interleave(
    left: Sequence[Record], right: Sequence[Record]
) -> List[tuple]:
    """Return an alternating (side, record) schedule over two record lists.

    The symmetric joins read their inputs in alternation (left, right, left,
    right, …) until one side is exhausted, then drain the other.  This
    helper builds that schedule explicitly — it is used by tests and by the
    data generator to reason about the scan order the join will follow.

    Returns a list of ``("left", record)`` / ``("right", record)`` pairs.
    """
    schedule: List[tuple] = []
    left_iter, right_iter = iter(left), iter(right)
    while True:
        progressed = False
        l_record = next(left_iter, None)
        if l_record is not None:
            schedule.append(("left", l_record))
            progressed = True
        r_record = next(right_iter, None)
        if r_record is not None:
            schedule.append(("right", r_record))
            progressed = True
        if not progressed:
            return schedule


#: A join/stream input: a live record stream or an in-memory table.
InputLike = Union[RecordStream, Table]


def as_stream(source: InputLike) -> RecordStream:
    """Accept a stream, a table, or any ``.stream()``-bearing source.

    Tables wrap in a :class:`TableStream`; sources exposing a
    ``stream()`` factory (e.g. a shard input backed by a columnar block)
    contribute the stream they build — for block-backed inputs that is a
    zero-copy :class:`RowSliceStream` over the shared buffers.  Streams
    pass through unchanged.
    """
    if isinstance(source, Table):
        return TableStream(source)
    if isinstance(source, RecordStream):
        return source
    stream_factory = getattr(source, "stream", None)
    if callable(stream_factory):
        return stream_factory()
    return source
