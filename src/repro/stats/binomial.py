"""Binomial distribution utilities.

The assessor's outlier test (Eq. 1 of the paper) requires the cumulative
distribution function of a binomial random variable whose parameters change
at every assessment step.  We implement the distribution from first
principles (log-space for numerical stability) so the core library has no
hard dependency on scipy; tests cross-check against ``scipy.stats.binom``
when scipy is available.

For the large ``n`` reached late in a join (tens of thousands of trials), an
exact summation of the CDF is still affordable because the assessment only
runs every ``δ_adapt`` steps, but a normal approximation with continuity
correction is provided and used automatically above a configurable cut-off.
"""

from __future__ import annotations

import math
from functools import lru_cache

#: Number of trials above which :func:`binomial_cdf` switches to the normal
#: approximation by default.  The approximation error is far below the
#: θ_out = 0.05 decision threshold at this size.
NORMAL_APPROXIMATION_CUTOFF = 20_000


@lru_cache(maxsize=200_000)
def log_binomial_coefficient(n: int, k: int) -> float:
    """Natural log of the binomial coefficient C(n, k).

    Uses ``math.lgamma`` for stability at large ``n``.
    """
    if k < 0 or k > n:
        return float("-inf")
    if k == 0 or k == n:
        return 0.0
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def binomial_pmf(k: int, n: int, p: float) -> float:
    """Probability mass P(X = k) for X ~ bin(n, p)."""
    _validate(n, p)
    if k < 0 or k > n:
        return 0.0
    if p == 0.0:
        return 1.0 if k == 0 else 0.0
    if p == 1.0:
        return 1.0 if k == n else 0.0
    log_pmf = (
        log_binomial_coefficient(n, k)
        + k * math.log(p)
        + (n - k) * math.log1p(-p)
    )
    return math.exp(log_pmf)


def binomial_cdf(
    k: int, n: int, p: float, exact_cutoff: int = NORMAL_APPROXIMATION_CUTOFF
) -> float:
    """Cumulative probability P(X <= k) for X ~ bin(n, p).

    Parameters
    ----------
    k, n, p:
        The observation and the distribution parameters.
    exact_cutoff:
        For ``n`` at or below this value the CDF is computed by exact
        summation of the PMF; above it the normal approximation with
        continuity correction is used.  Pass ``float('inf')`` (or a huge
        int) to force exact summation.
    """
    _validate(n, p)
    if k < 0:
        return 0.0
    if k >= n:
        return 1.0
    if p == 0.0:
        return 1.0
    if p == 1.0:
        return 0.0
    if n > exact_cutoff:
        return normal_approx_cdf(k, n, p)
    # Exact summation.  Sum the smaller tail for accuracy and speed.
    mean = n * p
    if k <= mean:
        total = 0.0
        for i in range(0, k + 1):
            total += binomial_pmf(i, n, p)
        return min(total, 1.0)
    total = 0.0
    for i in range(k + 1, n + 1):
        total += binomial_pmf(i, n, p)
    return max(0.0, 1.0 - total)


def binomial_sf(k: int, n: int, p: float) -> float:
    """Survival function P(X > k) for X ~ bin(n, p)."""
    return max(0.0, 1.0 - binomial_cdf(k, n, p))


def normal_approx_cdf(k: int, n: int, p: float) -> float:
    """Normal approximation (with continuity correction) to the binomial CDF."""
    _validate(n, p)
    mean = n * p
    variance = n * p * (1.0 - p)
    if variance <= 0.0:
        return 1.0 if k >= mean else 0.0
    z = (k + 0.5 - mean) / math.sqrt(variance)
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def binomial_mean(n: int, p: float) -> float:
    """Mean n*p of bin(n, p)."""
    _validate(n, p)
    return n * p


def binomial_variance(n: int, p: float) -> float:
    """Variance n*p*(1-p) of bin(n, p)."""
    _validate(n, p)
    return n * p * (1.0 - p)


def _validate(n: int, p: float) -> None:
    if n < 0:
        raise ValueError(f"number of trials must be non-negative, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p}")
