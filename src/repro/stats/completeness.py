"""Result-completeness model and outlier test (paper Sec. 3.2, Eq. 1).

Under the parent-child assumption, each tuple of the child table ``S``
matches exactly one tuple of the parent table ``R`` when no variants are
present.  If, at some point of a symmetric hash join, ``n_parent`` tuples of
``R`` have been scanned, then the probability that a scanned child tuple has
already met its parent is ``p = n_parent / |R|``.  The observed result size
after scanning ``n_child`` child tuples is therefore modelled as a binomial
random variable::

    O ~ bin(n_child, n_parent / |R|)

(The paper states the symmetric-scan special case ``O_n ~ bin(n, n/|R|)``,
obtained when both sides have delivered the same number ``n`` of tuples.)

The assessor flags the observation as an **outlier** — statistical evidence
that variants are suppressing matches — when the binomial CDF at the
observed result size falls at or below a threshold ``θ_out`` (Eq. 1)::

    P(O <= observed) <= θ_out
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stats.binomial import binomial_cdf, binomial_mean


@dataclass(frozen=True)
class ResultSizeObservation:
    """One monitor reading used by the assessor.

    Attributes
    ----------
    observed_matches:
        The number of result tuples produced so far (exact matches and
        approximate matches both count: an approximate match recovers a
        pair the parent-child model expects).
    child_scanned:
        Number of child-table tuples scanned so far.
    parent_scanned:
        Number of parent-table tuples scanned so far.
    step:
        The join step at which the observation was taken.
    """

    observed_matches: int
    child_scanned: int
    parent_scanned: int
    step: int


class CompletenessModel:
    """Expected-result-size model for a parent-child join.

    Parameters
    ----------
    parent_size:
        ``|R|``, the (expected) size of the parent table.  In the streaming
        scenario this is assumed known or estimated (e.g. the published size
        of a reference atlas); the paper treats it as known.
    outlier_threshold:
        ``θ_out`` of Eq. 1; an observation is an outlier when the CDF at
        the observation falls at or below this value.
    """

    def __init__(self, parent_size: int, outlier_threshold: float = 0.05) -> None:
        if parent_size <= 0:
            raise ValueError(f"parent table size must be positive, got {parent_size}")
        if not 0.0 < outlier_threshold < 1.0:
            raise ValueError(
                f"outlier threshold must be in (0, 1), got {outlier_threshold}"
            )
        self.parent_size = parent_size
        self.outlier_threshold = outlier_threshold

    # -- model -----------------------------------------------------------------

    def match_probability(self, parent_scanned: int) -> float:
        """``p(n) = n_parent / |R|``, clamped to [0, 1]."""
        if parent_scanned < 0:
            raise ValueError("parent_scanned must be non-negative")
        return min(1.0, parent_scanned / self.parent_size)

    def expected_matches(self, child_scanned: int, parent_scanned: int) -> float:
        """Expected number of matches after the given scan progress."""
        return binomial_mean(child_scanned, self.match_probability(parent_scanned))

    def observation_probability(self, observation: ResultSizeObservation) -> float:
        """``P(O <= observed)`` under the binomial model.

        This is the left-tail probability the σ predicate compares against
        ``θ_out``.
        """
        probability = self.match_probability(observation.parent_scanned)
        return binomial_cdf(
            observation.observed_matches, observation.child_scanned, probability
        )

    def is_outlier(self, observation: ResultSizeObservation) -> bool:
        """Eq. 1: the observation is a statistically significant shortfall."""
        if observation.child_scanned == 0:
            return False
        return self.observation_probability(observation) <= self.outlier_threshold

    def shortfall(self, observation: ResultSizeObservation) -> float:
        """Expected minus observed matches (positive = lagging behind)."""
        return (
            self.expected_matches(
                observation.child_scanned, observation.parent_scanned
            )
            - observation.observed_matches
        )


def binomial_outlier_probability(
    observed: int, trials: int, probability: float
) -> float:
    """Stand-alone helper: ``P(X <= observed)`` for ``X ~ bin(trials, probability)``."""
    return binomial_cdf(observed, trials, probability)


def is_result_size_outlier(
    observed: int, trials: int, probability: float, threshold: float = 0.05
) -> bool:
    """Stand-alone Eq. 1 test without constructing a :class:`CompletenessModel`."""
    if trials == 0:
        return False
    return binomial_cdf(observed, trials, probability) <= threshold
