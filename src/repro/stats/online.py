"""Small online estimators.

Used by the cost-calibration benchmarks (per-state step-time averages,
transition-time averages) and by the monitor's bookkeeping.  Welford's
algorithm keeps the mean and variance numerically stable without storing
samples.
"""

from __future__ import annotations

import math
from typing import Optional


class OnlineMeanVariance:
    """Welford online mean / variance accumulator."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Incorporate one sample."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    @property
    def count(self) -> int:
        """Number of samples incorporated."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineMeanVariance") -> "OnlineMeanVariance":
        """Return a new accumulator combining this one and ``other``."""
        merged = OnlineMeanVariance()
        total = self._count + other._count
        if total == 0:
            return merged
        delta = other._mean - self._mean
        merged._count = total
        merged._mean = self._mean + delta * other._count / total
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self._count * other._count / total
        )
        return merged

    def __repr__(self) -> str:
        return (
            f"OnlineMeanVariance(count={self._count}, mean={self.mean:.6g}, "
            f"stddev={self.stddev:.6g})"
        )


class RateEstimator:
    """Estimate an event rate over a count of opportunities.

    A convenience wrapper (successes / trials with optional Laplace
    smoothing) used when reporting match rates in the benchmarks.
    """

    def __init__(self, smoothing: float = 0.0) -> None:
        if smoothing < 0.0:
            raise ValueError(f"smoothing must be non-negative, got {smoothing}")
        self._successes = 0
        self._trials = 0
        self._smoothing = smoothing

    def record(self, success: bool) -> None:
        """Record one trial."""
        self._trials += 1
        if success:
            self._successes += 1

    @property
    def successes(self) -> int:
        """Number of successful trials recorded."""
        return self._successes

    @property
    def trials(self) -> int:
        """Total number of trials recorded."""
        return self._trials

    @property
    def rate(self) -> Optional[float]:
        """Estimated success rate, or ``None`` when no trials were recorded
        and no smoothing is configured."""
        denominator = self._trials + 2.0 * self._smoothing
        if denominator == 0.0:
            return None
        return (self._successes + self._smoothing) / denominator

    def __repr__(self) -> str:
        return f"RateEstimator({self._successes}/{self._trials})"
