"""Probability and streaming-statistics substrate.

Everything the MAR assessor needs to decide whether the observed join result
size is "statistically significantly" behind expectation:

* an exact (and normal-approximated) binomial distribution —
  :mod:`repro.stats.binomial`;
* the result-size model of Sec. 3.2 (``O_n ~ bin(n, n/|R|)``) and the
  outlier test of Eq. 1 — :mod:`repro.stats.completeness`;
* sliding-window counters used by the ``µ`` predicates —
  :mod:`repro.stats.windows`;
* small online estimators (mean/variance, rate) used by the cost
  calibration benches — :mod:`repro.stats.online`.
"""

from repro.stats.binomial import (
    binomial_cdf,
    binomial_pmf,
    binomial_sf,
    log_binomial_coefficient,
    normal_approx_cdf,
)
from repro.stats.completeness import (
    CompletenessModel,
    ResultSizeObservation,
    binomial_outlier_probability,
    is_result_size_outlier,
)
from repro.stats.online import OnlineMeanVariance, RateEstimator
from repro.stats.windows import BooleanHistory, SlidingWindowCounter

__all__ = [
    "binomial_pmf",
    "binomial_cdf",
    "binomial_sf",
    "log_binomial_coefficient",
    "normal_approx_cdf",
    "CompletenessModel",
    "ResultSizeObservation",
    "binomial_outlier_probability",
    "is_result_size_outlier",
    "SlidingWindowCounter",
    "BooleanHistory",
    "OnlineMeanVariance",
    "RateEstimator",
]
