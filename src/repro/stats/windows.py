"""Sliding-window counters and boolean histories.

The ``µ_i`` predicates of the assessor count the number of *approximate*
matches observed within the most recent window of ``W`` steps for each input
side; the ``π_i`` predicates count how many past assessments found a high
density of approximate matches.  These two small data structures implement
exactly that bookkeeping.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable


class SlidingWindowCounter:
    """Count how many of the last ``window_size`` events were "positive".

    Events are recorded one per join step with :meth:`record`; the counter
    answers "how many positives in the window [t − W, t]" in O(1).

    Examples
    --------
    >>> window = SlidingWindowCounter(3)
    >>> for positive in (True, False, True, True):
    ...     window.record(positive)
    >>> window.positives
    2
    >>> window.fraction
    0.6666666666666666
    """

    def __init__(self, window_size: int) -> None:
        if window_size <= 0:
            raise ValueError(f"window size must be positive, got {window_size}")
        self.window_size = window_size
        self._events: Deque[bool] = deque(maxlen=window_size)
        self._positives = 0

    def record(self, positive: bool) -> None:
        """Record one event (``True`` = positive, e.g. an approximate match)."""
        if len(self._events) == self.window_size and self._events[0]:
            self._positives -= 1
        self._events.append(bool(positive))
        if positive:
            self._positives += 1

    def record_many(self, events: Iterable[bool]) -> None:
        """Record a sequence of events in order."""
        for event in events:
            self.record(event)

    def record_run(self, positive: bool, count: int) -> None:
        """Record ``count`` identical events at once.

        Bit-identical to calling :meth:`record` ``count`` times — the
        batched observers of the runtime (one window update per engine
        batch instead of one per step) rely on that equivalence.  A run at
        least as long as the window simply *becomes* the window; shorter
        runs evict exactly the entries ``count`` appends would have
        evicted.
        """
        if count <= 0:
            return
        positive = bool(positive)
        events = self._events
        window_size = self.window_size
        if count >= window_size:
            events.clear()
            events.extend([positive] * window_size)
            self._positives = window_size if positive else 0
            return
        evict = len(events) + count - window_size
        if evict > 0:
            positives = self._positives
            popleft = events.popleft
            for _ in range(evict):
                if popleft():
                    positives -= 1
            self._positives = positives
        events.extend([positive] * count)
        if positive:
            self._positives += count

    @property
    def positives(self) -> int:
        """Number of positive events currently inside the window (``A_{t,W}``)."""
        return self._positives

    @property
    def observed(self) -> int:
        """Number of events currently inside the window (≤ ``window_size``)."""
        return len(self._events)

    @property
    def fraction(self) -> float:
        """``A_{t,W} / W`` — the ratio the µ predicate thresholds.

        The denominator is the nominal window size ``W`` (as in the paper),
        not the number of events seen so far, so early in the run the ratio
        is conservative (small).
        """
        return self._positives / self.window_size

    def reset(self) -> None:
        """Forget all recorded events."""
        self._events.clear()
        self._positives = 0

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return (
            f"SlidingWindowCounter(window={self.window_size}, "
            f"positives={self._positives}/{len(self._events)})"
        )


class BooleanHistory:
    """Count how many times a condition has held over an entire run.

    Used for the ``π_i`` predicates: ``π_i(t)`` is true iff the number of
    past assessments at which input ``i`` looked perturbed is at most
    ``θ_pastpert``.  Only the count (and total number of records) is kept.
    """

    def __init__(self) -> None:
        self._true_count = 0
        self._total = 0

    def record(self, value: bool) -> None:
        """Record one evaluation of the condition."""
        self._total += 1
        if value:
            self._true_count += 1

    @property
    def true_count(self) -> int:
        """Number of recorded evaluations that were true."""
        return self._true_count

    @property
    def total(self) -> int:
        """Total number of recorded evaluations."""
        return self._total

    @property
    def false_count(self) -> int:
        """Number of recorded evaluations that were false."""
        return self._total - self._true_count

    def reset(self) -> None:
        """Forget all recorded evaluations."""
        self._true_count = 0
        self._total = 0

    def __repr__(self) -> str:
        return f"BooleanHistory({self._true_count}/{self._total} true)"
