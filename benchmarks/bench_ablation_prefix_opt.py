"""Ablation — the reverse-frequency prefix optimisation of the SSHJoin probe.

Sec. 2.2 describes an optimisation of the candidate-set construction: only
the ``g − k + 1`` *least frequent* q-grams of the probe may add new
candidates to ``T(t)``; the frequent grams merely increment counters of
candidates already present.  This ablation runs the approximate join with
and without the optimisation and compares the candidate-set sizes and probe
work (the result set must be identical).
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.datagen.testcases import STANDARD_TEST_CASES, generate_test_case
from repro.engine.streams import TableStream
from repro.joins.base import JoinAttribute, JoinMode
from repro.joins.engine import SymmetricJoinEngine

_PARENT, _CHILD = 900, 600


def _run(dataset, use_prefix_filter: bool):
    engine = SymmetricJoinEngine(
        TableStream(dataset.parent),
        TableStream(dataset.child),
        JoinAttribute("location", "location"),
        similarity_threshold=0.85,
        left_mode=JoinMode.APPROXIMATE,
        right_mode=JoinMode.APPROXIMATE,
        use_prefix_filter=use_prefix_filter,
    )
    events = engine.run_to_completion()
    return engine, sorted(event.pair_key() for event in events)


def test_ablation_prefix_filter(benchmark):
    """Candidate-set work with and without the prefix optimisation."""
    dataset = generate_test_case(
        STANDARD_TEST_CASES["uniform_both"], parent_size=_PARENT, child_size=_CHILD
    )

    def run_both():
        return _run(dataset, True), _run(dataset, False)

    (optimised_engine, optimised_pairs), (naive_engine, naive_pairs) = (
        benchmark.pedantic(run_both, rounds=1, iterations=1)
    )

    optimised = optimised_engine.counters()
    naive = naive_engine.counters()
    rows = [
        {
            "variant": "with prefix optimisation",
            "candidate_set_size": optimised.candidate_set_size,
            "candidate_scan_work": optimised.candidate_scan_work,
            "matches": optimised_engine.matches_emitted,
        },
        {
            "variant": "without prefix optimisation",
            "candidate_set_size": naive.candidate_set_size,
            "candidate_scan_work": naive.candidate_scan_work,
            "matches": naive_engine.matches_emitted,
        },
    ]
    print()
    print(format_table(rows, title="== ablation: SSHJoin prefix optimisation =="))

    # Same result either way…
    assert optimised_pairs == naive_pairs
    # …but the optimisation keeps the candidate sets strictly smaller.
    assert optimised.candidate_set_size < naive.candidate_set_size
