"""Sec. 2.3 cost analysis — SSHJoin vs SHJoin per-step cost ratio (experiment E2).

Sweeps the join-attribute length and measures the run-time ratio between the
all-approximate and the all-exact operator.  The paper's analysis bounds the
per-step ratio by ``O((|jA| + q − 1)^2)``; the measured ratio should grow
with the value length and stay below that bound.
"""

from __future__ import annotations

from repro.bench.cost_analysis import cost_ratio_sweep
from repro.bench.reporting import format_table


def test_cost_ratio_grows_with_value_length(benchmark):
    """Measure the approximate/exact cost ratio as the value length grows."""
    points = benchmark.pedantic(
        cost_ratio_sweep,
        kwargs={"value_lengths": (12, 20, 28, 36), "table_size": 250},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(
        [point.as_dict() for point in points],
        title="== Sec. 2.3: SSHJoin / SHJoin cost ratio vs value length ==",
    ))

    ratios = [point.measured_ratio for point in points]
    # The approximate operator is consistently more expensive...
    assert all(ratio > 1.0 for ratio in ratios)
    # ...the ratio grows with the join-attribute length (longest vs shortest)...
    assert ratios[-1] > ratios[0]
    # ...and stays below the paper's quadratic upper bound.
    assert all(
        point.measured_ratio < point.analytic_ratio for point in points
    )
