#!/usr/bin/env python
"""CI smoke for the linkage server (``repro serve``), end to end.

Boots the real server as a subprocess on an ephemeral port with a
disk-backed job store, then drives the whole service surface over plain
HTTP and asserts the contracts that must never rot:

1. **Stream parity** — a sharded adaptive job submitted over ``POST
   /jobs`` and streamed from ``GET /jobs/{id}/matches`` must be
   *byte-identical* to what ``repro link --stream`` prints for the same
   CSVs and knobs (same matches, same order, same JSON formatting).
2. **Cancellation** — a second job is cancelled mid-run (the server runs
   with a small per-batch delay so "mid-run" is reliable); ``DELETE``
   answers 202 and the job settles in ``cancelled``.
3. **Clean shutdown** — on SIGTERM the server exits 0 and reports
   ``live shared-memory blocks: 0`` (no leaked segments).
4. **Restart survival** — a second server over the same store lists both
   jobs, keeps the deliberate cancel terminal, and re-streams the
   finished job's matches from persisted outcomes, again byte-identical.
5. **Resume after an interrupt** — a job SIGTERMed *mid-run* is resumed
   automatically by the restarted server (only its missing shards
   re-run) and its completed stream is byte-identical to the reference.

Zero third-party deps; everything runs on the bare interpreter.

Usage::

    PYTHONPATH=src timeout 120 python benchmarks/server_smoke.py --smoke
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path
from typing import Dict, List, Optional

from repro.datagen.testcases import STANDARD_TEST_CASES, generate_test_case

PARENT_SIZE = 80
CHILD_SIZE = 140
SHARDS = 3
THRESHOLDS = {"delta_adapt": 25, "window_size": 25}


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        raise SystemExit(1)


def _write_csvs(workdir: Path) -> Dict[str, Path]:
    dataset = generate_test_case(
        STANDARD_TEST_CASES["uniform_child"],
        parent_size=PARENT_SIZE,
        child_size=CHILD_SIZE,
    )
    left = workdir / "municipalities.csv"
    right = workdir / "accidents.csv"
    dataset.parent.to_csv(left)
    dataset.child.to_csv(right)
    return {"left": left, "right": right}


def _cli_stream_lines(csvs: Dict[str, Path], workdir: Path) -> List[str]:
    """The reference bytes: what ``repro link --stream`` prints."""
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "link",
            str(csvs["left"]),
            str(csvs["right"]),
            "--attribute",
            "location",
            "--shards",
            str(SHARDS),
            "--delta-adapt",
            str(THRESHOLDS["delta_adapt"]),
            "--window-size",
            str(THRESHOLDS["window_size"]),
            "--stream",
            "--output",
            str(workdir / "pairs.csv"),
        ],
        capture_output=True,
        text=True,
    )
    check(
        completed.returncode == 0,
        f"repro link --stream failed: {completed.stderr}",
    )
    return completed.stdout.splitlines()


def _payload(csvs: Dict[str, Path], priority: int = 1) -> Dict[str, object]:
    return {
        "left_csv": str(csvs["left"]),
        "right_csv": str(csvs["right"]),
        "attribute": "location",
        "shards": SHARDS,
        "thresholds": dict(THRESHOLDS),
        "priority": priority,
    }


def _request(url: str, method: str = "GET", body: Optional[dict] = None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def _read_stream(url: str) -> List[str]:
    with urllib.request.urlopen(url, timeout=120) as response:
        check(response.status == 200, f"GET {url} -> {response.status}")
        return response.read().decode("utf-8").splitlines()


def _wait_state(base: str, job_id: str, states, timeout: float = 60.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, body = _request(f"{base}/jobs/{job_id}")
        if body["state"] in states:
            return body
        time.sleep(0.05)
    raise SystemExit(f"FAIL: {job_id} never reached {states}")


class _Server:
    """A ``repro serve`` subprocess with a parsed base URL."""

    def __init__(
        self,
        store: Path,
        shard_delay: float = 0.0,
        shard_batch: Optional[int] = None,
    ) -> None:
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--workers",
            "2",
            "--store",
            str(store),
        ]
        if shard_delay:
            command += ["--shard-delay", str(shard_delay)]
        if shard_batch is not None:
            command += ["--shard-batch", str(shard_batch)]
        self.process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        line = self.process.stdout.readline().strip()
        check(
            line.startswith("serving on http://"),
            f"unexpected startup line: {line!r}",
        )
        self.url = line.split("serving on ", 1)[1]

    def terminate(self) -> str:
        """SIGTERM, assert a clean exit, return the remaining stdout."""
        self.process.send_signal(signal.SIGTERM)
        stdout, stderr = self.process.communicate(timeout=60)
        check(
            self.process.returncode == 0,
            f"server exited {self.process.returncode}: {stderr}",
        )
        return stdout


def run_smoke(workdir: Path) -> Dict[str, object]:
    csvs = _write_csvs(workdir)
    reference = _cli_stream_lines(csvs, workdir)
    check(len(reference) > 0, "the reference CLI stream is empty")
    store = workdir / "jobs.jsonl"

    # -- leg 1: submit, stream, cancel, SIGTERM ------------------------
    server = _Server(store, shard_delay=0.01)
    base = server.url
    status, body = _request(f"{base}/healthz")
    check(status == 200 and body == {"status": "ok"}, "healthz")

    status, body = _request(f"{base}/jobs", method="POST", body=_payload(csvs))
    check(status == 201, f"POST /jobs -> {status}")
    first_job = body["id"]
    streamed = _read_stream(f"{base}/jobs/{first_job}/matches")
    check(
        streamed == reference,
        f"HTTP stream differs from `repro link --stream` "
        f"({len(streamed)} vs {len(reference)} lines)",
    )
    finished = _wait_state(base, first_job, {"finished"})
    check(
        finished["result_size"] == len(reference),
        "result_size != streamed line count",
    )

    status, body = _request(
        f"{base}/jobs", method="POST", body=_payload(csvs, priority=2)
    )
    second_job = body["id"]
    _wait_state(base, second_job, {"running"})
    status, body = _request(f"{base}/jobs/{second_job}", method="DELETE")
    check(status == 202, f"DELETE -> {status}")
    cancelled = _wait_state(base, second_job, {"cancelled"})
    check(cancelled["state"] == "cancelled", "cancel did not settle")

    stdout = server.terminate()
    check(
        "live shared-memory blocks: 0" in stdout,
        f"shutdown did not report zero live blocks: {stdout!r}",
    )

    # -- leg 2: restart over the same store ----------------------------
    server = _Server(store)
    base = server.url
    _, body = _request(f"{base}/jobs")
    states = {job["id"]: job["state"] for job in body["jobs"]}
    check(
        states.get(first_job) == "finished",
        f"restart lost the finished job: {states}",
    )
    check(
        states.get(second_job) == "cancelled",
        f"restart did not keep the cancel terminal: {states}",
    )
    replayed = _read_stream(f"{base}/jobs/{first_job}/matches")
    check(
        replayed == reference,
        "replay-from-disk stream differs from the reference",
    )
    stdout = server.terminate()
    check(
        "live shared-memory blocks: 0" in stdout,
        f"restarted server leaked blocks: {stdout!r}",
    )

    # -- leg 3: SIGTERM mid-run, restart, auto-resume ------------------
    # Small batches + a per-batch delay stretch each shard to ~1s so the
    # SIGTERM reliably lands with at least one shard persisted and at
    # least one missing.
    server = _Server(store, shard_delay=0.1, shard_batch=8)
    base = server.url
    _, body = _request(f"{base}/jobs", method="POST", body=_payload(csvs))
    third_job = body["id"]
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        _, body = _request(f"{base}/jobs/{third_job}")
        progress = body.get("progress") or {}
        if body["state"] == "running" and progress.get("shards_done", 0) >= 1:
            break
        time.sleep(0.02)
    check(
        body["state"] == "running",
        f"never caught {third_job} mid-run: {body}",
    )
    server.terminate()  # interrupt: >=1 shard persisted, job unfinished

    server = _Server(store)
    base = server.url
    resumed = _wait_state(base, third_job, {"finished"})
    check(
        resumed["statistics"].get("resumed") is True,
        f"restart did not resume {third_job}: {resumed}",
    )
    completed = _read_stream(f"{base}/jobs/{third_job}/matches")
    check(
        completed == reference,
        "resumed stream is not bit-identical to the reference",
    )
    stdout = server.terminate()
    check(
        "live shared-memory blocks: 0" in stdout,
        f"resuming server leaked blocks: {stdout!r}",
    )

    return {
        "streamed_lines": len(reference),
        "jobs": states,
        "restart_replay_identical": True,
        "resume_after_sigterm_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the CI smoke (the only mode; present for CLI symmetry)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="optionally write the smoke summary as JSON",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="server-smoke-") as tmp:
        summary = run_smoke(Path(tmp))
    print(json.dumps(summary, indent=2))
    if args.output is not None:
        args.output.write_text(
            json.dumps(summary, indent=2) + "\n", encoding="utf-8"
        )
    print("server smoke: all contracts held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
