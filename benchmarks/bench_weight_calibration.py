"""Sec. 4.3 — calibration of the per-state step and transition weights (experiment E5).

Measures, on this machine and implementation, the average wall-clock time of
one step in each of the four processor states and the time of one switch
into each state, normalised by the ``lex/rex`` step time — the same
procedure the paper uses to obtain

    w = [1, 22.14, 51.8, 70.2]        (step weights)
    v = [122.48, 37.96, 84.99, 173.42] (transition weights)

The absolute Python numbers differ from the paper's C/Java prototype, but
the *ordering* must match: exact steps are by far the cheapest, fully
approximate steps the most expensive, hybrid states in between, and a
transition costs no more than a modest number of approximate steps.
"""

from __future__ import annotations

from repro.bench.calibration import calibrate_weights
from repro.bench.reporting import format_table
from repro.core.state_machine import JoinState


def test_weight_calibration(benchmark):
    """Measure machine-specific weights and compare their shape with the paper's."""
    calibration = benchmark.pedantic(
        calibrate_weights,
        kwargs={"parent_size": 800, "child_size": 500, "max_steps": 500},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(
        calibration.as_rows(),
        title="== Sec. 4.3: measured vs paper cost-model weights ==",
    ))
    print(f"\nunit (lex/rex) step time: {calibration.unit_step_seconds * 1e6:.1f} µs")

    weights = calibration.state_weights
    # lex/rex is the cheapest state by definition (weight 1 after normalisation).
    assert abs(weights[JoinState.LEX_REX] - 1.0) < 1e-9
    # Every state involving an approximate side costs more than the all-exact state.
    assert weights[JoinState.LAP_REX] > 1.0
    assert weights[JoinState.LEX_RAP] > 1.0
    # The fully approximate state is the most expensive, as in the paper
    # (allow generous measurement noise: the hybrid states probe the q-gram
    # index for only one of the two sides, so they should not exceed lap/rap
    # by more than timing jitter).
    assert weights[JoinState.LAP_RAP] >= max(
        weights[JoinState.LAP_REX], weights[JoinState.LEX_RAP]
    ) * 0.7
    # Transitions are finite, non-negative overheads.
    assert all(value >= 0.0 for value in calibration.transition_weights.values())
