"""Ablation — four-state machine vs a two-state (exact ↔ approximate) machine.

The paper motivates the hybrid states (``lap/rex``, ``lex/rap``) by arguing
that knowing *which* input is perturbed allows a cheaper reaction than
switching both sides to the approximate operator.  This ablation disables
the source-identification transitions (φ_2, φ_3), restricting the responder
to the two symmetric states, and compares gain/cost/efficiency with the full
machine on a child-only-variants test case (the case where the hybrid
configuration should pay off).
"""

from __future__ import annotations

from repro.bench.harness import run_experiment
from repro.bench.reporting import format_table
from repro.datagen.testcases import STANDARD_TEST_CASES, generate_test_case

_PARENT, _CHILD = 800, 1600
_CASE = "few_high_child"


def test_ablation_two_state_machine(benchmark):
    """Compare the full four-state machine against the two-state restriction."""
    spec = STANDARD_TEST_CASES[_CASE]
    dataset = generate_test_case(spec, parent_size=_PARENT, child_size=_CHILD)

    def run_both():
        full = run_experiment(spec, dataset=dataset, allow_source_identification=True)
        restricted = run_experiment(
            spec, dataset=dataset, allow_source_identification=False
        )
        return full, restricted

    full, restricted = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for label, outcome in (("four-state", full), ("two-state", restricted)):
        row = {"machine": label}
        row.update({
            "gain": outcome.report.gain,
            "cost": outcome.report.cost,
            "efficiency": outcome.report.efficiency,
            "steps_AE": outcome.adaptive.trace.steps_in("AE"),
            "steps_EA": outcome.adaptive.trace.steps_in("EA"),
            "steps_AA": outcome.adaptive.trace.steps_in("AA"),
        })
        rows.append(row)
    print()
    print(format_table(rows, title="== ablation: four-state vs two-state control =="))

    # The restricted machine never uses the hybrid states…
    assert restricted.adaptive.trace.steps_in("AE") == 0
    assert restricted.adaptive.trace.steps_in("EA") == 0
    # …and both variants stay within the cost ceiling with a real gain.
    for outcome in (full, restricted):
        assert outcome.report.never_worse_than_approximate
        assert outcome.report.gain > 0.0
