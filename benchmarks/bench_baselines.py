"""Baseline sanity measurements (experiment E9).

Times the two non-adaptive extremes the paper's metrics are anchored to —
the all-exact SHJoin (result size ``r``, cost floor ``c``) and the
all-approximate SSHJoin (result size ``R``, cost ceiling ``C``) — on one
representative test case, and checks the relationships every other
experiment relies on: the approximate join finds strictly more pairs than
the exact join on perturbed data, and costs substantially more wall-clock
time per step.
"""

from __future__ import annotations

import time

from repro.bench.reporting import format_table
from repro.datagen.testcases import STANDARD_TEST_CASES, generate_test_case
from repro.joins.shjoin import SHJoin
from repro.joins.sshjoin import SSHJoin


def _dataset(bench_scale):
    parent_size, child_size = bench_scale
    return generate_test_case(
        STANDARD_TEST_CASES["interleaved_low_both"],
        parent_size=min(parent_size, 1500),
        child_size=min(child_size, 1000),
    )


def test_baseline_exact_join(benchmark, bench_scale):
    """Time the all-exact SHJoin baseline."""
    dataset = _dataset(bench_scale)
    records = benchmark.pedantic(
        lambda: SHJoin(dataset.parent, dataset.child, "location").run(),
        rounds=1,
        iterations=1,
    )
    clean_children = len(dataset.child) - dataset.child_variant_count
    print(f"\nall-exact result size r = {len(records)} "
          f"(clean child rows: {clean_children})")
    # The exact join finds (at most) the unperturbed pairs.
    assert len(records) <= len(dataset.true_pairs)
    assert len(records) == len(dataset.exactly_matchable_pairs())


def test_baseline_approximate_join(benchmark, bench_scale):
    """Time the all-approximate SSHJoin baseline and compare against exact."""
    dataset = _dataset(bench_scale)

    started = time.perf_counter()
    exact_records = SHJoin(dataset.parent, dataset.child, "location").run()
    exact_seconds = time.perf_counter() - started

    def timed_approximate():
        begin = time.perf_counter()
        records = SSHJoin(
            dataset.parent, dataset.child, "location", similarity_threshold=0.85
        ).run()
        return records, time.perf_counter() - begin

    approx_records, approx_seconds = benchmark.pedantic(
        timed_approximate, rounds=1, iterations=1
    )

    rows = [
        {
            "strategy": "all-exact (SHJoin)",
            "result_size": len(exact_records),
            "wall_clock_s": exact_seconds,
        },
        {
            "strategy": "all-approximate (SSHJoin)",
            "result_size": len(approx_records),
            "wall_clock_s": approx_seconds,
        },
    ]
    print()
    print(format_table(rows, title="== baseline result sizes and wall-clock times =="))

    # The approximate join recovers strictly more pairs on perturbed data…
    assert len(approx_records) > len(exact_records)
    # …covering (nearly) every true pair…
    assert len(approx_records) >= 0.95 * len(dataset.true_pairs)
    # …at a clearly higher cost.
    assert approx_seconds > 2.0 * exact_seconds
