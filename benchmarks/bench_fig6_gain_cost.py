"""Fig. 6 — relative gain, relative cost and efficiency per test case (experiment E6).

Runs the adaptive join plus the two baselines on every one of the eight
standard test cases (four perturbation patterns × variants in child /
both) and prints the g_rel / c_rel / e columns of Fig. 6.

Expected shape (paper Sec. 4.4): gains and costs fall in a fairly narrow
band across patterns, every test case achieves efficiency comparable to or
above 1, the adaptive cost never exceeds the all-approximate cost, and
efficiency tends to be higher when variants appear only in the child table.
"""

from __future__ import annotations

import statistics

from repro.bench.reporting import format_table


def test_fig6_gain_cost_across_test_cases(benchmark, standard_outcomes):
    """Assemble and check the Fig. 6 gain/cost/efficiency table."""
    outcomes = benchmark.pedantic(
        lambda: standard_outcomes, rounds=1, iterations=1
    )
    rows = [outcome.fig6_row() for outcome in outcomes.values()]
    print()
    print(format_table(rows, title="== Fig. 6: gain / cost / efficiency per test case =="))

    reports = [outcome.report for outcome in outcomes.values()]

    # The adaptive join recovers a substantial part of the completeness gap…
    gains = [report.gain for report in reports]
    assert all(gain > 0.2 for gain in gains)
    # …at a cost below the all-approximate ceiling, for every test case.
    assert all(report.never_worse_than_approximate for report in reports)
    assert all(report.cost < 1.0 for report in reports)
    # Result sizes are ordered r <= r_abs <= R.
    for report in reports:
        assert report.exact_result_size <= report.adaptive_result_size
        assert report.adaptive_result_size <= report.approximate_result_size

    # Efficiency: on average clearly better than paying the full approximate
    # price for the recovered completeness.
    mean_efficiency = statistics.mean(report.efficiency for report in reports)
    assert mean_efficiency > 1.0

    # The paper reports the higher efficiencies for the child-only variants.
    child_eff = statistics.mean(
        outcome.report.efficiency
        for name, outcome in outcomes.items()
        if name.endswith("_child")
    )
    both_eff = statistics.mean(
        outcome.report.efficiency
        for name, outcome in outcomes.items()
        if name.endswith("_both")
    )
    print(f"\nmean efficiency: child-only={child_eff:.3f}  both={both_eff:.3f}")
