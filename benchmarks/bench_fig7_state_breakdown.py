"""Fig. 7 — breakdown of steps per state and transition counts (experiment E7).

For the same eight runs as Fig. 6, prints how many steps the adaptive join
spent in each of the four states (EE / AE / EA / AA) and how many state
transitions it performed.

Expected shape (paper Sec. 4.4): a substantial fraction of the steps (the
paper reports nearly 30 %) is still executed in the cheap all-exact state,
the expensive states account for the rest, and the number of transitions is
small compared to the number of steps.
"""

from __future__ import annotations

from repro.bench.reporting import format_table


def test_fig7_state_breakdown(benchmark, standard_outcomes):
    """Assemble and check the Fig. 7 state-occupancy table."""
    outcomes = benchmark.pedantic(lambda: standard_outcomes, rounds=1, iterations=1)
    rows = [outcome.fig7_row() for outcome in outcomes.values()]
    print()
    print(format_table(
        rows, title="== Fig. 7: steps per state and transitions per test case =="
    ))

    for outcome in outcomes.values():
        trace = outcome.adaptive.trace
        # Every step is attributed to exactly one state.
        assert sum(trace.steps_per_state.values()) == trace.total_steps
        # The optimistic start means the run always begins with exact steps.
        assert trace.steps_in("EE") > 0
        # Transitions are rare events relative to steps.
        assert trace.transition_count < trace.total_steps / 50
        # The adaptive strategy reacted to the injected variants.
        assert trace.transition_count >= 1

    # Across the suite a visible share of the work stays exact.
    mean_exact_fraction = sum(
        outcome.adaptive.trace.exact_step_fraction() for outcome in outcomes.values()
    ) / len(outcomes)
    print(f"\nmean fraction of steps spent fully exact: {mean_exact_fraction:.3f}")
    assert mean_exact_fraction > 0.15
