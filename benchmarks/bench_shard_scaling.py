#!/usr/bin/env python
"""Trajectory benchmark for the sharded execution layer.

Runs the same adaptive (MAR) join at several shard counts (default
1/2/4/8) on every execution backend (serial / thread / process / async)
and records, per shard count:

* wall-clock seconds per backend, plus the within-run **speedup ratios**
  ``serial_seconds / thread_seconds`` and ``serial_seconds /
  process_seconds`` (compare ratios across trajectory entries, not
  absolute times — machine noise is ±10–15 %);
* the merged match count and the match *overlap* with the unsharded
  reference run (the recorded ``match_recall_vs_unsharded`` makes any
  loss visible so it can't silently regress);
* partition skew (min/max shard sizes).

On top of the timing sweep, every run records a **per-partitioner recall
probe** (``recall_probe`` in the entry): a schedule-free all-approximate
workload (Jaccard-verified, so the match predicate is symmetric and the
bar below is exact rather than fixture-dependent) is sharded under each
probed partitioner and compared with its unsharded reference, isolating
what the *partitioner* loses from what per-shard adaptive scheduling
loses.  ``hash`` drops the cross-shard variant pairs; ``gram``
(gram-replicated partitioning with merge-time dedup) and ``gram-prefix``
(prefix-signature replication, strictly fewer replicas) must reproduce
the unsharded match set *exactly* — the probe enforces that bar (lost or
extra pairs both fail) and also records each partitioner's replication
factor and raw-vs-deduped match counts, i.e. the work the recall
guarantee costs and what the prefix signature saves.

Every entry additionally records the **shard handoff accounting**
(ISSUE 8): the resolved handoff of the sweep, the per-shard wire payload
a process-backend task pickles to under each representation
(``payload_bytes_per_shard``: full records under ``pickle``, a fixed-size
descriptor under ``shared-memory``), the one-time encode + publish cost
(``handoff_seconds``), and — when the process backend is probed — the
process speedup under both handoffs (``process_speedup_pickle`` /
``process_speedup_shm``), so the representation's effect on the
multi-core path is measured, not asserted.

Sanity bars enforced every run: the serial backend must be
bit-deterministic (two runs, identical pair sets), every backend must
produce the identical merged result at every shard count, the two
handoffs must produce the identical merged result on the process
backend, 1-shard serial must reproduce the unsharded session exactly,
and the gram/gram-prefix probe recall must be exactly 1.0.

Results are appended to ``BENCH_shard_scaling.json`` (one entry per
invocation), the shard-layer counterpart of ``BENCH_probe_fastpath.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py                # full
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --smoke        # CI
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --recall-smoke # CI recall bar
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --zero-copy-smoke

The smoke run does 1 vs 2 shards on the serial backend only and finishes
in seconds; ``--recall-smoke`` runs *only* the recall probe (hash vs
gram vs gram-prefix, 2 shards) and fails the process if replicated
recall ≠ 1.0 — the CI recall-preservation gate.  ``--zero-copy-smoke``
is the CI gate for the shared-memory handoff: a process-backend run at
2 shards under each handoff must merge bit-identically, and the
shared-memory segment registry must drain to zero on both the success
and the (fault-injected) failure path; any drift or leak exits 1.
See PERFORMANCE.md for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List

from repro.core.state_machine import JoinState
from repro.datagen.testcases import STANDARD_TEST_CASES, generate_test_case
from repro.runtime.config import RunConfig
from repro.runtime.errors import ShardExecutionError
from repro.runtime.faults import FaultPlan
from repro.runtime.handoff import (
    HANDOFF_MODES,
    live_block_count,
    live_block_names,
    shared_memory_available,
)
from repro.runtime.parallel import estimate_shard_payload_bytes, run_sharded
from repro.runtime.session import JoinSession
from repro.runtime.sharding import ShardPlan

DEFAULT_TOTAL_TUPLES = 12_000
SMOKE_TOTAL_TUPLES = 2_000
#: The recall probe is all-approximate (the most expensive operator), so
#: it runs on its own, smaller workload.
RECALL_PROBE_TUPLES = 3_000
SMOKE_RECALL_PROBE_TUPLES = 1_000
DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)
SMOKE_SHARD_COUNTS = (1, 2)
#: ``async`` is the cooperative single-thread backend: its *_speedup
#: entry reads as pure coordination overhead vs serial (expect ≈1), the
#: same way thread reads under the GIL.
DEFAULT_BACKENDS = ("serial", "thread", "process", "async")
#: The CI smoke also covers the async backend (cheap: one thread, no
#: pools), pinning serial/async agreement at 1 and 2 shards.
SMOKE_BACKENDS = ("serial", "async")
#: Partitioners compared by the recall probe: the exact-semantics default
#: against the two gram-replicated full-recall partitioners.
RECALL_PARTITIONERS = ("hash", "gram", "gram-prefix")
#: Partitioners the probe holds to the exact-reproduction bar.
REPLICATED_PARTITIONERS = ("gram", "gram-prefix")
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_shard_scaling.json"


def _run(
    dataset, config, shards: int, backend: str, partitioner: str = "hash",
    handoff: str = "auto",
):
    started = time.perf_counter()
    result = run_sharded(
        dataset.parent, dataset.child, "location", config,
        shards=shards, backend=backend, partitioner=partitioner,
        handoff=handoff,
    )
    return time.perf_counter() - started, result


def _recall(found_pairs, reference_pairs) -> float:
    """Fraction of the reference match set the sharded run recovered.

    An empty reference means there was nothing to lose: recall is 1.0 by
    definition (and dividing by ``len(reference_pairs)`` would crash the
    bench on match-free workloads).
    """
    if not reference_pairs:
        return 1.0
    return round(len(found_pairs & reference_pairs) / len(reference_pairs), 4)


def all_approximate_config() -> RunConfig:
    """The schedule-free recall-probe configuration (fixed ``lap/rap``).

    ``verify_jaccard=True`` makes the match predicate a symmetric
    function of the pair, which is what turns the gram partitioner's
    "every matchable pair is co-located" into exact set equality with
    the unsharded run — the default probe-directional counter test can
    flip borderline pairs either way under *any* re-interleaving of
    arrivals (sharded or not), which would make the 1.0 gate flaky on
    adversarial workloads.
    """
    return RunConfig(
        policy="fixed", initial_state=JoinState.LAP_RAP, verify_jaccard=True
    )


def recall_probe(dataset, shard_counts, partitioners=RECALL_PARTITIONERS):
    """Per-partitioner recall on an all-approximate workload (serial).

    The MAR timing sweep entangles partitioning losses with per-shard
    schedule divergence (every shard runs its own control loop); this
    probe removes the schedule — a fixed all-approximate run loses
    exactly the pairs its partitioner separates.  Returns one row per
    shard count mapping partitioner → recall / match counts (raw and
    deduped) plus each replicated partitioner's replication factor —
    the side-by-side gram vs gram-prefix factors quantify what the
    prefix signature saves — and asserts the replication bar: gram and
    gram-prefix recall must be exactly 1.0 at every probed shard count.
    """
    config = all_approximate_config()
    reference = JoinSession(dataset.parent, dataset.child, "location", config).run()
    reference_pairs = frozenset(reference.matched_pairs())
    rows = []
    for shards in shard_counts:
        row = {"shards": shards}
        for name in partitioners:
            result = run_sharded(
                dataset.parent, dataset.child, "location", config,
                shards=shards, partitioner=name,
            )
            found_pairs = result.pair_set()
            stats = {
                "match_recall_vs_unsharded": _recall(
                    found_pairs, reference_pairs
                ),
                "matches": result.result_size,
                "raw_matches": result.raw_result_size,
            }
            if (
                result.raw_result_size != result.result_size
                or name in REPLICATED_PARTITIONERS
            ):
                left_factor, right_factor = result.replication_factors()
                stats["replication_factor"] = round(
                    (left_factor + right_factor) / 2, 2
                )
            row[name] = stats
            # The gate compares pair *sets*, not the rounded stat: one
            # lost pair must fail even when it rounds to 1.0, and one
            # spurious extra pair is just as much a divergence.
            if (
                name in REPLICATED_PARTITIONERS
                and found_pairs != reference_pairs
            ):
                lost = len(reference_pairs - found_pairs)
                extra = len(found_pairs - reference_pairs)
                raise AssertionError(
                    f"{name} partitioner diverged from the unsharded match "
                    f"set at {shards} shards: {lost} lost, {extra} extra"
                )
        rows.append(row)
        print(
            f"[recall probe, {shards} shard(s)] " + " ".join(
                f"{name}={row[name]['match_recall_vs_unsharded']}"
                for name in partitioners
            ) + "".join(
                f" {name}_factor={row[name]['replication_factor']}"
                for name in partitioners
                if "replication_factor" in row[name]
            )
        )
    return rows


def bench_shard_counts(
    dataset, config, shard_counts, backends, partitioner: str = "hash",
    handoff: str = "auto",
) -> List[Dict]:
    # Unsharded reference: the completeness and determinism oracle.
    started = time.perf_counter()
    reference = JoinSession(dataset.parent, dataset.child, "location", config).run()
    unsharded_seconds = time.perf_counter() - started
    reference_pairs = frozenset(reference.matched_pairs())

    entries: List[Dict] = []
    for shards in shard_counts:
        # Two plans for the handoff accounting: what the process backend
        # would ship per shard task under each representation.  The
        # pickle build also baselines the shared-memory build so the
        # recorded handoff_seconds is the *extra* one-time cost of the
        # zero-copy path: columnar encode (the build delta) + segment
        # publish (allocate + copy), paid once per side per run.
        build_started = time.perf_counter()
        pickle_plan = ShardPlan.build(
            dataset.parent, dataset.child, "location", shards,
            partitioner, config=config, handoff="pickle",
        )
        pickle_build_seconds = time.perf_counter() - build_started
        build_started = time.perf_counter()
        plan = ShardPlan.build(
            dataset.parent, dataset.child, "location", shards,
            partitioner, config=config, handoff=handoff,
        )
        build_seconds = time.perf_counter() - build_started
        sizes = plan.shard_sizes()
        payload_bytes = {
            "pickle": max(estimate_shard_payload_bytes(pickle_plan, config)),
        }
        entry: Dict[str, object] = {
            "shards": shards,
            "unsharded_seconds": round(unsharded_seconds, 4),
            "shard_sizes_min": min(left + right for left, right in sizes),
            "shard_sizes_max": max(left + right for left, right in sizes),
            "handoff": plan.handoff,
            "payload_bytes_per_shard": payload_bytes,
        }
        if plan.handoff == "shared-memory":
            payload_bytes["shared-memory"] = max(
                estimate_shard_payload_bytes(plan, config)
            )
            publish_started = time.perf_counter()
            published = plan.publish_blocks()
            publish_seconds = time.perf_counter() - publish_started
            if published is not None:
                published.release()
            entry["handoff_seconds"] = round(
                max(0.0, build_seconds - pickle_build_seconds)
                + publish_seconds,
                4,
            )
        pair_sets = {}
        for backend in backends:
            seconds, result = _run(
                dataset, config, shards, backend, partitioner, handoff
            )
            entry[f"{backend}_seconds"] = round(seconds, 4)
            pair_sets[backend] = result.pair_set()
            if backend == "serial":
                entry["matches"] = result.result_size
                if result.raw_result_size != result.result_size:
                    entry["raw_matches"] = result.raw_result_size
                entry["match_recall_vs_unsharded"] = _recall(
                    pair_sets["serial"], reference_pairs
                )
                # Bit-determinism bar: a repeat serial run must agree.
                _, repeat = _run(
                    dataset, config, shards, "serial", partitioner, handoff
                )
                if repeat.pair_set() != pair_sets["serial"]:
                    raise AssertionError(
                        f"serial backend is not deterministic at {shards} shards"
                    )
        if len(set(pair_sets.values())) != 1:
            raise AssertionError(
                f"backends disagree at {shards} shards: "
                f"{ {name: len(pairs) for name, pairs in pair_sets.items()} }"
            )
        if shards == 1 and pair_sets["serial"] != reference_pairs:
            raise AssertionError("1-shard run diverged from the unsharded session")
        serial_seconds = entry["serial_seconds"]
        for backend in backends:
            if backend != "serial" and entry[f"{backend}_seconds"]:
                entry[f"{backend}_speedup"] = round(
                    serial_seconds / entry[f"{backend}_seconds"], 2
                )
        # Handoff comparison on the multi-core path: the same plan shape
        # through the process backend under each representation must
        # merge identically, and both speedups are recorded so the
        # payload reduction's effect is measured rather than asserted.
        if "process" in backends and plan.handoff == "shared-memory":
            for suffix, mode in (("pickle", "pickle"), ("shm", "shared-memory")):
                seconds, result = _run(
                    dataset, config, shards, "process", partitioner, mode
                )
                if result.pair_set() != pair_sets["serial"]:
                    raise AssertionError(
                        f"process backend under the {mode} handoff diverged "
                        f"from serial at {shards} shards"
                    )
                entry[f"process_seconds_{suffix}"] = round(seconds, 4)
                if seconds:
                    entry[f"process_speedup_{suffix}"] = round(
                        serial_seconds / seconds, 2
                    )
            if live_block_count() != 0:
                raise AssertionError(
                    f"{live_block_count()} shared-memory segment(s) leaked "
                    f"by the process sweep at {shards} shards"
                )
        entries.append(entry)
        print(
            f"[{shards} shard(s)] " + " ".join(
                f"{backend}={entry[f'{backend}_seconds']}s" for backend in backends
            ) + "".join(
                f" {backend}_speedup={entry.get(f'{backend}_speedup')}"
                for backend in backends
                if backend != "serial"
            ) + f" matches={entry['matches']}"
            f" recall_vs_unsharded={entry['match_recall_vs_unsharded']}"
        )
        payload_note = " ".join(
            f"{name}={size}B"
            for name, size in entry["payload_bytes_per_shard"].items()
        )
        print(
            f"    handoff={entry['handoff']} payload/shard: {payload_note}"
            + (
                f" handoff_seconds={entry['handoff_seconds']}"
                if "handoff_seconds" in entry
                else ""
            )
        )
    return entries


def _probe_dataset(total_tuples: int):
    parent_size = total_tuples // 2
    return generate_test_case(
        STANDARD_TEST_CASES["uniform_child"],
        parent_size=parent_size,
        child_size=total_tuples - parent_size,
    )


def run_benchmark(
    total_tuples: int,
    shard_counts,
    backends,
    partitioner: str = "hash",
    recall_probe_tuples: int = RECALL_PROBE_TUPLES,
    handoff: str = "auto",
) -> Dict[str, object]:
    dataset = _probe_dataset(total_tuples)
    config = RunConfig()
    entries = bench_shard_counts(
        dataset, config, shard_counts, backends, partitioner, handoff
    )
    probe_shards = tuple(count for count in shard_counts if count > 1) or (2,)
    return {
        "run_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "total_tuples": total_tuples,
        "policy": config.policy,
        "partitioner": partitioner,
        "handoff": handoff,
        "backends": list(backends),
        # Speedup ratios are only meaningful relative to the cores the
        # run actually had: on a single-core machine process_speedup < 1
        # is the expected pure-overhead reading.
        "cpu_count": os.cpu_count(),
        "entries": entries,
        # Partitioner recall, isolated from adaptive scheduling: an
        # all-approximate workload per shard count, hash vs gram.
        "recall_probe": {
            "total_tuples": recall_probe_tuples,
            "policy": "fixed (all-approximate, lap/rap)",
            "entries": recall_probe(
                _probe_dataset(recall_probe_tuples), probe_shards
            ),
        },
    }


def zero_copy_smoke(total_tuples: int) -> int:
    """CI gate for the shared-memory handoff (process backend, 2 shards).

    Three bars, all hard failures (exit 1):

    1. a shared-memory run must actually resolve to shared memory and
       merge **bit-identically** (pair order, counters) to the pickle
       run — representation drift is a correctness bug, not noise;
    2. the segment registry must drain to zero after the successful run;
    3. it must *also* drain to zero after a fault-injected shard failure
       (the teardown-on-failure path, where a leak would silently
       accumulate across retrying CI jobs).
    """
    if not shared_memory_available():
        print("zero-copy smoke: multiprocessing.shared_memory unavailable")
        return 1
    dataset = _probe_dataset(total_tuples)
    config = RunConfig()
    failures: List[str] = []
    _, pickled = _run(dataset, config, 2, "process", handoff="pickle")
    _, shared = _run(dataset, config, 2, "process", handoff="shared-memory")
    if shared.handoff != "shared-memory":
        failures.append(
            f"requested shared-memory handoff resolved to {shared.handoff!r}"
        )
    if shared.matched_pairs() != pickled.matched_pairs():
        failures.append(
            f"handoffs diverged: {len(shared.pair_set() ^ pickled.pair_set())} "
            f"pair(s) differ (or emission order changed)"
        )
    if shared.counters.as_dict() != pickled.counters.as_dict():
        failures.append("operation counters differ between handoffs")
    if live_block_count() != 0:
        failures.append(
            f"{live_block_count()} segment(s) leaked after the successful "
            f"run: {', '.join(live_block_names())}"
        )
    try:
        run_sharded(
            dataset.parent, dataset.child, "location", config,
            shards=2, backend="process", handoff="shared-memory",
            faults=FaultPlan.crash(0, attempts=None),
        )
    except ShardExecutionError:
        pass
    else:
        failures.append("injected shard crash did not fail the run")
    if live_block_count() != 0:
        failures.append(
            f"{live_block_count()} segment(s) leaked on the failure path"
        )
    if failures:
        for failure in failures:
            print(f"zero-copy smoke FAILED: {failure}")
        return 1
    print(
        f"zero-copy smoke passed: process backend, 2 shards, "
        f"{shared.result_size} matches bit-identical across handoffs, "
        f"0 live segments after success and failure"
    )
    return 0


def append_trajectory(result: Dict[str, object], output: Path) -> None:
    trajectory = []
    if output.exists():
        try:
            trajectory = json.loads(output.read_text())
        except (ValueError, OSError):
            trajectory = []
        if not isinstance(trajectory, list):
            trajectory = [trajectory]
    trajectory.append(result)
    output.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"trajectory appended to {output} ({len(trajectory)} runs recorded)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small, fast configuration for CI (1 vs 2 shards, serial backend)",
    )
    parser.add_argument(
        "--recall-smoke",
        action="store_true",
        help="CI recall-preservation gate: run only the all-approximate "
             "recall probe (hash vs gram vs gram-prefix, 2 shards) and "
             "fail unless both replicated partitioners' recall is exactly "
             "1.0; appends nothing",
    )
    parser.add_argument(
        "--zero-copy-smoke",
        action="store_true",
        help="CI shared-memory handoff gate: process backend at 2 shards "
             "must merge bit-identically under both handoffs and leak no "
             "segments on the success or failure path; appends nothing",
    )
    parser.add_argument(
        "--partitioner",
        default="hash",
        help="partitioner for the timing sweep (default hash; the recall "
             "probe always compares hash vs gram vs gram-prefix)",
    )
    parser.add_argument(
        "--handoff",
        choices=HANDOFF_MODES,
        default="auto",
        help="shard-input representation for the timing sweep (default "
             "auto = shared-memory where available); entries always "
             "record both representations' per-shard payload bytes",
    )
    parser.add_argument(
        "--total-tuples",
        type=int,
        default=None,
        help=f"total tuple count to benchmark (default {DEFAULT_TOTAL_TUPLES})",
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=None,
        help=f"shard counts to sweep (default {list(DEFAULT_SHARD_COUNTS)})",
    )
    parser.add_argument(
        "--backends",
        nargs="+",
        default=None,
        help=f"backends to compare (default {list(DEFAULT_BACKENDS)})",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help="trajectory JSON file to append to",
    )
    args = parser.parse_args(argv)
    if args.shards and any(count < 1 for count in args.shards):
        parser.error("--shards values must be at least 1")
    if args.recall_smoke:
        # The probe raises AssertionError when replicated recall is not 1.0.
        rows = recall_probe(
            _probe_dataset(args.total_tuples or SMOKE_RECALL_PROBE_TUPLES),
            tuple(args.shards) if args.shards else (2,),
        )
        print(f"recall-preservation gate passed ({len(rows)} shard count(s))")
        return 0
    if args.zero_copy_smoke:
        return zero_copy_smoke(args.total_tuples or SMOKE_TOTAL_TUPLES)
    total = args.total_tuples or (
        SMOKE_TOTAL_TUPLES if args.smoke else DEFAULT_TOTAL_TUPLES
    )
    shard_counts = tuple(args.shards) if args.shards else (
        SMOKE_SHARD_COUNTS if args.smoke else DEFAULT_SHARD_COUNTS
    )
    backends = tuple(args.backends) if args.backends else (
        SMOKE_BACKENDS if args.smoke else DEFAULT_BACKENDS
    )
    if "serial" not in backends:
        parser.error("the serial backend is the reference and must be included")
    recall_tuples = (
        SMOKE_RECALL_PROBE_TUPLES if args.smoke else RECALL_PROBE_TUPLES
    )
    result = run_benchmark(
        total, shard_counts, backends, args.partitioner, recall_tuples,
        args.handoff,
    )
    append_trajectory(result, args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
