#!/usr/bin/env python
"""Trajectory benchmark for the sharded execution layer.

Runs the same adaptive (MAR) join at several shard counts (default
1/2/4/8) on every execution backend (serial / thread / process / async)
and records, per shard count:

* wall-clock seconds per backend, plus the within-run **speedup ratios**
  ``serial_seconds / thread_seconds`` and ``serial_seconds /
  process_seconds`` (compare ratios across trajectory entries, not
  absolute times — machine noise is ±10–15 %);
* the merged match count and the match *overlap* with the unsharded
  reference run (the recorded ``match_recall_vs_unsharded`` makes any
  loss visible so it can't silently regress);
* partition skew (min/max shard sizes).

On top of the timing sweep, every run records a **per-partitioner recall
probe** (``recall_probe`` in the entry): a schedule-free all-approximate
workload (Jaccard-verified, so the match predicate is symmetric and the
bar below is exact rather than fixture-dependent) is sharded under each
probed partitioner and compared with its unsharded reference, isolating
what the *partitioner* loses from what per-shard adaptive scheduling
loses.  ``hash`` drops the cross-shard variant pairs; ``gram``
(gram-replicated partitioning with merge-time dedup) must reproduce the
unsharded match set *exactly* — the probe enforces that bar (lost or
extra pairs both fail) and also records the replication factor and
raw-vs-deduped match counts, i.e. the work the recall guarantee costs.

Sanity bars enforced every run: the serial backend must be
bit-deterministic (two runs, identical pair sets), every backend must
produce the identical merged result at every shard count, 1-shard
serial must reproduce the unsharded session exactly, and the gram
partitioner's probe recall must be exactly 1.0.

Results are appended to ``BENCH_shard_scaling.json`` (one entry per
invocation), the shard-layer counterpart of ``BENCH_probe_fastpath.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py                # full
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --smoke        # CI
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --recall-smoke # CI recall bar

The smoke run does 1 vs 2 shards on the serial backend only and finishes
in seconds; ``--recall-smoke`` runs *only* the recall probe (gram vs
hash, 2 shards) and fails the process if gram recall ≠ 1.0 — the CI
recall-preservation gate.  See PERFORMANCE.md for how to read the output.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List

from repro.core.state_machine import JoinState
from repro.datagen.testcases import STANDARD_TEST_CASES, generate_test_case
from repro.runtime.config import RunConfig
from repro.runtime.parallel import run_sharded
from repro.runtime.session import JoinSession
from repro.runtime.sharding import ShardPlan

DEFAULT_TOTAL_TUPLES = 12_000
SMOKE_TOTAL_TUPLES = 2_000
#: The recall probe is all-approximate (the most expensive operator), so
#: it runs on its own, smaller workload.
RECALL_PROBE_TUPLES = 3_000
SMOKE_RECALL_PROBE_TUPLES = 1_000
DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)
SMOKE_SHARD_COUNTS = (1, 2)
#: ``async`` is the cooperative single-thread backend: its *_speedup
#: entry reads as pure coordination overhead vs serial (expect ≈1), the
#: same way thread reads under the GIL.
DEFAULT_BACKENDS = ("serial", "thread", "process", "async")
#: The CI smoke also covers the async backend (cheap: one thread, no
#: pools), pinning serial/async agreement at 1 and 2 shards.
SMOKE_BACKENDS = ("serial", "async")
#: Partitioners compared by the recall probe: the exact-semantics default
#: against the gram-replicated full-recall partitioner.
RECALL_PARTITIONERS = ("hash", "gram")
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_shard_scaling.json"


def _run(dataset, config, shards: int, backend: str, partitioner: str = "hash"):
    started = time.perf_counter()
    result = run_sharded(
        dataset.parent, dataset.child, "location", config,
        shards=shards, backend=backend, partitioner=partitioner,
    )
    return time.perf_counter() - started, result


def _recall(found_pairs, reference_pairs) -> float:
    """Fraction of the reference match set the sharded run recovered.

    An empty reference means there was nothing to lose: recall is 1.0 by
    definition (and dividing by ``len(reference_pairs)`` would crash the
    bench on match-free workloads).
    """
    if not reference_pairs:
        return 1.0
    return round(len(found_pairs & reference_pairs) / len(reference_pairs), 4)


def all_approximate_config() -> RunConfig:
    """The schedule-free recall-probe configuration (fixed ``lap/rap``).

    ``verify_jaccard=True`` makes the match predicate a symmetric
    function of the pair, which is what turns the gram partitioner's
    "every matchable pair is co-located" into exact set equality with
    the unsharded run — the default probe-directional counter test can
    flip borderline pairs either way under *any* re-interleaving of
    arrivals (sharded or not), which would make the 1.0 gate flaky on
    adversarial workloads.
    """
    return RunConfig(
        policy="fixed", initial_state=JoinState.LAP_RAP, verify_jaccard=True
    )


def recall_probe(dataset, shard_counts, partitioners=RECALL_PARTITIONERS):
    """Per-partitioner recall on an all-approximate workload (serial).

    The MAR timing sweep entangles partitioning losses with per-shard
    schedule divergence (every shard runs its own control loop); this
    probe removes the schedule — a fixed all-approximate run loses
    exactly the pairs its partitioner separates.  Returns one row per
    shard count mapping partitioner → recall / match counts (raw and
    deduped) plus the gram replication factor, and asserts the gram bar:
    recall must be exactly 1.0 at every probed shard count.
    """
    config = all_approximate_config()
    reference = JoinSession(dataset.parent, dataset.child, "location", config).run()
    reference_pairs = frozenset(reference.matched_pairs())
    rows = []
    for shards in shard_counts:
        row = {"shards": shards}
        for name in partitioners:
            result = run_sharded(
                dataset.parent, dataset.child, "location", config,
                shards=shards, partitioner=name,
            )
            found_pairs = result.pair_set()
            stats = {
                "match_recall_vs_unsharded": _recall(
                    found_pairs, reference_pairs
                ),
                "matches": result.result_size,
                "raw_matches": result.raw_result_size,
            }
            if result.raw_result_size != result.result_size or name == "gram":
                left_factor, right_factor = result.replication_factors()
                stats["replication_factor"] = round(
                    (left_factor + right_factor) / 2, 2
                )
            row[name] = stats
            # The gate compares pair *sets*, not the rounded stat: one
            # lost pair must fail even when it rounds to 1.0, and one
            # spurious extra pair is just as much a divergence.
            if name == "gram" and found_pairs != reference_pairs:
                lost = len(reference_pairs - found_pairs)
                extra = len(found_pairs - reference_pairs)
                raise AssertionError(
                    f"gram partitioner diverged from the unsharded match "
                    f"set at {shards} shards: {lost} lost, {extra} extra"
                )
        rows.append(row)
        print(
            f"[recall probe, {shards} shard(s)] " + " ".join(
                f"{name}={row[name]['match_recall_vs_unsharded']}"
                for name in partitioners
            )
        )
    return rows


def bench_shard_counts(
    dataset, config, shard_counts, backends, partitioner: str = "hash"
) -> List[Dict]:
    # Unsharded reference: the completeness and determinism oracle.
    started = time.perf_counter()
    reference = JoinSession(dataset.parent, dataset.child, "location", config).run()
    unsharded_seconds = time.perf_counter() - started
    reference_pairs = frozenset(reference.matched_pairs())

    entries: List[Dict] = []
    for shards in shard_counts:
        plan = ShardPlan.build(
            dataset.parent, dataset.child, "location", shards,
            partitioner, config=config,
        )
        sizes = plan.shard_sizes()
        entry: Dict[str, object] = {
            "shards": shards,
            "unsharded_seconds": round(unsharded_seconds, 4),
            "shard_sizes_min": min(left + right for left, right in sizes),
            "shard_sizes_max": max(left + right for left, right in sizes),
        }
        pair_sets = {}
        for backend in backends:
            seconds, result = _run(dataset, config, shards, backend, partitioner)
            entry[f"{backend}_seconds"] = round(seconds, 4)
            pair_sets[backend] = result.pair_set()
            if backend == "serial":
                entry["matches"] = result.result_size
                if result.raw_result_size != result.result_size:
                    entry["raw_matches"] = result.raw_result_size
                entry["match_recall_vs_unsharded"] = _recall(
                    pair_sets["serial"], reference_pairs
                )
                # Bit-determinism bar: a repeat serial run must agree.
                _, repeat = _run(dataset, config, shards, "serial", partitioner)
                if repeat.pair_set() != pair_sets["serial"]:
                    raise AssertionError(
                        f"serial backend is not deterministic at {shards} shards"
                    )
        if len(set(pair_sets.values())) != 1:
            raise AssertionError(
                f"backends disagree at {shards} shards: "
                f"{ {name: len(pairs) for name, pairs in pair_sets.items()} }"
            )
        if shards == 1 and pair_sets["serial"] != reference_pairs:
            raise AssertionError("1-shard run diverged from the unsharded session")
        serial_seconds = entry["serial_seconds"]
        for backend in backends:
            if backend != "serial" and entry[f"{backend}_seconds"]:
                entry[f"{backend}_speedup"] = round(
                    serial_seconds / entry[f"{backend}_seconds"], 2
                )
        entries.append(entry)
        print(
            f"[{shards} shard(s)] " + " ".join(
                f"{backend}={entry[f'{backend}_seconds']}s" for backend in backends
            ) + "".join(
                f" {backend}_speedup={entry.get(f'{backend}_speedup')}"
                for backend in backends
                if backend != "serial"
            ) + f" matches={entry['matches']}"
            f" recall_vs_unsharded={entry['match_recall_vs_unsharded']}"
        )
    return entries


def _probe_dataset(total_tuples: int):
    parent_size = total_tuples // 2
    return generate_test_case(
        STANDARD_TEST_CASES["uniform_child"],
        parent_size=parent_size,
        child_size=total_tuples - parent_size,
    )


def run_benchmark(
    total_tuples: int,
    shard_counts,
    backends,
    partitioner: str = "hash",
    recall_probe_tuples: int = RECALL_PROBE_TUPLES,
) -> Dict[str, object]:
    dataset = _probe_dataset(total_tuples)
    config = RunConfig()
    entries = bench_shard_counts(
        dataset, config, shard_counts, backends, partitioner
    )
    probe_shards = tuple(count for count in shard_counts if count > 1) or (2,)
    return {
        "run_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "total_tuples": total_tuples,
        "policy": config.policy,
        "partitioner": partitioner,
        "backends": list(backends),
        # Speedup ratios are only meaningful relative to the cores the
        # run actually had: on a single-core machine process_speedup < 1
        # is the expected pure-overhead reading.
        "cpu_count": os.cpu_count(),
        "entries": entries,
        # Partitioner recall, isolated from adaptive scheduling: an
        # all-approximate workload per shard count, hash vs gram.
        "recall_probe": {
            "total_tuples": recall_probe_tuples,
            "policy": "fixed (all-approximate, lap/rap)",
            "entries": recall_probe(
                _probe_dataset(recall_probe_tuples), probe_shards
            ),
        },
    }


def append_trajectory(result: Dict[str, object], output: Path) -> None:
    trajectory = []
    if output.exists():
        try:
            trajectory = json.loads(output.read_text())
        except (ValueError, OSError):
            trajectory = []
        if not isinstance(trajectory, list):
            trajectory = [trajectory]
    trajectory.append(result)
    output.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"trajectory appended to {output} ({len(trajectory)} runs recorded)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small, fast configuration for CI (1 vs 2 shards, serial backend)",
    )
    parser.add_argument(
        "--recall-smoke",
        action="store_true",
        help="CI recall-preservation gate: run only the all-approximate "
             "recall probe (hash vs gram, 2 shards) and fail unless the "
             "gram partitioner's recall is exactly 1.0; appends nothing",
    )
    parser.add_argument(
        "--partitioner",
        default="hash",
        help="partitioner for the timing sweep (default hash; the recall "
             "probe always compares hash vs gram)",
    )
    parser.add_argument(
        "--total-tuples",
        type=int,
        default=None,
        help=f"total tuple count to benchmark (default {DEFAULT_TOTAL_TUPLES})",
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=None,
        help=f"shard counts to sweep (default {list(DEFAULT_SHARD_COUNTS)})",
    )
    parser.add_argument(
        "--backends",
        nargs="+",
        default=None,
        help=f"backends to compare (default {list(DEFAULT_BACKENDS)})",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help="trajectory JSON file to append to",
    )
    args = parser.parse_args(argv)
    if args.shards and any(count < 1 for count in args.shards):
        parser.error("--shards values must be at least 1")
    if args.recall_smoke:
        # The probe raises AssertionError when gram recall is not 1.0.
        rows = recall_probe(
            _probe_dataset(args.total_tuples or SMOKE_RECALL_PROBE_TUPLES),
            tuple(args.shards) if args.shards else (2,),
        )
        print(f"recall-preservation gate passed ({len(rows)} shard count(s))")
        return 0
    total = args.total_tuples or (
        SMOKE_TOTAL_TUPLES if args.smoke else DEFAULT_TOTAL_TUPLES
    )
    shard_counts = tuple(args.shards) if args.shards else (
        SMOKE_SHARD_COUNTS if args.smoke else DEFAULT_SHARD_COUNTS
    )
    backends = tuple(args.backends) if args.backends else (
        SMOKE_BACKENDS if args.smoke else DEFAULT_BACKENDS
    )
    if "serial" not in backends:
        parser.error("the serial backend is the reference and must be included")
    recall_tuples = (
        SMOKE_RECALL_PROBE_TUPLES if args.smoke else RECALL_PROBE_TUPLES
    )
    result = run_benchmark(
        total, shard_counts, backends, args.partitioner, recall_tuples
    )
    append_trajectory(result, args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
